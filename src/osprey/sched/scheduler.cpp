#include "osprey/sched/scheduler.h"

#include <algorithm>

#include "osprey/core/log.h"

namespace osprey::sched {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kComplete: return "complete";
    case JobState::kCanceled: return "canceled";
  }
  return "?";
}

const char* end_reason_name(EndReason r) {
  switch (r) {
    case EndReason::kFinished: return "finished";
    case EndReason::kWalltime: return "walltime";
    case EndReason::kCanceled: return "canceled";
    case EndReason::kPreempted: return "preempted";
  }
  return "?";
}

Scheduler::Scheduler(sim::Simulation& sim, SchedulerConfig config)
    : sim_(sim),
      config_(config),
      rng_(config.seed),
      overhead_(config.submit_overhead_median, config.submit_overhead_sigma),
      nodes_free_(config.total_nodes) {}

Result<JobId> Scheduler::submit(JobSpec spec) {
  if (spec.nodes <= 0 || spec.nodes > config_.total_nodes) {
    return Error(ErrorCode::kInvalidArgument,
                 "job needs " + std::to_string(spec.nodes) + " nodes; cluster has " +
                     std::to_string(config_.total_nodes));
  }
  JobId id = next_id_++;
  Job job;
  job.spec = std::move(spec);
  job.submitted_at = sim_.now();
  Duration overhead =
      config_.submit_overhead_median > 0 ? overhead_.sample(rng_) : 0.0;
  job.eligible_at = job.submitted_at + overhead;
  jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  // Wake the scheduler when the job becomes eligible.
  sim_.schedule_at(jobs_.at(id).eligible_at, [this] { try_start_jobs(); });
  return id;
}

void Scheduler::try_start_jobs() {
  // FIFO with easy backfill: walk the queue in order; start anything that is
  // eligible and fits in the currently free nodes. A too-large head job does
  // not block smaller jobs behind it (no reservations — documented
  // simplification of conservative backfill).
  bool started = true;
  while (started) {
    started = false;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      Job& job = jobs_.at(*it);
      if (sim_.now() < job.eligible_at) continue;
      if (job.spec.nodes > nodes_free_) continue;
      JobId id = *it;
      queue_.erase(it);
      start_job(id);
      started = true;
      break;  // iterator invalidated; rescan
    }
  }
}

void Scheduler::start_job(JobId id) {
  Job& job = jobs_.at(id);
  job.state = JobState::kRunning;
  job.started_at = sim_.now();
  nodes_free_ -= job.spec.nodes;
  OSPREY_LOG(kDebug, "sched") << "job " << id << " (" << job.spec.name
                              << ") started after "
                              << job.started_at - job.submitted_at << "s wait";
  if (job.spec.walltime > 0) {
    job.walltime_event = sim_.schedule_in(
        job.spec.walltime, [this, id] { end_job(id, EndReason::kWalltime); });
  }
  if (job.spec.on_start) job.spec.on_start(id);
}

void Scheduler::end_job(JobId id, EndReason reason) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  Job& job = it->second;
  if (job.state != JobState::kRunning) return;
  nodes_free_ += job.spec.nodes;
  if (job.walltime_event != 0) {
    sim_.cancel(job.walltime_event);
    job.walltime_event = 0;
  }
  if (reason == EndReason::kPreempted) {
    // Requeue at the front; the job restarts when nodes free up.
    job.state = JobState::kQueued;
    job.eligible_at = sim_.now();
    queue_.push_front(id);
  } else {
    job.state =
        reason == EndReason::kCanceled ? JobState::kCanceled : JobState::kComplete;
  }
  if (job.spec.on_end) job.spec.on_end(id, reason);
  try_start_jobs();
}

Status Scheduler::complete(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.state != JobState::kRunning) {
    return Status(ErrorCode::kNotFound,
                  "job " + std::to_string(id) + " is not running");
  }
  end_job(id, EndReason::kFinished);
  return Status::ok();
}

Status Scheduler::cancel(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status(ErrorCode::kNotFound, "no job " + std::to_string(id));
  }
  Job& job = it->second;
  if (job.state == JobState::kQueued) {
    queue_.erase(std::remove(queue_.begin(), queue_.end(), id), queue_.end());
    job.state = JobState::kCanceled;
    if (job.spec.on_end) job.spec.on_end(id, EndReason::kCanceled);
    return Status::ok();
  }
  if (job.state == JobState::kRunning) {
    end_job(id, EndReason::kCanceled);
    return Status::ok();
  }
  return Status(ErrorCode::kConflict,
                "job " + std::to_string(id) + " already finished");
}

Status Scheduler::preempt(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.state != JobState::kRunning) {
    return Status(ErrorCode::kNotFound,
                  "job " + std::to_string(id) + " is not running");
  }
  end_job(id, EndReason::kPreempted);
  return Status::ok();
}

JobState Scheduler::state(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? JobState::kCanceled : it->second.state;
}

Result<Duration> Scheduler::queue_wait(JobId id) const {
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.state == JobState::kQueued) {
    return Error(ErrorCode::kNotFound,
                 "job " + std::to_string(id) + " has not started");
  }
  return it->second.started_at - it->second.submitted_at;
}

}  // namespace osprey::sched

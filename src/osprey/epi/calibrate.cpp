#include "osprey/epi/calibrate.h"

#include <cmath>
#include <limits>

#include "osprey/json/json.h"

namespace osprey::epi {

double poisson_deviance(const std::vector<double>& observed,
                        const std::vector<double>& expected) {
  double deviance = 0.0;
  const std::size_t n = std::min(observed.size(), expected.size());
  for (std::size_t t = 0; t < n; ++t) {
    double obs = observed[t];
    double mu = std::max(expected[t], 1e-9);
    deviance += 2.0 * (obs > 0 ? obs * std::log(obs / mu) - (obs - mu)
                               : mu);
  }
  return deviance;
}

double rmse(const std::vector<double>& observed,
            const std::vector<double>& expected) {
  const std::size_t n = std::min(observed.size(), expected.size());
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    double d = observed[t] - expected[t];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(n));
}

double CalibrationProblem::loss(double beta, double sigma, double gamma) const {
  SeirParams candidate = base;
  candidate.beta = beta;
  candidate.sigma = sigma;
  candidate.gamma = gamma;
  Result<SeirSeries> series = run_seir(candidate, days);
  if (!series.ok()) return std::numeric_limits<double>::infinity();
  // Expected reported cases under the (noise-free) reporting model.
  std::vector<double> expected;
  expected.reserve(series.value().daily_incidence.size());
  for (std::size_t day = 0; day < series.value().daily_incidence.size();
       ++day) {
    double e = series.value().daily_incidence[day] * reporting.report_rate;
    if (reporting.weekend_effect && (day % 7 == 5 || day % 7 == 6)) {
      e *= reporting.weekend_factor;
    }
    expected.push_back(e);
  }
  return poisson_deviance(observed.reported_cases, expected);
}

CalibrationProblem make_synthetic_problem(const SeirParams& truth, int days,
                                          const ReportingModel& reporting) {
  CalibrationProblem problem;
  problem.base = truth;  // population / initials fixed at truth
  problem.reporting = reporting;
  problem.days = days;
  Result<Surveillance> observed = synthesize_from_seir(truth, days, reporting);
  if (observed.ok()) problem.observed = observed.value();
  return problem;
}

pool::SimTaskRunner calibration_sim_runner(CalibrationProblem problem,
                                           double median_runtime, double sigma,
                                           bool log_loss) {
  LognormalRuntime model(median_runtime, sigma);
  return [problem = std::move(problem), model, log_loss](
             const eqsql::TaskHandle& handle, Rng& rng) -> pool::TaskOutcome {
    Duration runtime = model.sample(rng);
    Result<json::Value> parsed = json::parse(handle.payload);
    Result<std::vector<double>> params =
        parsed.ok() ? json::to_doubles(parsed.value())
                    : Result<std::vector<double>>(parsed.error());
    json::Value result;
    if (!params.ok() || params.value().size() != 3) {
      result["error"] = json::Value("payload must be [beta, sigma, gamma]");
      return pool::TaskOutcome{result.dump(), 0.001};
    }
    double loss = problem.loss(params.value()[0], params.value()[1],
                               params.value()[2]);
    if (!std::isfinite(loss)) loss = 1e12;
    result["y"] = json::Value(log_loss ? std::log1p(loss) : loss);
    result["runtime"] = json::Value(runtime);
    return pool::TaskOutcome{result.dump(), runtime};
  };
}

}  // namespace osprey::epi

// The hosted FaaS cloud service (§IV-B).
//
// Responsibilities modeled from the paper:
//  - "an interface for users to submit tasks" (submit),
//  - "managing secure communication with an endpoint, authenticating and
//    authorizing users" (AuthService token on every call),
//  - "providing fire-and-forget execution by storing and retrying tasks in
//    the event an endpoint is offline or fails" (pending store, offline
//    re-polls, bounded retries on transient failures),
//  - "storing results (or failures) until retrieved by a user" (result
//    store + retrieve),
//  - the 10 MB input/output payload limit (§IV-E) that motivates the
//    ProxyStore data plane.
//
// The service is event-driven on the discrete-event simulation: control
// messages travel caller-site -> cloud -> endpoint-site with network-model
// latencies, and function bodies execute at the simulated time their
// endpoint reaches them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "osprey/core/retry.h"
#include "osprey/faas/auth.h"
#include "osprey/faas/endpoint.h"
#include "osprey/net/network.h"
#include "osprey/sim/sim.h"

namespace osprey::faas {

using FaaSTaskId = std::uint64_t;

enum class FaaSTaskState {
  kPending,    // stored in the cloud, endpoint offline or not yet reached
  kExecuting,  // delivered, running at the endpoint
  kSucceeded,  // result stored, awaiting retrieval
  kFailed,     // permanent failure (retries exhausted or function error)
};

const char* faas_task_state_name(FaaSTaskState s);

struct SubmitOptions {
  /// Site the submit call originates from (affects control latency).
  net::SiteName caller_site = "laptop";
  /// Transient-failure (kUnavailable) retry policy. The default preserves
  /// the historic behavior: 4 total attempts with 1s/2s/4s backoff.
  /// Offline/partition holds never consume this budget (§IV-B: tasks are
  /// stored until the endpoint is reachable).
  RetryPolicy retry{/*max_attempts=*/4, /*initial_backoff=*/1.0,
                    /*multiplier=*/2.0, /*max_backoff=*/60.0,
                    /*jitter=*/0.0, /*budget=*/0.0};
  /// How often the cloud re-checks an offline or partitioned endpoint
  /// (fire-and-forget).
  Duration offline_poll = 5.0;
  /// Invoked (in simulation time) when the task reaches a terminal state.
  std::function<void(FaaSTaskId, const Result<json::Value>&)> on_complete;
};

class FaaSService {
 public:
  /// funcX "limits input/output sizes to 10MB" (§IV-E).
  static constexpr Bytes kMaxPayloadBytes = 10ull * 1024 * 1024;

  FaaSService(sim::Simulation& sim, const net::Network& network,
              AuthService& auth);

  /// Make an endpoint reachable. The endpoint must outlive the service.
  Status register_endpoint(Endpoint& endpoint);

  Endpoint* endpoint(const std::string& name);

  /// Submit a function call. Validates the token and payload size, stores
  /// the task, and schedules delivery. Returns the task id immediately
  /// (fire-and-forget); completion is observed via state/result/on_complete.
  Result<FaaSTaskId> submit(const Token& token, const std::string& endpoint,
                            const std::string& function,
                            const json::Value& payload,
                            SubmitOptions options = {});

  FaaSTaskState state(FaaSTaskId id) const;

  /// Retrieve a stored result ("storing results (or failures) until
  /// retrieved"): kNotFound while the task is in flight or unknown; the
  /// stored error for failed tasks. Retrieval removes the stored result.
  Result<json::Value> retrieve(FaaSTaskId id);

  /// Number of tasks not yet in a terminal state.
  std::size_t in_flight() const;

  /// Total transient-failure retries performed (for the A7 bench).
  std::uint64_t total_retries() const { return total_retries_; }

 private:
  struct TaskEntry {
    std::string endpoint;
    std::string function;
    json::Value payload;
    SubmitOptions options;
    FaaSTaskState state = FaaSTaskState::kPending;
    /// Shared retry bookkeeping (attempt count, backoff trace), seeded per
    /// task so jittered policies stay deterministic.
    RetryState retry{RetryPolicy::none()};
    std::optional<Result<json::Value>> outcome;
    /// Submission time on the simulation clock (drives the round-trip
    /// latency histogram).
    TimePoint submitted_at = 0.0;
  };

  void deliver(FaaSTaskId id);
  void execute(FaaSTaskId id);
  /// Ship a finished outcome endpoint-site -> cloud, holding it while the
  /// link is partitioned (results live at the endpoint until reachable).
  void return_result(FaaSTaskId id, Result<json::Value> outcome);
  void finish(FaaSTaskId id, Result<json::Value> outcome);

  sim::Simulation& sim_;
  const net::Network& network_;
  AuthService& auth_;
  std::map<std::string, Endpoint*> endpoints_;
  std::map<FaaSTaskId, TaskEntry> tasks_;
  FaaSTaskId next_id_ = 1;
  std::uint64_t total_retries_ = 0;
};

}  // namespace osprey::faas

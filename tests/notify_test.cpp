// Tests for the commit-driven notification plane (DESIGN.md §5.10): channel
// version bumps, observer chaining with the WAL, blocking wakeups in the
// threaded runtime, race hammering (run under TSan in CI), the peek-dedupe
// contract of query_result, and bit-determinism of notified simulation runs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "osprey/db/dump.h"
#include "osprey/db/wal.h"
#include "osprey/eqsql/db_api.h"
#include "osprey/eqsql/future.h"
#include "osprey/eqsql/notify.h"
#include "osprey/eqsql/schema.h"
#include "osprey/eqsql/service.h"
#include "osprey/pool/sim_pool.h"
#include "osprey/sim/sim.h"

namespace osprey::eqsql {
namespace {

constexpr WorkType kSimWork = 1;
constexpr WorkType kGpuWork = 2;

class NotifyTest : public ::testing::Test {
 protected:
  NotifyTest() : conn_(db_) {
    EXPECT_TRUE(create_schema(conn_).is_ok());
    api_ = std::make_unique<EQSQL>(db_, clock_);
    notifier_.attach(db_);
    WaitRouting routing;
    routing.sleeper = [this](Duration d) { clock_.advance(d); };
    routing.notifier = &notifier_;
    api_->set_wait_routing(std::move(routing));
  }

  ~NotifyTest() override { notifier_.detach(); }

  db::Database db_;
  db::sql::Connection conn_;
  ManualClock clock_;
  Notifier notifier_;
  std::unique_ptr<EQSQL> api_;
};

TEST_F(NotifyTest, SubmitBumpsOnlyItsWorkChannel) {
  EXPECT_EQ(notifier_.work_version(kSimWork), 0u);
  ASSERT_TRUE(api_->submit_task("e", kSimWork, "[1]").ok());
  EXPECT_EQ(notifier_.work_version(kSimWork), 1u);
  EXPECT_EQ(notifier_.work_version(kGpuWork), 0u);
  EXPECT_EQ(notifier_.result_version(), 0u);
  EXPECT_EQ(notifier_.work_signals(), 1u);
}

TEST_F(NotifyTest, BatchSubmitSignalsEachTypeOncePerCommit) {
  std::vector<std::string> payloads(10, "[1]");
  ASSERT_TRUE(api_->submit_tasks("e", kSimWork, payloads).ok());
  // One commit, one signal: waiters re-probe once, not ten times.
  EXPECT_EQ(notifier_.work_version(kSimWork), 1u);
  EXPECT_EQ(notifier_.work_signals(), 1u);
}

TEST_F(NotifyTest, ReportBumpsResultChannel) {
  TaskId id = api_->submit_task("e", kSimWork, "[1]").value();
  ASSERT_EQ(api_->try_query_tasks(kSimWork, 1, "p").value().size(), 1u);
  EXPECT_EQ(notifier_.result_version(), 0u);
  ASSERT_TRUE(api_->report_task(id, kSimWork, "{\"y\":1}").is_ok());
  EXPECT_EQ(notifier_.result_version(), 1u);
  EXPECT_EQ(notifier_.result_signals(), 1u);
}

TEST_F(NotifyTest, CancelSignalsResultChannel) {
  TaskId id = api_->submit_task("e", kSimWork, "[1]").value();
  const std::uint64_t before = notifier_.result_version();
  ASSERT_TRUE(api_->cancel_tasks({id}).ok());
  // A result waiter must wake to observe kCanceled instead of timing out.
  EXPECT_GT(notifier_.result_version(), before);
}

TEST_F(NotifyTest, RequeueSignalsWorkChannel) {
  TaskId id = api_->submit_task("e", kSimWork, "[1]").value();
  ASSERT_EQ(api_->try_query_tasks(kSimWork, 1, "p").value().size(), 1u);
  const std::uint64_t before = notifier_.work_version(kSimWork);
  ASSERT_TRUE(api_->requeue_tasks({id}).ok());
  // Requeued work re-enters the output queue: idle pools must hear it.
  EXPECT_GT(notifier_.work_version(kSimWork), before);
}

TEST_F(NotifyTest, ListenersFireWithTaskIds) {
  std::vector<TaskId> result_ids;
  int work_signals = 0;
  Notifier::ListenerId work_l =
      notifier_.on_work(kSimWork, [&] { ++work_signals; });
  Notifier::ListenerId result_l =
      notifier_.on_result([&](TaskId id) { result_ids.push_back(id); });
  TaskId id = api_->submit_task("e", kSimWork, "[1]").value();
  EXPECT_EQ(work_signals, 1);
  ASSERT_EQ(api_->try_query_tasks(kSimWork, 1, "p").value().size(), 1u);
  ASSERT_TRUE(api_->report_task(id, kSimWork, "{}").is_ok());
  ASSERT_EQ(result_ids.size(), 1u);
  EXPECT_EQ(result_ids[0], id);
  notifier_.remove_listener(work_l);
  notifier_.remove_listener(result_l);
  ASSERT_TRUE(api_->submit_task("e", kSimWork, "[2]").ok());
  EXPECT_EQ(work_signals, 1);  // removed: never fires again
}

TEST_F(NotifyTest, DetachRestoresWrappedObserver) {
  // The fixture's notifier wrapped a null observer; detach must clear the
  // slot so commits stop being observed.
  const std::uint64_t before = notifier_.commits_seen();
  notifier_.detach();
  ASSERT_TRUE(api_->submit_task("e", kSimWork, "[1]").ok());
  EXPECT_EQ(notifier_.commits_seen(), before);
  notifier_.attach(db_);  // fixture detaches again in the destructor
}

TEST_F(NotifyTest, QueryResultWithPeekerPopsExactlyOnce) {
  TaskId id = api_->submit_task("e", kSimWork, "[1]").value();
  ASSERT_EQ(api_->try_query_tasks(kSimWork, 1, "p").value().size(), 1u);
  ASSERT_TRUE(api_->report_task(id, kSimWork, "{\"y\":7}").is_ok());

  // A counting peeker standing in for the replica read router.
  int peeks = 0;
  WaitRouting routing;
  routing.peeker = [&](TaskId task) {
    ++peeks;
    return api_->peek_result(task);
  };
  routing.notifier = api_->notifier();
  api_->set_wait_routing(std::move(routing));
  ASSERT_EQ(api_->stats().value().input_queue, 1);
  Result<std::string> result = api_->query_result(id, WaitSpec::poll(0.1, 2.0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), "{\"y\":7}");
  // Exactly one probe answered, and the local side did exactly one write —
  // the input-queue pop. No duplicate local read re-deriving the payload.
  EXPECT_EQ(peeks, 1);
  EXPECT_EQ(api_->stats().value().input_queue, 0);
}

TEST_F(NotifyTest, QueryResultWithPeekerPropagatesCancel) {
  TaskId id = api_->submit_task("e", kSimWork, "[1]").value();
  ASSERT_TRUE(api_->cancel_tasks({id}).ok());
  WaitRouting routing;
  routing.peeker = [&](TaskId task) { return api_->peek_result(task); };
  routing.notifier = api_->notifier();
  api_->set_wait_routing(std::move(routing));
  Result<std::string> result = api_->query_result(id, WaitSpec::poll(0.1, 2.0));
  EXPECT_EQ(result.code(), ErrorCode::kCanceled);
}

// --- observer chaining with the WAL ----------------------------------------

TEST(NotifyWalTest, NotificationsAndWalChainInEitherOrder) {
  for (bool wal_first : {true, false}) {
    sim::Simulation sim;
    auto disk = std::make_shared<db::wal::SimDisk>();
    db::wal::SimLogDevice device(disk);
    {
      EmewsService service(sim);
      ASSERT_TRUE(service.start().is_ok());
      if (wal_first) {
        ASSERT_TRUE(service.enable_wal(device).is_ok());
        ASSERT_TRUE(service.enable_notifications().is_ok());
      } else {
        ASSERT_TRUE(service.enable_notifications().is_ok());
        ASSERT_TRUE(service.enable_wal(device).is_ok());
      }
      auto api = service.connect();
      ASSERT_TRUE(api.ok());
      EXPECT_EQ(api.value()->notifier(), service.notifier());
      ASSERT_TRUE(api.value()->submit_task("e", kSimWork, "[1]").ok());
      // The notifier saw the commit...
      EXPECT_EQ(service.notifier()->work_version(kSimWork), 1u);
    }
    // ...and so did the WAL underneath it: the device alone rebuilds state.
    sim::Simulation sim2;
    EmewsService recovered(sim2);
    ASSERT_TRUE(recovered.recover_from_wal(device).ok());
    EXPECT_EQ(recovered.stats().value().tasks_total, 1);
  }
}

// --- blocking wakeups (threaded runtime) -----------------------------------

class NotifyThreadedTest : public ::testing::Test {
 protected:
  NotifyThreadedTest() : service_(clock_) {
    EXPECT_TRUE(service_.start().is_ok());
    EXPECT_TRUE(service_.enable_notifications().is_ok());
  }

  std::unique_ptr<EQSQL> connect() {
    auto api = service_.connect();
    EXPECT_TRUE(api.ok());
    return std::move(api).take();
  }

  RealClock clock_;
  EmewsService service_;
};

TEST_F(NotifyThreadedTest, QueryTaskWakesOnSubmit) {
  auto worker = connect();
  auto submitter = connect();
  Result<std::vector<TaskHandle>> got =
      Error(ErrorCode::kInternal, "not run");
  std::thread waiter([&] {
    got = worker->query_task(kSimWork, 1, "p", WaitSpec::notify(10.0));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto submitted_at = std::chrono::steady_clock::now();
  ASSERT_TRUE(submitter->submit_task("e", kSimWork, "[1]").ok());
  waiter.join();
  const auto woke_after = std::chrono::steady_clock::now() - submitted_at;
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().size(), 1u);
  // The wakeup is commit-driven: far below any polling cadence, and far
  // below the 10 s deadline.
  EXPECT_LT(std::chrono::duration<double>(woke_after).count(), 5.0);
}

TEST_F(NotifyThreadedTest, QueryResultWakesOnReport) {
  auto me = connect();
  auto pool = connect();
  TaskId id = me->submit_task("e", kSimWork, "[1]").value();
  ASSERT_EQ(pool->try_query_tasks(kSimWork, 1, "p").value().size(), 1u);
  Result<std::string> got = Error(ErrorCode::kInternal, "not run");
  std::thread waiter(
      [&] { got = me->query_result(id, WaitSpec::notify(10.0)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(pool->report_task(id, kSimWork, "{\"y\":3}").is_ok());
  waiter.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "{\"y\":3}");
}

TEST_F(NotifyThreadedTest, CancelWakesResultWaiter) {
  auto me = connect();
  auto controller = connect();
  TaskId id = me->submit_task("e", kSimWork, "[1]").value();
  Result<std::string> got = Error(ErrorCode::kInternal, "not run");
  std::thread waiter(
      [&] { got = me->query_result(id, WaitSpec::notify(10.0)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(controller->cancel_tasks({id}).ok());
  waiter.join();
  EXPECT_EQ(got.code(), ErrorCode::kCanceled);
}

TEST_F(NotifyThreadedTest, NotifyWaitStillTimesOut) {
  auto me = connect();
  TaskId id = me->submit_task("e", kSimWork, "[1]").value();
  Result<std::string> got = me->query_result(id, WaitSpec::notify(0.2));
  EXPECT_EQ(got.code(), ErrorCode::kTimeout);
}

TEST_F(NotifyThreadedTest, AsCompletedWakesOnReports) {
  auto me = connect();
  auto pool = connect();
  auto ids = me->submit_tasks("e", kSimWork, {"[1]", "[2]", "[3]"}).value();
  std::vector<TaskFuture> futures;
  for (TaskId id : ids) futures.emplace_back(*me, id, kSimWork);
  std::thread worker([&] {
    for (int i = 0; i < 3; ++i) {
      auto tasks = pool->query_task(kSimWork, 1, "p", WaitSpec::notify(10.0));
      ASSERT_TRUE(tasks.ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ASSERT_TRUE(pool->report_task(tasks.value()[0].eq_task_id, kSimWork,
                                    "{\"y\":0}")
                      .is_ok());
    }
  });
  WaitSpec wait = WaitSpec::notify(10.0);
  auto done = as_completed(futures, futures.size(), wait);
  worker.join();
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done.value().size(), 3u);
}

// Race hammer: many producers and many consumers on the same channels. The
// assertions are mild on purpose — the value of this test is running the
// commit path, the cv waits, and listener add/remove concurrently under
// TSan, which CI does.
TEST_F(NotifyThreadedTest, ManyProducersManyConsumersRace) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 20;
  constexpr int kConsumers = 3;
  constexpr int kTotal = kProducers * kPerProducer;

  std::atomic<int> claimed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([this, p] {
      auto api = connect();
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(api->submit_task("e" + std::to_string(p), kSimWork, "[1]")
                        .ok());
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([this, &claimed] {
      auto api = connect();
      while (claimed.load() < kTotal) {
        WaitSpec wait = WaitSpec::notify(0.5);
        wait.poll_delay = 0.05;  // tight fallback: ride out lost races
        auto tasks = api->query_task(kSimWork, 5, "race", wait);
        if (tasks.ok()) claimed.fetch_add(static_cast<int>(tasks.value().size()));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(claimed.load(), kTotal);
  EXPECT_EQ(service_.stats().value().tasks_running, kTotal);
}

// --- simulation runtime ------------------------------------------------------

struct SimCampaignOutcome {
  std::string db_dump;          // full task-state fingerprint (incl. times)
  std::uint64_t completed = 0;
  std::uint64_t queries = 0;
};

SimCampaignOutcome run_sim_campaign(bool notifications, std::uint64_t seed) {
  SimCampaignOutcome outcome;
  sim::Simulation sim;
  EmewsService service(sim);
  EXPECT_TRUE(service.start().is_ok());
  if (notifications) {
    EXPECT_TRUE(service.enable_notifications().is_ok());
  }

  EQSQL api(service.database(), sim);
  api.set_notifier(service.notifier());

  std::vector<std::string> payloads(60, "[0]");
  EXPECT_TRUE(api.submit_tasks("det", kSimWork, payloads).ok());

  std::vector<std::unique_ptr<pool::SimWorkerPool>> pools;
  for (int i = 0; i < 2; ++i) {
    pool::SimPoolConfig c;
    c.name = "det_pool_" + std::to_string(i);
    c.work_type = kSimWork;
    c.num_workers = 8;
    c.batch_size = 10;
    c.threshold = 2;
    pools.push_back(std::make_unique<pool::SimWorkerPool>(
        sim, api, c,
        [](const TaskHandle&, Rng& rng) {
          return pool::TaskOutcome{"{\"y\":0}", 1.0 + rng.uniform() * 4.0};
        },
        seed + static_cast<std::uint64_t>(i)));
    EXPECT_TRUE(pools.back()->start().is_ok());
  }
  // A mid-campaign burst while the pools are already armed idle or working.
  sim.schedule_at(30.0, [&] {
    std::vector<std::string> more(20, "[1]");
    EXPECT_TRUE(api.submit_tasks("det", kSimWork, more).ok());
  });
  sim.run_until(500.0);
  for (const auto& p : pools) {
    outcome.completed += p->tasks_completed();
    outcome.queries += p->queries_issued();
  }
  outcome.db_dump = db::dump_database(service.database()).dump();
  return outcome;
}

TEST(NotifySimTest, NotifiedRunsAreBitDeterministic) {
  SimCampaignOutcome a = run_sim_campaign(true, 99);
  SimCampaignOutcome b = run_sim_campaign(true, 99);
  EXPECT_EQ(a.completed, 80u);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.db_dump, b.db_dump);
}

TEST(NotifySimTest, PollingRunsStayDeterministicToo) {
  SimCampaignOutcome a = run_sim_campaign(false, 99);
  SimCampaignOutcome b = run_sim_campaign(false, 99);
  EXPECT_EQ(a.completed, 80u);
  EXPECT_EQ(a.db_dump, b.db_dump);
}

TEST(NotifySimTest, NotificationsCompleteTheSameWorkWithFewerQueries) {
  SimCampaignOutcome polled = run_sim_campaign(false, 7);
  SimCampaignOutcome notified = run_sim_campaign(true, 7);
  EXPECT_EQ(polled.completed, 80u);
  EXPECT_EQ(notified.completed, 80u);
  // The notified pools never blind-poll an empty queue; the polled pools do
  // for the whole post-campaign idle stretch.
  EXPECT_LT(notified.queries, polled.queries);
}

TEST(NotifySimTest, IdleNotifiedPoolIssuesNoQueries) {
  sim::Simulation sim;
  EmewsService service(sim);
  ASSERT_TRUE(service.start().is_ok());
  ASSERT_TRUE(service.enable_notifications().is_ok());
  EQSQL api(service.database(), sim);
  api.set_notifier(service.notifier());

  pool::SimPoolConfig c;
  c.name = "idle_pool";
  c.work_type = kSimWork;
  c.num_workers = 4;
  c.batch_size = 4;
  c.threshold = 1;
  c.notify_fallback = 0.0;  // trust wakeups entirely
  pool::SimWorkerPool p(
      sim, api, c,
      [](const TaskHandle&, Rng&) {
        return pool::TaskOutcome{"{}", 1.0};
      },
      3);
  ASSERT_TRUE(p.start().is_ok());
  sim.run_until(1000.0);
  // One probe at start (the queue was empty), then silence: the §VI idle
  // no-op query load is gone, not just spaced out.
  EXPECT_EQ(p.queries_issued(), 1u);

  // Work arriving wakes the armed pool with no poll event pending.
  ASSERT_TRUE(api.submit_task("e", kSimWork, "[1]").ok());
  sim.run_until(2000.0);
  EXPECT_EQ(p.tasks_completed(), 1u);
}

}  // namespace
}  // namespace osprey::eqsql

file(REMOVE_RECURSE
  "CMakeFiles/bench_eqsql_throughput.dir/bench_eqsql_throughput.cpp.o"
  "CMakeFiles/bench_eqsql_throughput.dir/bench_eqsql_throughput.cpp.o.d"
  "bench_eqsql_throughput"
  "bench_eqsql_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eqsql_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Telemetry overhead on the EQSQL throughput workload (DESIGN.md
// §observability): the full §IV-C submit -> claim -> report -> query_result
// cycle with the osprey::obs plane off vs on. The budget is < 5% relative
// throughput regression with telemetry enabled; BM_RelativeOverhead times
// both modes back to back and reports overhead_pct directly.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/eqsql/db_api.h"
#include "osprey/eqsql/schema.h"
#include "osprey/obs/telemetry.h"

using namespace osprey;
using namespace osprey::eqsql;

namespace {

constexpr WorkType kWork = 1;

struct Fixture {
  Fixture() : conn(db) {
    (void)create_schema(conn);
    api = std::make_unique<EQSQL>(db, clock);
  }
  db::Database db;
  db::sql::Connection conn;
  ManualClock clock;
  std::unique_ptr<EQSQL> api;
};

void full_cycle(Fixture& fx) {
  TaskId id = fx.api->submit_task("bench", kWork, "[1]").value();
  auto handles = fx.api->try_query_tasks(kWork, 1, "pool");
  (void)fx.api->report_task(handles.value()[0].eq_task_id, kWork, "{\"y\":1}");
  benchmark::DoNotOptimize(fx.api->try_query_result(id));
}

void BM_FullCycleTelemetryOff(benchmark::State& state) {
  obs::ScopedTelemetry scoped(false);
  Fixture fx;
  for (auto _ : state) full_cycle(fx);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullCycleTelemetryOff);

void BM_FullCycleTelemetryOn(benchmark::State& state) {
  obs::ScopedTelemetry scoped(true);
  Fixture fx;
  for (auto _ : state) full_cycle(fx);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullCycleTelemetryOn);

/// Seconds for `cycles` full task cycles with telemetry in the given mode.
double time_cycles(bool telemetry_on, int cycles) {
  obs::ScopedTelemetry scoped(telemetry_on);
  Fixture fx;
  auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < cycles; ++i) full_cycle(fx);
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - begin).count();
}

void BM_RelativeOverhead(benchmark::State& state) {
  constexpr int kCycles = 5000;
  double off = 0.0;
  double on = 0.0;
  for (auto _ : state) {
    // Interleave the modes so clock drift and cache state hit both equally.
    off += time_cycles(false, kCycles);
    on += time_cycles(true, kCycles);
  }
  state.counters["off_us_per_cycle"] =
      off / (kCycles * static_cast<double>(state.iterations())) * 1e6;
  state.counters["on_us_per_cycle"] =
      on / (kCycles * static_cast<double>(state.iterations())) * 1e6;
  // The headline number: must stay under the 5% budget.
  state.counters["overhead_pct"] = (on - off) / off * 100.0;
}
BENCHMARK(BM_RelativeOverhead)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();

// In-memory write buffer of the LSM store (DESIGN.md §5.12).
//
// A sorted map of row id -> latest row version with byte accounting. The
// LsmStore absorbs every put into the active memtable; when its footprint
// crosses the engine's budget the table rotates to the immutable slot and is
// flushed to a run. Deletes do not buffer tombstones here — liveness is
// tracked by the store's id set, so a memtable entry is always a live row
// version (possibly shadowing an older version in a run).
#pragma once

#include <cstddef>
#include <map>

#include "osprey/db/value.h"
#include "osprey/storage/row_store.h"

namespace osprey::storage {

class MemTable {
 public:
  /// Upsert the latest version of a row.
  void put(db::RowId id, db::Row row);

  /// Drop an entry if present (the id's liveness is the store's concern).
  bool erase(db::RowId id);

  /// Latest version, or nullptr when the id is not buffered here.
  const db::Row* find(db::RowId id) const;

  /// Approximate heap footprint (row payloads + per-entry overhead) — the
  /// quantity compared against the engine's memtable_bytes budget.
  std::size_t bytes() const { return bytes_; }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear();

  /// Ascending-id iteration for flushes and manifest images.
  const std::map<db::RowId, db::Row>& entries() const { return entries_; }

 private:
  // Rough map-node + bookkeeping cost added to row_bytes() per entry.
  static constexpr std::size_t kEntryOverhead = 64;

  std::map<db::RowId, db::Row> entries_;
  std::size_t bytes_ = 0;
};

}  // namespace osprey::storage

file(REMOVE_RECURSE
  "CMakeFiles/bench_db_ops.dir/bench_db_ops.cpp.o"
  "CMakeFiles/bench_db_ops.dir/bench_db_ops.cpp.o.d"
  "bench_db_ops"
  "bench_db_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_db_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

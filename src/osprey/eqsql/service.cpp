#include "osprey/eqsql/service.h"

#include "osprey/db/dump.h"
#include "osprey/db/sql_exec.h"
#include "osprey/eqsql/schema.h"

namespace osprey::eqsql {

EmewsService::EmewsService(const Clock& clock) : clock_(clock) {}

Status EmewsService::start() {
  if (running_) {
    return Status(ErrorCode::kConflict, "EMEWS service already running");
  }
  if (!schema_created_) {
    db::sql::Connection conn(db_);
    Status s = create_schema(conn);
    if (!s.is_ok()) return s;
    schema_created_ = true;
  }
  running_ = true;
  return Status::ok();
}

Status EmewsService::stop() {
  if (!running_) {
    return Status(ErrorCode::kConflict, "EMEWS service not running");
  }
  running_ = false;
  return Status::ok();
}

Result<std::unique_ptr<EQSQL>> EmewsService::connect(Sleeper sleeper) {
  if (!running_) {
    return Error(ErrorCode::kUnavailable, "EMEWS service not running");
  }
  return std::make_unique<EQSQL>(db_, clock_, std::move(sleeper));
}

Result<ServiceStats> EmewsService::stats() {
  if (!running_) {
    return Error(ErrorCode::kUnavailable, "EMEWS service not running");
  }
  db::sql::Connection conn(db_);
  ServiceStats stats;
  struct CountQuery {
    const char* sql;
    std::int64_t* slot;
  };
  const CountQuery queries[] = {
      {"SELECT COUNT(*) FROM eq_tasks", &stats.tasks_total},
      {"SELECT COUNT(*) FROM eq_tasks WHERE eq_status = 'queued'",
       &stats.tasks_queued},
      {"SELECT COUNT(*) FROM eq_tasks WHERE eq_status = 'running'",
       &stats.tasks_running},
      {"SELECT COUNT(*) FROM eq_tasks WHERE eq_status = 'complete'",
       &stats.tasks_complete},
      {"SELECT COUNT(*) FROM eq_tasks WHERE eq_status = 'canceled'",
       &stats.tasks_canceled},
      {"SELECT COUNT(*) FROM eq_output_queue", &stats.output_queue_depth},
      {"SELECT COUNT(*) FROM eq_input_queue", &stats.input_queue_depth},
  };
  for (const CountQuery& q : queries) {
    auto r = conn.execute(q.sql);
    if (!r.ok()) return r.error();
    *q.slot = r.value().rows[0][0].as_int();
  }
  return stats;
}

json::Value EmewsService::checkpoint() const {
  return db::dump_database(db_);
}

Status EmewsService::restore(const json::Value& snapshot) {
  if (schema_created_ || running_) {
    return Status(ErrorCode::kConflict,
                  "restore requires a fresh service instance");
  }
  Status s = db::restore_database(db_, snapshot);
  if (!s.is_ok()) return s;
  if (!schema_exists(db_)) {
    return Status(ErrorCode::kInvalidArgument,
                  "snapshot does not contain an EMEWS schema");
  }
  schema_created_ = true;
  running_ = true;
  return Status::ok();
}

}  // namespace osprey::eqsql

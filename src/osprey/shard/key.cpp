#include "osprey/shard/key.h"

#include <unordered_set>

namespace osprey::shard {

const char* shard_key_kind_name(ShardKeyKind kind) {
  switch (kind) {
    case ShardKeyKind::kWorkType: return "work_type";
    case ShardKeyKind::kExpId: return "exp_id";
  }
  return "unknown";
}

const char* shard_scheme_name(ShardScheme scheme) {
  switch (scheme) {
    case ShardScheme::kHash: return "hash";
    case ShardScheme::kRange: return "range";
  }
  return "unknown";
}

std::uint64_t fnv1a(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

std::uint64_t fnv1a(const std::string& s) { return fnv1a(s.data(), s.size()); }

ShardId shard_of_work_type(const ShardSpec& spec, WorkType eq_type) {
  if (spec.shard_count <= 1) return 0;
  if (spec.scheme == ShardScheme::kRange) {
    const std::uint32_t width = spec.range_width > 0 ? spec.range_width : 1;
    const auto block = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(eq_type) / width);
    return static_cast<ShardId>(block % spec.shard_count);
  }
  const std::int64_t key = eq_type;
  return static_cast<ShardId>(fnv1a(&key, sizeof(key)) % spec.shard_count);
}

ShardId shard_of_exp(const ShardSpec& spec, const ExpId& exp_id) {
  if (spec.shard_count <= 1) return 0;
  return static_cast<ShardId>(fnv1a(exp_id) % spec.shard_count);
}

ShardId shard_for(const ShardSpec& spec, WorkType eq_type,
                  const ExpId& exp_id) {
  return spec.key == ShardKeyKind::kExpId ? shard_of_exp(spec, exp_id)
                                          : shard_of_work_type(spec, eq_type);
}

std::vector<TaskId> merge_completed(
    const std::vector<std::vector<TaskId>>& per_shard, std::size_t limit) {
  std::vector<TaskId> merged;
  std::unordered_set<TaskId> seen;
  std::vector<std::size_t> cursor(per_shard.size(), 0);
  bool advanced = true;
  while (advanced && (limit == 0 || merged.size() < limit)) {
    advanced = false;
    for (std::size_t s = 0; s < per_shard.size(); ++s) {
      if (cursor[s] >= per_shard[s].size()) continue;
      advanced = true;
      const TaskId id = per_shard[s][cursor[s]++];
      if (!seen.insert(id).second) continue;  // duplicate across streams
      merged.push_back(id);
      if (limit != 0 && merged.size() >= limit) break;
    }
  }
  return merged;
}

}  // namespace osprey::shard

// Ablation A9 (§II-B2): data ingestion and automated curation — "data
// analysis pipelines, such as for data de-biasing, data integration,
// uncertainty quantification, and more general metadata and provenance
// tracking".
//
// Quantifies what the standard surveillance pipeline buys on a realistic
// stream: a ground-truth epidemic observed through under-reporting, weekend
// suppression, publication lag with revisions, and occasional glitches.
// Reports RMSE to the (scaled) truth before and after curation, the weekend
// bias ratio, and the provenance chain integrity.
#include <cmath>
#include <cstdio>
#include <numeric>

#include "osprey/epi/data.h"
#include "osprey/ingest/curate.h"
#include "osprey/ingest/stream.h"
#include "osprey/sim/sim.h"

using namespace osprey;

namespace {

double rmse(const std::vector<double>& a, const std::vector<double>& b) {
  std::size_t n = std::min(a.size(), b.size());
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(n));
}

double weekend_ratio(const std::vector<double>& s) {
  double weekend = 0, weekday = 0;
  int we = 0, wd = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i % 7 == 5 || i % 7 == 6) {
      weekend += s[i];
      ++we;
    } else {
      weekday += s[i];
      ++wd;
    }
  }
  return (weekend / we) / (weekday / wd);
}

}  // namespace

int main() {
  std::printf("=== A9: surveillance ingestion + curation pipeline ===\n\n");

  // Ground truth epidemic and its ideal (noise-free, fully reported) view.
  epi::SeirParams truth;
  truth.beta = 0.45;
  truth.sigma = 0.25;
  truth.gamma = 0.125;
  const int kDays = 98;
  auto epidemic = epi::run_seir(truth, kDays).value();
  const double report_rate = 0.3;
  std::vector<double> ideal;
  for (double v : epidemic.daily_incidence) ideal.push_back(v * report_rate);

  // The observed stream: weekend suppression + Poisson noise + glitches.
  epi::ReportingModel reporting;
  reporting.report_rate = report_rate;
  reporting.weekend_factor = 0.5;
  epi::Surveillance observed =
      epi::synthesize_surveillance(epidemic.daily_incidence, reporting);
  // Two reporting glitches: a dropped day and a double-counted day.
  observed.reported_cases[40] = std::nan("");
  observed.reported_cases[60] *= 4.0;

  // Publication with lag + revisions, ingested day by day.
  sim::Simulation sim;
  ingest::LaggedSource source(observed.reported_cases, {});
  ingest::StreamIngestor ingestor(sim);
  for (int day = 0; day < source.days(); ++day) {
    (void)ingestor.ingest(source.publish(day, static_cast<double>(day)));
  }
  std::vector<double> raw = ingestor.current_view();

  ingest::CurationPipeline pipeline =
      ingest::standard_surveillance_pipeline(sim);
  std::vector<ingest::ProvenanceRecord> provenance;
  auto curated = pipeline.run(raw, &provenance);
  if (!curated.ok()) {
    std::printf("FAIL: %s\n", curated.error().to_string().c_str());
    return 1;
  }

  // Compare on the settled window (the trailing lag window is incomplete).
  // The naive raw consumer sees the dropped day as zero (missing = 0 is
  // what a pipeline-less workflow would ingest).
  std::vector<double> ideal_settled(ideal.begin(), ideal.end() - 7);
  std::vector<double> raw_settled(raw.begin(), raw.end() - 7);
  for (double& v : raw_settled) {
    if (!std::isfinite(v)) v = 0.0;
  }
  std::vector<double> curated_settled(curated.value().begin(),
                                      curated.value().end() - 7);

  double rmse_raw = rmse(raw_settled, ideal_settled);
  double rmse_curated = rmse(curated_settled, ideal_settled);
  double ratio_raw = weekend_ratio(raw_settled);
  double ratio_curated = weekend_ratio(curated_settled);

  std::printf("%-36s %10s %10s\n", "", "raw", "curated");
  std::printf("%-36s %10.1f %10.1f\n", "RMSE vs ideal reported series",
              rmse_raw, rmse_curated);
  std::printf("%-36s %10.2f %10.2f\n", "weekend/weekday ratio (ideal 1.0)",
              ratio_raw, ratio_curated);
  std::printf("%-36s %10.0f %10.0f\n", "glitch day 60 value",
              raw_settled[60], curated_settled[60]);
  std::printf("\nprovenance: %zu stages, chain %s\n", provenance.size(),
              [&] {
                for (std::size_t i = 1; i < provenance.size(); ++i) {
                  if (provenance[i].input_checksum !=
                      provenance[i - 1].output_checksum) {
                    return "BROKEN";
                  }
                }
                return "intact";
              }());

  std::printf("\n--- shape checks vs the paper ---\n");
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok) ++failures;
  };
  check(rmse_curated < rmse_raw * 0.6,
        "curation substantially reduces error vs the ideal series");
  check(std::fabs(ratio_curated - 1.0) < std::fabs(ratio_raw - 1.0) / 2,
        "weekday de-biasing removes most of the weekend artifact");
  check(curated_settled[60] < raw_settled[60] / 2,
        "outlier clipping suppresses the double-count glitch");
  check(provenance.size() == 4,
        "every stage recorded provenance");
  check([&] {
        for (std::size_t i = 1; i < provenance.size(); ++i) {
          if (provenance[i].input_checksum !=
              provenance[i - 1].output_checksum) {
            return false;
          }
        }
        return true;
      }(),
        "the provenance checksum chain is intact");
  return failures == 0 ? 0 : 1;
}

// Ablation A6 (§VI): GPR retraining cost grows with the number of completed
// results (50, 100, ..., 700 at the paper's scale), which is why the
// reprioritization windows in Fig 4's top panel lengthen over the campaign.
// Also measures prediction (re-ranking) cost and the lengthscale search.
#include <benchmark/benchmark.h>

#include "osprey/me/functions.h"
#include "osprey/me/gpr.h"

using namespace osprey;
using namespace osprey::me;

namespace {

std::pair<std::vector<Point>, std::vector<double>> make_data(int n, int dim) {
  Rng rng(42);
  std::vector<Point> x = uniform_samples(rng, n, dim, -32.768, 32.768);
  std::vector<double> y;
  y.reserve(x.size());
  for (const Point& p : x) y.push_back(ackley(p));
  return {std::move(x), std::move(y)};
}

GprConfig standard_config() {
  GprConfig config;
  config.lengthscale = 10.0;
  config.noise = 1e-4;
  return config;
}

void BM_GprFit(benchmark::State& state) {
  auto [x, y] = make_data(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    GPR model(standard_config());
    benchmark::DoNotOptimize(model.fit(x, y));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
// The paper's retrain sizes: first (50) to last (700) reprioritization.
BENCHMARK(BM_GprFit)->Arg(50)->Arg(150)->Arg(350)->Arg(700)
    ->Unit(benchmark::kMillisecond);

void BM_GprPredictBatch(benchmark::State& state) {
  auto [x, y] = make_data(static_cast<int>(state.range(0)), 4);
  GPR model(standard_config());
  if (!model.fit(x, y).is_ok()) std::abort();
  Rng rng(7);
  auto candidates = uniform_samples(rng, 700, 4, -32.768, 32.768);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_batch(candidates));
  }
  state.SetItemsProcessed(state.iterations() * 700);
}
BENCHMARK(BM_GprPredictBatch)->Arg(50)->Arg(350)->Arg(700)
    ->Unit(benchmark::kMillisecond);

void BM_Reprioritize(benchmark::State& state) {
  // The full §VI reprioritization step: fit + rank the remaining tasks.
  auto [x, y] = make_data(static_cast<int>(state.range(0)), 4);
  Rng rng(9);
  auto remaining =
      uniform_samples(rng, 750 - static_cast<int>(state.range(0)), 4, -32, 32);
  for (auto _ : state) {
    GPR model(standard_config());
    if (!model.fit(x, y).is_ok()) std::abort();
    benchmark::DoNotOptimize(promising_first_priorities(model, remaining));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Reprioritize)->Arg(50)->Arg(350)->Arg(700)
    ->Unit(benchmark::kMillisecond);

void BM_LengthscaleSearch(benchmark::State& state) {
  auto [x, y] = make_data(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GPR::fit_lengthscale_search(
        x, y, standard_config(), 1.0, 50.0, 10));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LengthscaleSearch)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_AckleyEvaluation(benchmark::State& state) {
  Rng rng(3);
  auto points = uniform_samples(rng, 1000, 4, -32.768, 32.768);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ackley(points[i++ % points.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AckleyEvaluation);

}  // namespace

BENCHMARK_MAIN();

#include "osprey/storage/row_store.h"

namespace osprey::storage {

std::size_t row_bytes(const db::Row& row) {
  // sizeof(Value) underestimates text payloads; count those explicitly.
  std::size_t n = sizeof(db::Row) + row.size() * sizeof(db::Value);
  for (const db::Value& v : row) {
    if (v.is_text()) n += v.as_text().size();
  }
  return n;
}

void MemStore::put(db::RowId id, db::Row row) {
  rows_[id] = std::move(row);
}

std::optional<db::Row> MemStore::get(db::RowId id) const {
  auto it = rows_.find(id);
  if (it == rows_.end()) return std::nullopt;
  return it->second;
}

const db::Row* MemStore::get_ref(db::RowId id) const {
  auto it = rows_.find(id);
  return it == rows_.end() ? nullptr : &it->second;
}

bool MemStore::erase(db::RowId id) { return rows_.erase(id) > 0; }

void MemStore::clear() { rows_.clear(); }

std::size_t MemStore::size() const { return rows_.size(); }

bool MemStore::contains(db::RowId id) const { return rows_.count(id) > 0; }

std::vector<db::RowId> MemStore::ids() const {
  std::vector<db::RowId> out;
  out.reserve(rows_.size());
  for (const auto& [id, _] : rows_) out.push_back(id);
  return out;
}

Status MemStore::scan(
    const std::function<Status(db::RowId, const db::Row&)>& fn) const {
  for (const auto& [id, row] : rows_) {
    Status s = fn(id, row);
    if (!s.is_ok()) return s;
  }
  return Status::ok();
}

}  // namespace osprey::storage

// Ablation A8 (§VI / §II-B1c): pilot-job start delay — "they do not
// immediately start consuming tasks at that time due to delays between
// submitting a worker pool job to Bebop and it actually beginning", and
// computational availability "can fluctuate due to demand".
//
// Sweep cluster load (background jobs competing for nodes) and report the
// queue-wait distribution for a 1-node pilot pool job.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "osprey/sched/scheduler.h"

using namespace osprey;

namespace {

struct LoadRow {
  double jobs_per_hour = 0;
  double p50 = 0;
  double p90 = 0;
  double max = 0;
};

LoadRow run_load(double background_jobs_per_hour, std::uint64_t seed) {
  sim::Simulation sim;
  sched::SchedulerConfig config;
  config.total_nodes = 8;
  config.submit_overhead_median = 20.0;
  config.submit_overhead_sigma = 0.4;
  config.seed = seed;
  sched::Scheduler cluster(sim, config);
  Rng rng(seed * 3 + 1);

  // Background load: jobs of 1-4 nodes with 10-40 minute runtimes arriving
  // as a Poisson process for 8 hours.
  double t = 0;
  const double horizon = 8 * 3600.0;
  while (t < horizon) {
    t += rng.exponential(background_jobs_per_hour / 3600.0);
    int nodes = static_cast<int>(rng.uniform_int(1, 4));
    double runtime = rng.uniform(600.0, 2400.0);
    sim.schedule_at(t, [&cluster, nodes, runtime, &sim] {
      sched::JobSpec spec;
      spec.nodes = nodes;
      spec.walltime = runtime;  // background jobs run to their walltime
      (void)cluster.submit(spec);
      (void)sim;
    });
  }

  // Probe: submit a 1-node pilot job every 30 minutes; measure its wait.
  std::vector<double> waits;
  for (double probe_t = 900.0; probe_t < horizon; probe_t += 1800.0) {
    sim.schedule_at(probe_t, [&cluster, &waits, &sim] {
      sched::JobSpec spec;
      spec.nodes = 1;
      spec.walltime = 60.0;  // short pilot: finishes quickly
      double submitted = sim.now();
      spec.on_start = [&waits, submitted, &sim](sched::JobId) {
        waits.push_back(sim.now() - submitted);
      };
      (void)cluster.submit(spec);
    });
  }

  sim.run();
  std::sort(waits.begin(), waits.end());
  LoadRow row;
  row.jobs_per_hour = background_jobs_per_hour;
  if (!waits.empty()) {
    row.p50 = waits[waits.size() / 2];
    row.p90 = waits[waits.size() * 9 / 10];
    row.max = waits.back();
  }
  return row;
}

}  // namespace

int main() {
  std::printf("=== A8: scheduler queue-wait vs cluster load ===\n");
  std::printf("8-node cluster, 1-node pilot probes, lognormal submission "
              "overhead (median 20s)\n\n");
  std::printf("%12s %10s %10s %10s\n", "bg jobs/hr", "p50 wait", "p90 wait",
              "max wait");

  std::vector<LoadRow> rows;
  for (double load : {2.0, 8.0, 16.0, 24.0}) {
    LoadRow row = run_load(load, 11);
    std::printf("%12.0f %9.0fs %9.0fs %9.0fs\n", row.jobs_per_hour, row.p50,
                row.p90, row.max);
    rows.push_back(row);
  }

  std::printf("\n--- shape checks vs the paper ---\n");
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok) ++failures;
  };
  check(rows[0].p50 > 5.0,
        "even an idle cluster delays pool starts (submission overhead; the "
        "paper's pools started 26-28s after submission)");
  check(rows.back().p90 > rows.front().p90,
        "queue waits grow with background load (availability fluctuates)");
  check(rows.back().p90 > 60.0,
        "under heavy load, pilot pools wait minutes — the Fig-4 start lag");
  return failures == 0 ? 0 : 1;
}

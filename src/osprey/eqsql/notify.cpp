#include "osprey/eqsql/notify.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "osprey/eqsql/schema.h"

namespace osprey::eqsql {

const char* wait_strategy_name(WaitStrategy s) {
  switch (s) {
    case WaitStrategy::kAuto: return "auto";
    case WaitStrategy::kNotify: return "notify";
    case WaitStrategy::kPoll: return "poll";
  }
  return "?";
}

Notifier::Notifier()
    : obs_commits_(
          obs::telemetry().metrics.counter("osprey_notify_commits_total")),
      obs_work_signals_(obs::telemetry().metrics.counter(
          "osprey_notify_work_signals_total")),
      obs_result_signals_(obs::telemetry().metrics.counter(
          "osprey_notify_result_signals_total")) {}

Notifier::~Notifier() { detach(); }

void Notifier::attach(db::Database& db) {
  if (db_ == &db && db.commit_observer() == this) return;
  detach();
  db_ = &db;
  inner_ = db.commit_observer();
  db.set_commit_observer(this);
}

void Notifier::detach() {
  if (db_ == nullptr) return;
  if (db_->commit_observer() == this) db_->set_commit_observer(inner_);
  db_ = nullptr;
  inner_ = nullptr;
}

Notifier::WorkChannel& Notifier::channel(WorkType eq_type) {
  std::lock_guard<std::mutex> lock(channels_mutex_);
  std::unique_ptr<WorkChannel>& slot = channels_[eq_type];
  if (!slot) slot = std::make_unique<WorkChannel>();
  return *slot;
}

const std::atomic<std::uint64_t>& Notifier::work_channel(WorkType eq_type) {
  return channel(eq_type).version;
}

bool Notifier::wait_for_work(WorkType eq_type, std::uint64_t seen,
                             Duration timeout) {
  const std::atomic<std::uint64_t>& version = channel(eq_type).version;
  if (version.load(std::memory_order_acquire) != seen) return true;
  if (timeout <= 0.0) return false;
  std::unique_lock<std::mutex> lock(wait_mutex_);
  return wait_cv_.wait_for(lock, std::chrono::duration<double>(timeout), [&] {
    return version.load(std::memory_order_acquire) != seen;
  });
}

bool Notifier::wait_for_result(std::uint64_t seen, Duration timeout) {
  if (result_version_.load(std::memory_order_acquire) != seen) return true;
  if (timeout <= 0.0) return false;
  std::unique_lock<std::mutex> lock(wait_mutex_);
  return wait_cv_.wait_for(lock, std::chrono::duration<double>(timeout), [&] {
    return result_version_.load(std::memory_order_acquire) != seen;
  });
}

Notifier::ListenerId Notifier::on_work(WorkType eq_type,
                                       std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(listener_mutex_);
  ListenerId id = next_listener_id_++;
  Listener listener;
  listener.eq_type = eq_type;
  listener.work = std::move(fn);
  listeners_.emplace(id, std::move(listener));
  return id;
}

Notifier::ListenerId Notifier::on_result(std::function<void(TaskId)> fn) {
  std::lock_guard<std::mutex> lock(listener_mutex_);
  ListenerId id = next_listener_id_++;
  Listener listener;
  listener.result = std::move(fn);
  listeners_.emplace(id, std::move(listener));
  return id;
}

void Notifier::remove_listener(ListenerId id) {
  std::lock_guard<std::mutex> lock(listener_mutex_);
  listeners_.erase(id);
}

Status Notifier::on_commit(db::Database& db,
                           const std::vector<db::UndoRecord>& journal) {
  // Durability first: the wrapped observer (the WAL) sees the journal and
  // keeps its veto. A vetoed commit rolls back and must notify no one.
  if (inner_ != nullptr) {
    Status inner = inner_->on_commit(db, journal);
    if (!inner.is_ok()) return inner;
  }

  // Scan the journal for waiter-relevant events. Post-state rows are still
  // in place (on_commit runs before the transaction releases them), so the
  // row read below sees what the commit is publishing. A row inserted and
  // deleted within the same transaction has no post-state and signals no one.
  std::vector<WorkType> work_types;
  std::vector<TaskId> result_ids;
  for (const db::UndoRecord& rec : journal) {
    if (rec.kind == db::UndoRecord::Kind::kInsert &&
        rec.table == kOutputQueueTable) {
      const db::Table* table = db.table(kOutputQueueTable);
      if (table == nullptr) continue;
      std::optional<db::Row> row = table->get(rec.row_id);
      if (!row) continue;
      WorkType eq_type = static_cast<WorkType>((*row)[1].as_int());
      if (std::find(work_types.begin(), work_types.end(), eq_type) ==
          work_types.end()) {
        work_types.push_back(eq_type);
      }
    } else if (rec.kind == db::UndoRecord::Kind::kInsert &&
               rec.table == kInputQueueTable) {
      const db::Table* table = db.table(kInputQueueTable);
      if (table == nullptr) continue;
      std::optional<db::Row> row = table->get(rec.row_id);
      if (!row) continue;
      result_ids.push_back((*row)[0].as_int());
    } else if (rec.kind == db::UndoRecord::Kind::kUpdate &&
               rec.table == kTasksTable) {
      // Cancellation is a result-channel event: a waiter blocked on the
      // task must wake to observe kCanceled instead of sleeping to timeout.
      const db::Table* table = db.table(kTasksTable);
      if (table == nullptr) continue;
      std::optional<db::Row> row = table->get(rec.row_id);
      if (!row) continue;
      if ((*row)[2].as_text() == "canceled" &&
          rec.old_row[2].as_text() != "canceled") {
        result_ids.push_back((*row)[0].as_int());
      }
    }
  }

  commits_seen_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) obs_commits_.inc();
  if (work_types.empty() && result_ids.empty()) return Status::ok();

  // Publish versions, then wake. Bumping before taking wait_mutex_ would let
  // a waiter that already re-checked slip back to sleep between our bump and
  // notify; holding the lock across both closes that window. The fallback
  // slice in the wait loops bounds the damage of any future regression here.
  {
    std::lock_guard<std::mutex> lock(wait_mutex_);
    for (WorkType eq_type : work_types) {
      channel(eq_type).version.fetch_add(1, std::memory_order_acq_rel);
    }
    if (!result_ids.empty()) {
      result_version_.fetch_add(1, std::memory_order_acq_rel);
    }
    wait_cv_.notify_all();
  }

  work_signals_.fetch_add(work_types.size(), std::memory_order_relaxed);
  result_signals_.fetch_add(result_ids.size(), std::memory_order_relaxed);
  if (obs::enabled()) {
    if (!work_types.empty()) obs_work_signals_.inc(work_types.size());
    if (!result_ids.empty()) obs_result_signals_.inc(result_ids.size());
  }

  // Listener callbacks last, serialized so remove_listener() can guarantee
  // "never runs again". Listeners fire in registration order — in the
  // simulation that makes the schedule_in(0) events land in a deterministic
  // sequence per committing event.
  {
    std::lock_guard<std::mutex> lock(listener_mutex_);
    for (const auto& [id, listener] : listeners_) {
      (void)id;
      if (listener.work) {
        if (std::find(work_types.begin(), work_types.end(),
                      listener.eq_type) != work_types.end()) {
          listener.work();
        }
      } else if (listener.result) {
        for (TaskId task_id : result_ids) listener.result(task_id);
      }
    }
  }
  return Status::ok();
}

Status Notifier::on_create_table(const db::Table& table) {
  if (inner_ != nullptr) return inner_->on_create_table(table);
  return Status::ok();
}

Status Notifier::on_drop_table(const std::string& name) {
  if (inner_ != nullptr) return inner_->on_drop_table(name);
  return Status::ok();
}

Status Notifier::on_create_index(const std::string& table,
                                 const std::string& column) {
  if (inner_ != nullptr) return inner_->on_create_index(table, column);
  return Status::ok();
}

}  // namespace osprey::eqsql

// Seeded random number generation and the task-runtime model.
//
// §VI: "We have added a lognormally distributed 'sleep' delay to the Ackley
// function implementation to increase the otherwise millisecond runtime and
// to add task runtime heterogeneity." LognormalRuntime reproduces that model
// and is shared by the simulated and the threaded execution paths so both
// see the same heterogeneity.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "osprey/core/types.h"

namespace osprey {

/// Deterministic per-component RNG. A thin wrapper over mt19937_64 so seeds
/// are explicit at construction and never global.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal draw scaled to N(mean, sd).
  double normal(double mean = 0.0, double sd = 1.0) {
    return std::normal_distribution<double>(mean, sd)(engine_);
  }

  /// Lognormal draw with the given log-space parameters.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Exponential draw with the given rate.
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Poisson draw with the given mean.
  std::int64_t poisson(double mean) {
    return std::poisson_distribution<std::int64_t>(mean)(engine_);
  }

  /// Bernoulli draw.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// The paper's lognormal task-runtime model. Parameterized by the median
/// runtime and the log-space sigma; median parameterization makes scaled
/// (fast test) and full-scale (figure) configurations trivially related.
class LognormalRuntime {
 public:
  /// median: runtime in seconds at the 50th percentile; sigma: log-space
  /// spread (0 => constant runtime equal to median).
  LognormalRuntime(double median_seconds, double sigma)
      : mu_(std::log(median_seconds)), sigma_(sigma) {}

  Duration sample(Rng& rng) const {
    if (sigma_ == 0.0) return std::exp(mu_);
    return rng.lognormal(mu_, sigma_);
  }

  double median() const { return std::exp(mu_); }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// Splits one master seed into per-component seeds, so a single workflow
/// seed determines every stochastic component deterministically.
class SeedSequence {
 public:
  explicit SeedSequence(std::uint64_t master) : state_(master) {}

  std::uint64_t next() {
    // splitmix64: a well-distributed stream from a sequential state.
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

}  // namespace osprey

#include "osprey/pool/monitor.h"

#include <utility>
#include <vector>

#include "osprey/core/log.h"

namespace osprey::pool {

PoolMonitor::PoolMonitor(sim::Simulation& sim, eqsql::EQSQL& api,
                         MonitorConfig config)
    : sim_(sim), api_(api), config_(config) {}

Status PoolMonitor::watch(const PoolId& pool, OnStall on_stall) {
  if (pool.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty pool name");
  }
  Watched watched;
  watched.on_stall = std::move(on_stall);
  watched.last_progress_at = sim_.now();
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = watched_.emplace(pool, std::move(watched));
  (void)it;
  if (!inserted) {
    return Status(ErrorCode::kConflict, "already watching '" + pool + "'");
  }
  return Status::ok();
}

void PoolMonitor::unwatch(const PoolId& pool) {
  std::lock_guard<std::mutex> lock(mutex_);
  watched_.erase(pool);
}

Status PoolMonitor::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return Status(ErrorCode::kConflict, "monitor already started");
  started_ = true;
  sim_.schedule_in(config_.check_interval, [this] { check(); });
  return Status::ok();
}

void PoolMonitor::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
}

bool PoolMonitor::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return started_ && !stopped_;
}

std::size_t PoolMonitor::watched_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return watched_.size();
}

std::size_t PoolMonitor::stalls_detected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stalls_detected_;
}

std::size_t PoolMonitor::lease_requeues() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lease_requeues_;
}

void PoolMonitor::check() {
  // Callbacks collected under the lock, invoked outside it: a stall handler
  // is free to re-watch a relaunched pool without deadlocking.
  std::vector<std::pair<PoolId, std::size_t>> fired;
  std::vector<OnStall> callbacks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    std::vector<PoolId> stalled;
    for (auto& [pool, watched] : watched_) {
      Result<std::int64_t> completed = api_.pool_completed_count(pool);
      Result<std::int64_t> running = api_.pool_running_count(pool);
      if (!completed.ok() || !running.ok()) continue;

      if (completed.value() > watched.last_completed) {
        watched.last_completed = completed.value();
        watched.last_progress_at = sim_.now();
        watched.ever_active = true;
        continue;
      }
      if (running.value() == 0) {
        // Nothing owned: idle or not started yet — not a stall.
        watched.last_progress_at = sim_.now();
        continue;
      }
      // Owns running tasks, no completions since last progress.
      if (sim_.now() - watched.last_progress_at >= config_.stall_timeout) {
        stalled.push_back(pool);
      }
    }

    for (const PoolId& pool : stalled) {
      Result<std::size_t> requeued = api_.requeue_pool_tasks(pool);
      std::size_t count = requeued.ok() ? requeued.value() : 0;
      ++stalls_detected_;
      OSPREY_LOG(kWarn, "monitor")
          << "pool '" << pool << "' stalled; requeued " << count << " tasks";
      auto it = watched_.find(pool);
      if (it != watched_.end()) {
        fired.emplace_back(pool, count);
        callbacks.push_back(std::move(it->second.on_stall));
        watched_.erase(it);  // a stalled pool is no longer watched
      }
    }

    if (config_.task_lease > 0) {
      Result<std::size_t> reaped =
          api_.requeue_stalled_tasks(config_.task_lease);
      if (reaped.ok() && reaped.value() > 0) {
        lease_requeues_ += reaped.value();
        OSPREY_LOG(kWarn, "monitor")
            << "lease expired on " << reaped.value() << " running tasks; "
            << "requeued";
      }
    }
  }

  for (std::size_t i = 0; i < callbacks.size(); ++i) {
    if (callbacks[i]) callbacks[i](fired[i].first, fired[i].second);
  }

  sim_.schedule_in(config_.check_interval, [this] { check(); });
}

}  // namespace osprey::pool

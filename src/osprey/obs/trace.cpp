#include "osprey/obs/trace.h"

#include <algorithm>
#include <unordered_map>

#include "osprey/obs/metrics.h"

namespace osprey::obs {

const char* task_event_kind_name(TaskEventKind kind) {
  switch (kind) {
    case TaskEventKind::kSubmitted: return "submitted";
    case TaskEventKind::kClaimed: return "claimed";
    case TaskEventKind::kRunStart: return "run_start";
    case TaskEventKind::kReported: return "reported";
    case TaskEventKind::kRunEnd: return "run_end";
    case TaskEventKind::kCompleted: return "completed";
    case TaskEventKind::kRequeued: return "requeued";
    case TaskEventKind::kCanceled: return "canceled";
    case TaskEventKind::kStalled: return "stalled";
  }
  return "?";
}

void TraceRecorder::record(const TaskEvent& event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

std::vector<TaskEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

namespace {

/// Per-task assembly state: the timestamp of the last milestone of each kind,
/// advanced as the task's events stream past in causal order.
struct TaskCursor {
  bool has_queue_start = false;  // submitted or requeued
  TimePoint queue_start = 0.0;
  bool has_claim = false;
  TimePoint claim = 0.0;
  bool has_run_start = false;
  TimePoint run_start = 0.0;
  bool has_report = false;
  TimePoint report = 0.0;
};

}  // namespace

std::vector<TaskSpan> assemble_spans(const std::vector<TaskEvent>& events) {
  std::vector<TaskSpan> spans;
  std::unordered_map<TaskId, TaskCursor> cursors;
  for (const TaskEvent& e : events) {
    TaskCursor& c = cursors[e.task_id];
    switch (e.kind) {
      case TaskEventKind::kSubmitted:
        c.has_queue_start = true;
        c.queue_start = e.time;
        break;
      case TaskEventKind::kRequeued:
        // Back in the output queue: the next claim opens a fresh cycle.
        c.has_queue_start = true;
        c.queue_start = e.time;
        c.has_claim = c.has_run_start = c.has_report = false;
        break;
      case TaskEventKind::kClaimed:
        if (c.has_queue_start) {
          spans.push_back({e.task_id, "queued", e.pool, c.queue_start, e.time});
          c.has_queue_start = false;
        }
        c.has_claim = true;
        c.claim = e.time;
        break;
      case TaskEventKind::kRunStart:
        if (c.has_claim) {
          spans.push_back({e.task_id, "cache_wait", e.pool, c.claim, e.time});
          c.has_claim = false;
        }
        c.has_run_start = true;
        c.run_start = e.time;
        break;
      case TaskEventKind::kReported:
        if (c.has_run_start) {
          spans.push_back({e.task_id, "run", e.pool, c.run_start, e.time});
          c.has_run_start = false;
        }
        c.has_report = true;
        c.report = e.time;
        break;
      case TaskEventKind::kCompleted:
        if (c.has_report) {
          spans.push_back(
              {e.task_id, "await_result", e.pool, c.report, e.time});
          c.has_report = false;
        }
        break;
      case TaskEventKind::kRunEnd:
      case TaskEventKind::kCanceled:
      case TaskEventKind::kStalled:
        // Concurrency bookkeeping / terminal markers; no span boundary.
        break;
    }
  }
  return spans;
}

json::Value chrome_trace(const std::vector<TaskEvent>& events) {
  constexpr double kMicros = 1e6;
  json::Array trace_events;
  for (const TaskSpan& span : assemble_spans(events)) {
    json::Object ev;
    ev["name"] = span.name;
    ev["cat"] = std::string("task");
    ev["ph"] = std::string("X");
    ev["ts"] = span.begin * kMicros;
    ev["dur"] = (span.end - span.begin) * kMicros;
    ev["pid"] = std::int64_t{1};
    ev["tid"] = span.task_id;
    json::Object args;
    args["task_id"] = span.task_id;
    if (!span.pool.empty()) args["pool"] = span.pool;
    ev["args"] = std::move(args);
    trace_events.emplace_back(std::move(ev));
  }
  for (const TaskEvent& e : events) {
    if (e.kind != TaskEventKind::kRequeued &&
        e.kind != TaskEventKind::kCanceled &&
        e.kind != TaskEventKind::kStalled) {
      continue;
    }
    json::Object ev;
    ev["name"] = std::string(task_event_kind_name(e.kind));
    ev["cat"] = std::string("task");
    ev["ph"] = std::string("i");
    ev["s"] = std::string("t");  // thread-scoped instant
    ev["ts"] = e.time * kMicros;
    ev["pid"] = std::int64_t{1};
    ev["tid"] = e.task_id;
    json::Object args;
    args["task_id"] = e.task_id;
    if (!e.pool.empty()) args["pool"] = e.pool;
    ev["args"] = std::move(args);
    trace_events.emplace_back(std::move(ev));
  }
  json::Object doc;
  doc["traceEvents"] = std::move(trace_events);
  doc["displayTimeUnit"] = std::string("ms");
  return doc;
}

}  // namespace osprey::obs

// Cross-module integration tests: whole-campaign scenarios exercising the
// public API end to end on the discrete-event simulator.
#include <gtest/gtest.h>

#include "osprey/epi/calibrate.h"
#include "osprey/eqsql/schema.h"
#include "osprey/eqsql/service.h"
#include "osprey/faas/service.h"
#include "osprey/json/json.h"
#include "osprey/me/async_driver.h"
#include "osprey/me/sampler.h"
#include "osprey/me/task_runners.h"
#include "osprey/proxystore/proxy.h"
#include "osprey/sched/scheduler.h"

namespace osprey {
namespace {

constexpr WorkType kSimWork = 1;
constexpr WorkType kGpuWork = 2;

pool::SimPoolConfig sim_pool_config(const PoolId& name, WorkType type,
                                    int workers) {
  pool::SimPoolConfig c;
  c.name = name;
  c.work_type = type;
  c.num_workers = workers;
  c.batch_size = workers;
  c.threshold = 1;
  c.query_cost = 0.3;
  c.query_jitter = 0.0;
  c.idle_shutdown = 10.0;
  return c;
}

// --- multi-work-type: the §IV-D CPU/GPU example --------------------------------

TEST(IntegrationTest, CpuAndGpuPoolsConsumeOnlyTheirWorkType) {
  // "An ME algorithm may have two types of tasks ... 1) a multi-process
  // MPI-based simulation model; and 2) an optimization component that most
  // efficiently runs on a GPU. Two worker pools can be launched and
  // configured on resources appropriate for these two different work types."
  sim::Simulation sim;
  db::Database db;
  db::sql::Connection conn(db);
  ASSERT_TRUE(eqsql::create_schema(conn).is_ok());
  eqsql::EQSQL api(db, sim);

  std::vector<std::string> sim_payloads(60, json::array_of({1.0, 2.0}).dump());
  std::vector<std::string> gpu_payloads(20, json::array_of({3.0}).dump());
  ASSERT_TRUE(api.submit_tasks("mixed", kSimWork, sim_payloads).ok());
  ASSERT_TRUE(api.submit_tasks("mixed", kGpuWork, gpu_payloads).ok());

  // A CPU pool (many slow workers) and a GPU pool (few fast workers).
  pool::SimWorkerPool cpu_pool(sim, api,
                               sim_pool_config("cpu_pool", kSimWork, 16),
                               me::ackley_sim_runner(10.0, 0.4), 1);
  pool::SimWorkerPool gpu_pool(sim, api,
                               sim_pool_config("gpu_pool", kGpuWork, 4),
                               me::ackley_sim_runner(2.0, 0.2), 2);
  ASSERT_TRUE(cpu_pool.start().is_ok());
  ASSERT_TRUE(gpu_pool.start().is_ok());
  sim.run();

  EXPECT_EQ(cpu_pool.tasks_completed(), 60u);
  EXPECT_EQ(gpu_pool.tasks_completed(), 20u);
  // Ownership is recorded per pool in the tasks table.
  auto ids = api.experiment_tasks("mixed").value();
  for (TaskId id : ids) {
    auto record = api.task_record(id).value();
    ASSERT_TRUE(record.worker_pool.has_value());
    if (record.eq_type == kSimWork) {
      EXPECT_EQ(*record.worker_pool, "cpu_pool");
    } else {
      EXPECT_EQ(*record.worker_pool, "gpu_pool");
    }
  }
}

// --- crash recovery mid-campaign ------------------------------------------------

TEST(IntegrationTest, PoolCrashMidCampaignRecoversWithoutLosingTasks) {
  sim::Simulation sim;
  db::Database db;
  db::sql::Connection conn(db);
  ASSERT_TRUE(eqsql::create_schema(conn).is_ok());
  eqsql::EQSQL api(db, sim);

  std::vector<std::string> payloads(100, json::array_of({1.0}).dump());
  auto ids = api.submit_tasks("crashy", kSimWork, payloads).value();

  auto doomed = std::make_unique<pool::SimWorkerPool>(
      sim, api, sim_pool_config("doomed", kSimWork, 8),
      me::ackley_sim_runner(10.0, 0.3), 3);
  ASSERT_TRUE(doomed->start().is_ok());

  // Crash the pool mid-flight; a monitor notices and requeues its tasks,
  // then a replacement pool finishes the campaign (§IV-B: tasks "can be
  // executed if not yet running or restarted if necessary").
  sim.schedule_at(25.0, [&] { doomed->crash(); });
  sim.schedule_at(40.0, [&] {
    auto recovered = api.requeue_pool_tasks("doomed");
    ASSERT_TRUE(recovered.ok());
    EXPECT_GT(recovered.value(), 0u);
  });
  auto rescue = std::make_unique<pool::SimWorkerPool>(
      sim, api, sim_pool_config("rescue", kSimWork, 8),
      me::ackley_sim_runner(10.0, 0.3), 4);
  sim.schedule_at(45.0, [&] { ASSERT_TRUE(rescue->start().is_ok()); });
  sim.run();

  // Every task completed exactly once; none stuck or duplicated.
  std::size_t complete = 0;
  for (TaskId id : ids) {
    auto status = api.task_status(id).value();
    EXPECT_EQ(status, eqsql::TaskStatus::kComplete) << "task " << id;
    if (status == eqsql::TaskStatus::kComplete) ++complete;
  }
  EXPECT_EQ(complete, ids.size());
  EXPECT_EQ(doomed->tasks_completed() + rescue->tasks_completed(), 100u);
}

// --- checkpoint / resume on another "resource" ----------------------------------

TEST(IntegrationTest, CheckpointMidCampaignResumesElsewhere) {
  // Phase 1: run a campaign to ~half completion on "bebop", checkpoint.
  ManualClock clock;
  eqsql::EmewsService bebop_service(clock);
  ASSERT_TRUE(bebop_service.start().is_ok());
  auto api = bebop_service.connect().take();
  std::vector<std::string> payloads(40, json::array_of({1.0, 2.0}).dump());
  auto ids = api->submit_tasks("movable", kSimWork, payloads).value();
  // Execute half the tasks "on bebop".
  auto handles = api->try_query_tasks(kSimWork, 20, "bebop_pool").value();
  for (const auto& h : handles) {
    ASSERT_TRUE(api->report_task(h.eq_task_id, kSimWork, "{\"y\":1.0}").is_ok());
  }
  json::Value snapshot = bebop_service.checkpoint();
  ASSERT_TRUE(bebop_service.stop().is_ok());

  // Phase 2: restore on "theta" (a fresh service), finish the campaign.
  eqsql::EmewsService theta_service(clock);
  ASSERT_TRUE(theta_service.restore(snapshot).is_ok());
  auto api2 = theta_service.connect().take();
  EXPECT_EQ(api2->queued_count(kSimWork).value(), 20);
  auto rest = api2->try_query_tasks(kSimWork, 20, "theta_pool").value();
  EXPECT_EQ(rest.size(), 20u);
  for (const auto& h : rest) {
    ASSERT_TRUE(api2->report_task(h.eq_task_id, kSimWork, "{\"y\":2.0}").is_ok());
  }
  for (TaskId id : ids) {
    EXPECT_EQ(api2->task_status(id).value(), eqsql::TaskStatus::kComplete);
  }
  // Results reported before the move are still retrievable after it.
  EXPECT_EQ(api2->try_query_result(ids.front()).value(), "{\"y\":1.0}");
}

// --- cancellation under load -----------------------------------------------------

TEST(IntegrationTest, MidCampaignCancellationStopsQueuedWork) {
  sim::Simulation sim;
  db::Database db;
  db::sql::Connection conn(db);
  ASSERT_TRUE(eqsql::create_schema(conn).is_ok());
  eqsql::EQSQL api(db, sim);

  std::vector<std::string> payloads(100, json::array_of({1.0}).dump());
  auto ids = api.submit_tasks("cancelable", kSimWork, payloads).value();
  pool::SimWorkerPool pool(sim, api, sim_pool_config("p", kSimWork, 4),
                           me::ackley_sim_runner(10.0, 0.0), 5);
  ASSERT_TRUE(pool.start().is_ok());
  // At t=35 (pool holds 4 running + up to 4 requeried), cancel everything.
  std::size_t canceled_count = 0;
  sim.schedule_at(35.0, [&] {
    auto canceled = api.cancel_tasks(ids);
    ASSERT_TRUE(canceled.ok());
    canceled_count = canceled.value();
  });
  sim.run();

  EXPECT_GT(canceled_count, 50u);
  // Everything ends terminal: complete or canceled; nothing queued/running.
  std::size_t complete = 0;
  std::size_t canceled_status = 0;
  for (TaskId id : ids) {
    switch (api.task_status(id).value()) {
      case eqsql::TaskStatus::kComplete: ++complete; break;
      case eqsql::TaskStatus::kCanceled: ++canceled_status; break;
      default: FAIL() << "task " << id << " not terminal";
    }
  }
  EXPECT_EQ(complete + canceled_status, 100u);
  // Tasks running at cancel time still executed to completion in the pool
  // (their late reports were dropped with kCanceled), so the pool's count
  // can exceed the DB's completed count by up to the worker count.
  EXPECT_GE(pool.tasks_completed(), complete);
  EXPECT_LE(pool.tasks_completed() - complete, 4u);
  EXPECT_EQ(api.queued_count(kSimWork).value(), 0);
}

// --- the epi campaign end-to-end with remote retraining ---------------------------

TEST(IntegrationTest, EpiCalibrationWithRemoteRetrainAndProxies) {
  sim::Simulation sim;
  net::Network network = net::Network::testbed();
  faas::AuthService auth(sim);
  faas::FaaSService faas_service(sim, network, auth);
  faas::Token token = auth.issue("epi-modeler");
  transfer::TransferService transfers(sim, network);
  proxystore::GlobusStore globus(transfers, "bebop");

  db::Database db;
  db::sql::Connection conn(db);
  ASSERT_TRUE(eqsql::create_schema(conn).is_ok());
  eqsql::EQSQL api(db, sim);

  epi::SeirParams truth;
  truth.beta = 0.4;
  truth.sigma = 0.2;
  truth.gamma = 0.1;
  epi::CalibrationProblem problem =
      epi::make_synthetic_problem(truth, 90, epi::ReportingModel{});

  faas::Endpoint theta("theta-ep", "theta");
  ASSERT_TRUE(faas_service.register_endpoint(theta).is_ok());
  int remote_retrains = 0;
  ASSERT_TRUE(theta.registry()
                  .register_function(
                      "retrain",
                      [&](const json::Value& payload) -> Result<json::Value> {
                        ++remote_retrains;
                        proxystore::Proxy<json::Value> proxy(
                            globus, payload["key"].as_string(),
                            proxystore::json_codec());
                        auto data = proxy.resolve();
                        if (!data.ok()) return data.error();
                        std::vector<me::Point> x;
                        std::vector<double> y;
                        for (const auto& row :
                             data.value().get()["x"].as_array()) {
                          x.push_back(json::to_doubles(row).value());
                        }
                        for (const auto& v : data.value().get()["y"].as_array()) {
                          y.push_back(v.as_double());
                        }
                        std::vector<me::Point> remaining;
                        for (const auto& row : payload["remaining"].as_array()) {
                          remaining.push_back(json::to_doubles(row).value());
                        }
                        me::GprConfig cfg;
                        cfg.lengthscale = 0.3;
                        cfg.noise = 1e-3;
                        me::GPR model(cfg);
                        if (Status s = model.fit(x, y); !s.is_ok()) {
                          return s.error();
                        }
                        auto priorities =
                            me::promising_first_priorities(model, remaining);
                        json::Array out;
                        for (Priority p : priorities) {
                          out.emplace_back(std::int64_t{p});
                        }
                        json::Value result;
                        result["priorities"] = json::Value(std::move(out));
                        return result;
                      },
                      [](const json::Value&) { return 5.0; })
                  .is_ok());

  me::RetrainExecutor executor =
      [&](const std::vector<me::Point>& x, const std::vector<double>& y,
          const std::vector<me::Point>& remaining,
          std::function<void(std::vector<Priority>)> done) {
        json::Value train;
        json::Array xs;
        for (const auto& p : x) xs.push_back(json::array_of(p));
        train["x"] = json::Value(std::move(xs));
        train["y"] = json::array_of(y);
        static int key_counter = 0;
        std::string key = "epi_train_" + std::to_string(++key_counter);
        ASSERT_TRUE(proxystore::Proxy<json::Value>::create(
                        globus, key, train, proxystore::json_codec())
                        .ok());
        json::Value payload;
        payload["key"] = json::Value(key);
        json::Array rem;
        for (const auto& p : remaining) rem.push_back(json::array_of(p));
        payload["remaining"] = json::Value(std::move(rem));
        faas::SubmitOptions options;
        options.on_complete = [done](faas::FaaSTaskId,
                                     const Result<json::Value>& r) {
          std::vector<Priority> priorities;
          if (r.ok()) {
            for (const auto& v : r.value()["priorities"].as_array()) {
              priorities.push_back(static_cast<Priority>(v.as_int()));
            }
          }
          done(std::move(priorities));
        };
        ASSERT_TRUE(
            faas_service.submit(token, "theta-ep", "retrain", payload, options)
                .ok());
      };

  me::AsyncDriverConfig driver_config;
  driver_config.exp_id = "epi";
  driver_config.work_type = kSimWork;
  driver_config.retrain_after = 25;
  me::AsyncGprDriver driver(sim, api, driver_config, executor);

  Rng rng(5);
  auto unit = me::latin_hypercube(rng, 100, 3, 0.0, 1.0);
  std::vector<me::Point> candidates;
  for (const auto& u : unit) {
    candidates.push_back(
        {0.1 + u[0] * 0.9, 0.05 + u[1] * 0.45, 0.05 + u[2] * 0.45});
  }
  ASSERT_TRUE(driver.run(candidates).is_ok());

  pool::SimWorkerPool pool(
      sim, api, sim_pool_config("bebop_pool", kSimWork, 16),
      epi::calibration_sim_runner(problem, 15.0, 0.4, /*log_loss=*/true), 6);
  ASSERT_TRUE(pool.start().is_ok());
  sim.run();

  EXPECT_TRUE(driver.finished());
  EXPECT_EQ(driver.completed(), 100u);
  EXPECT_GE(remote_retrains, 2);
  EXPECT_GE(driver.retrains().size(), 2u);
  // The search found something no worse than a few times the truth's loss.
  double truth_loss = problem.loss(truth.beta, truth.sigma, truth.gamma);
  EXPECT_LT(driver.best_value(), std::log1p(truth_loss) + 4.0);
}

}  // namespace
}  // namespace osprey

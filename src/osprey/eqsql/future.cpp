#include "osprey/eqsql/future.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "osprey/eqsql/notify.h"

namespace osprey::eqsql {

TaskFuture::TaskFuture(EQSQL& api, TaskId task_id, WorkType eq_type)
    : state_(std::make_shared<State>()) {
  state_->api = &api;
  state_->task_id = task_id;
  state_->eq_type = eq_type;
}

Result<TaskStatus> TaskFuture::status() const {
  if (!state_) return Error(ErrorCode::kInvalidArgument, "invalid future");
  if (state_->cached_result) return TaskStatus::kComplete;
  if (state_->canceled) return TaskStatus::kCanceled;
  return state_->api->task_status(state_->task_id);
}

bool TaskFuture::done() const {
  if (!state_) return false;
  if (state_->cached_result) return true;
  Result<TaskStatus> s = status();
  return s.ok() && s.value() == TaskStatus::kComplete;
}

Result<std::string> TaskFuture::try_result() {
  if (!state_) return Error(ErrorCode::kInvalidArgument, "invalid future");
  if (state_->cached_result) return *state_->cached_result;
  if (state_->canceled) {
    return Error(ErrorCode::kCanceled,
                 "task " + std::to_string(state_->task_id) + " canceled");
  }
  Result<std::string> r = state_->api->try_query_result(state_->task_id);
  if (r.ok()) state_->cached_result = r.value();
  return r;
}

Result<std::string> TaskFuture::result(WaitSpec wait) {
  if (!state_) return Error(ErrorCode::kInvalidArgument, "invalid future");
  if (state_->cached_result) return *state_->cached_result;
  if (state_->canceled) {
    return Error(ErrorCode::kCanceled,
                 "task " + std::to_string(state_->task_id) + " canceled");
  }
  Result<std::string> r = state_->api->query_result(state_->task_id, wait);
  if (r.ok()) state_->cached_result = r.value();
  return r;
}

Result<bool> TaskFuture::cancel() {
  if (!state_) return Error(ErrorCode::kInvalidArgument, "invalid future");
  if (state_->cached_result) return false;  // already resolved
  Result<std::size_t> n = state_->api->cancel_tasks({state_->task_id});
  if (!n.ok()) return n.error();
  if (n.value() > 0) state_->canceled = true;
  return n.value() > 0;
}

Result<Priority> TaskFuture::priority() const {
  if (!state_) return Error(ErrorCode::kInvalidArgument, "invalid future");
  return state_->api->task_priority(state_->task_id);
}

Status TaskFuture::set_priority(Priority priority) {
  if (!state_) return Status(ErrorCode::kInvalidArgument, "invalid future");
  Result<std::size_t> n =
      state_->api->update_priorities({state_->task_id}, {priority});
  if (!n.ok()) return n.error();
  return Status::ok();
}

Result<std::vector<std::size_t>> as_completed(std::vector<TaskFuture>& futures,
                                              std::size_t n, WaitSpec wait) {
  if (n == 0) return std::vector<std::size_t>{};
  if (futures.empty()) {
    return Error(ErrorCode::kInvalidArgument, "as_completed on no futures");
  }
  EQSQL* api = nullptr;
  std::vector<std::size_t> ready;
  std::vector<TaskId> pending_ids;
  std::unordered_map<TaskId, std::size_t> index_of;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    TaskFuture& f = futures[i];
    if (!f.valid()) continue;
    api = f.state_->api;
    if (f.state_->cached_result) {
      ready.push_back(i);  // already resolved futures count immediately
      if (ready.size() >= n) return ready;
      continue;
    }
    if (f.state_->canceled) continue;  // will never complete
    pending_ids.push_back(f.task_id());
    index_of.emplace(f.task_id(), i);
  }
  if (!api) {
    return Error(ErrorCode::kInvalidArgument, "as_completed on invalid futures");
  }

  Notifier* notifier = api->notifier();
  const WaitStrategy mode = wait.resolve(notifier);
  const TimePoint deadline = api->clock().now() + wait.timeout;
  while (ready.size() < n && !pending_ids.empty()) {
    // Version before the batch probe: a report committing between the probe
    // and the wait below moves the result channel, so the wait returns
    // immediately instead of sleeping through the completion.
    const std::uint64_t seen =
        mode == WaitStrategy::kNotify ? notifier->result_version() : 0;
    Result<std::vector<TaskId>> completed = api->try_query_completed(
        pending_ids, static_cast<int>(n - ready.size()));
    if (!completed.ok()) return completed.error();
    for (TaskId id : completed.value()) {
      std::size_t idx = index_of.at(id);
      // Resolve the future's result now: the input-queue entry is popped,
      // so the cached copy is the only remaining handle to it.
      Result<std::string> r = futures[idx].try_result();
      if (!r.ok() && r.code() != ErrorCode::kCanceled) return r.error();
      ready.push_back(idx);
      pending_ids.erase(
          std::remove(pending_ids.begin(), pending_ids.end(), id),
          pending_ids.end());
    }
    if (ready.size() >= n) break;
    if (mode == WaitStrategy::kNotify) {
      const Duration remaining = deadline - api->clock().now();
      if (remaining <= 0.0) {
        return Error(ErrorCode::kTimeout,
                     "only " + std::to_string(ready.size()) + " of " +
                         std::to_string(n) + " futures completed in time");
      }
      const Duration slice = wait.poll_delay > 0.0
                                 ? std::min(wait.poll_delay, remaining)
                                 : remaining;
      notifier->wait_for_result(seen, slice);
    } else {
      if (api->clock().now() + wait.poll_delay > deadline) {
        return Error(ErrorCode::kTimeout,
                     "only " + std::to_string(ready.size()) + " of " +
                         std::to_string(n) + " futures completed in time");
      }
      api->sleep(wait.poll_delay);
    }
  }
  if (ready.size() < n) {
    return Error(ErrorCode::kTimeout, "no more futures can complete");
  }
  return ready;
}

Result<std::vector<std::size_t>> as_completed(std::vector<TaskFuture>& futures,
                                              std::size_t n,
                                              std::optional<Duration> timeout) {
  WaitSpec wait;  // kAuto: notify when the API has a notifier, else poll
  wait.timeout =
      timeout ? *timeout : std::numeric_limits<Duration>::infinity();
  return as_completed(futures, n, wait);
}

Result<TaskFuture> pop_completed(std::vector<TaskFuture>& futures,
                                 WaitSpec wait) {
  Result<std::vector<std::size_t>> first = as_completed(futures, 1, wait);
  if (!first.ok()) return first.error();
  std::size_t idx = first.value().front();
  TaskFuture popped = futures[idx];
  futures.erase(futures.begin() + static_cast<std::ptrdiff_t>(idx));
  return popped;
}

Result<TaskFuture> pop_completed(std::vector<TaskFuture>& futures,
                                 std::optional<Duration> timeout) {
  WaitSpec wait;
  wait.timeout =
      timeout ? *timeout : std::numeric_limits<Duration>::infinity();
  return pop_completed(futures, wait);
}

Result<std::size_t> update_priority(std::vector<TaskFuture>& futures,
                                    const std::vector<Priority>& priorities) {
  if (futures.empty()) return std::size_t{0};
  std::vector<TaskId> ids;
  ids.reserve(futures.size());
  for (const TaskFuture& f : futures) {
    if (!f.valid()) {
      return Error(ErrorCode::kInvalidArgument, "invalid future in batch");
    }
    ids.push_back(f.task_id());
  }
  return futures.front().api()->update_priorities(ids, priorities);
}

Result<std::size_t> cancel(std::vector<TaskFuture>& futures) {
  if (futures.empty()) return std::size_t{0};
  std::vector<TaskId> ids;
  ids.reserve(futures.size());
  for (const TaskFuture& f : futures) {
    if (!f.valid()) {
      return Error(ErrorCode::kInvalidArgument, "invalid future in batch");
    }
    ids.push_back(f.task_id());
  }
  return futures.front().api()->cancel_tasks(ids);
}

Result<TaskFuture> submit_task_future(EQSQL& api, const ExpId& exp_id,
                                      WorkType eq_type,
                                      const std::string& payload,
                                      Priority priority,
                                      const std::string& tag) {
  Result<TaskId> id = api.submit_task(exp_id, eq_type, payload, priority, tag);
  if (!id.ok()) return id.error();
  return TaskFuture(api, id.value(), eq_type);
}

Result<std::vector<TaskFuture>> submit_task_futures(
    EQSQL& api, const ExpId& exp_id, WorkType eq_type,
    const std::vector<std::string>& payloads, Priority priority,
    const std::string& tag) {
  Result<std::vector<TaskId>> ids =
      api.submit_tasks(exp_id, eq_type, payloads, priority, tag);
  if (!ids.ok()) return ids.error();
  std::vector<TaskFuture> futures;
  futures.reserve(ids.value().size());
  for (TaskId id : ids.value()) {
    futures.emplace_back(api, id, eq_type);
  }
  return futures;
}

}  // namespace osprey::eqsql

// ProxyStore-like data fabric: pluggable stores behind a common interface
// (§IV-E).
//
// "ProxyStore implements a common data access/movement interface with
// plugins to support storage and movement via different methods, including
// shared file systems, Redis databases, or Globus." The stores here:
//   LocalStore  - in-process memory (same-site sharing)
//   FileStore   - a directory on a shared filesystem
//   RedisStore  - in-memory with a per-operation latency cost model
//   GlobusStore - blobs live at a home site; cross-site access goes through
//                 the transfer service's site stores and costs WAN time
//
// Because the simulation cannot block inside an event callback, wide-area
// cost is exposed through access_cost(): callers (e.g. the FaaS duration
// model for remote GPR retraining) add the resolve cost to their simulated
// duration, while the bytes themselves move synchronously. DESIGN.md
// documents this substitution.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "osprey/core/error.h"
#include "osprey/core/types.h"
#include "osprey/net/network.h"
#include "osprey/transfer/transfer.h"

namespace osprey::proxystore {

using Key = std::string;

class Store {
 public:
  virtual ~Store() = default;

  virtual Status put(const Key& key, std::string bytes) = 0;
  virtual Result<std::string> get(const Key& key) = 0;
  virtual bool exists(const Key& key) const = 0;
  virtual Status evict(const Key& key) = 0;

  /// Time accessing `key` from `site` costs in the simulated world.
  virtual Duration access_cost(const Key& key,
                               const net::SiteName& site) const = 0;

  /// Human-readable plugin name ("local", "file", "redis", "globus").
  virtual const char* kind() const = 0;
};

/// In-process memory store: free same-site access.
class LocalStore final : public Store {
 public:
  Status put(const Key& key, std::string bytes) override;
  Result<std::string> get(const Key& key) override;
  bool exists(const Key& key) const override;
  Status evict(const Key& key) override;
  Duration access_cost(const Key&, const net::SiteName&) const override {
    return 0.0;
  }
  const char* kind() const override { return "local"; }

 private:
  std::map<Key, std::string> blobs_;
};

/// Shared-filesystem store: blobs are files under a directory.
class FileStore final : public Store {
 public:
  explicit FileStore(std::string directory);
  Status put(const Key& key, std::string bytes) override;
  Result<std::string> get(const Key& key) override;
  bool exists(const Key& key) const override;
  Status evict(const Key& key) override;
  Duration access_cost(const Key&, const net::SiteName&) const override {
    return 0.0;  // shared FS: same-site by definition
  }
  const char* kind() const override { return "file"; }

 private:
  std::string path_for(const Key& key) const;
  std::string directory_;
};

/// Redis-like store: in-memory, with a per-op latency to the Redis host's
/// site plus payload serialization over that link.
class RedisStore final : public Store {
 public:
  RedisStore(const net::Network& network, net::SiteName host_site);
  Status put(const Key& key, std::string bytes) override;
  Result<std::string> get(const Key& key) override;
  bool exists(const Key& key) const override;
  Status evict(const Key& key) override;
  Duration access_cost(const Key& key, const net::SiteName& site) const override;
  const char* kind() const override { return "redis"; }

 private:
  const net::Network& network_;
  net::SiteName host_site_;
  std::map<Key, std::string> blobs_;
};

/// Globus-backed store: blobs live in the transfer service's site store at
/// `home_site`; cross-site access costs a third-party transfer.
class GlobusStore final : public Store {
 public:
  GlobusStore(transfer::TransferService& transfers, net::SiteName home_site);
  Status put(const Key& key, std::string bytes) override;
  Result<std::string> get(const Key& key) override;
  bool exists(const Key& key) const override;
  Status evict(const Key& key) override;
  Duration access_cost(const Key& key, const net::SiteName& site) const override;
  const char* kind() const override { return "globus"; }

  const net::SiteName& home_site() const { return home_site_; }

 private:
  transfer::TransferService& transfers_;
  net::SiteName home_site_;
};

}  // namespace osprey::proxystore

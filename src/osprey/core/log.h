// Minimal leveled, thread-safe, structured logger.
//
// OSPREY components log control-plane events (pool start/stop, retries,
// transfers). Logging defaults to kWarn so tests and benches stay quiet;
// examples raise it to kInfo to narrate the workflow.
//
// Structure: besides the free-text message, a log line can carry typed
// key=value fields (streamed with log_field) so events are machine-parseable.
// Emission goes through a pluggable LogSink; the default sink prints
// "[LEVEL] component: message key=value ..." to stderr, and tests install a
// CaptureSink to assert on exactly what was logged. The global threshold is
// an atomic — hot paths on many threads consult it with one relaxed load.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace osprey {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

const char* log_level_name(LogLevel level);

/// Global log threshold. Messages below this level are discarded. Reads and
/// writes are atomic (threaded pools consult the threshold concurrently).
void set_log_level(LogLevel level);
LogLevel log_level();

/// One structured key=value field attached to a log line.
struct LogField {
  std::string key;
  std::string value;
};

/// Build a field from any streamable value:
///   OSPREY_LOG(kInfo, "pool") << "claimed" << log_field("pool", name);
template <typename T>
LogField log_field(std::string key, const T& value) {
  std::ostringstream os;
  os << value;
  return LogField{std::move(key), os.str()};
}
inline LogField log_field(std::string key, std::string value) {
  return LogField{std::move(key), std::move(value)};
}

/// A fully assembled log event as handed to the sink.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
  std::vector<LogField> fields;

  /// "message key=value key2=value2" — the default sink's rendering.
  std::string flatten() const;
};

/// Where log records go. The sink runs under the logger's mutex, so it needs
/// no locking of its own but must not log re-entrantly.
using LogSink = std::function<void(const LogRecord&)>;

/// Replace the global sink; an empty function restores the stderr default.
void set_log_sink(LogSink sink);

/// Emit one log line (thread-safe). Prefer the OSPREY_LOG macro.
void log_message(LogLevel level, const std::string& component,
                 const std::string& message);

/// Emit a fully structured record (threshold-checked like log_message).
void log_record(LogRecord record);

/// Test-visible sink: captures every record at or above the threshold while
/// installed. Install/uninstall from the owning test only (the capture
/// buffer itself is thread-safe against concurrent logging).
class CaptureSink {
 public:
  ~CaptureSink() { uninstall(); }

  /// Route the global sink into this capture buffer.
  void install();
  /// Restore the stderr default (idempotent).
  void uninstall();

  std::vector<LogRecord> records() const;
  std::size_t count() const;
  std::size_t count_at(LogLevel level) const;
  /// Any captured record whose message contains `needle`.
  bool contains(const std::string& needle) const;
  /// First value of `key` among captured records' fields ("" when absent).
  std::string field_value(const std::string& key) const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<LogRecord> records_;
  bool installed_ = false;
};

namespace detail {
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() {
    log_record(LogRecord{level_, std::move(component_), stream_.str(),
                         std::move(fields_)});
  }

  LogStream& operator<<(const LogField& field) {
    fields_.push_back(field);
    return *this;
  }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
  std::vector<LogField> fields_;
};
}  // namespace detail

}  // namespace osprey

/// Usage: OSPREY_LOG(kInfo, "pool") << "worker " << id << " started"
///                                  << osprey::log_field("pool", name);
#define OSPREY_LOG(level, component)                                   \
  if (::osprey::LogLevel::level < ::osprey::log_level()) {             \
  } else                                                               \
    ::osprey::detail::LogStream(::osprey::LogLevel::level, (component))

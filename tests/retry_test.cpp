// Tests for the unified RetryPolicy / RetryState, including the property
// tests the issue calls for: eventual success under transient failure,
// monotone non-decreasing backoff, and seed-identical attempt traces.
#include <gtest/gtest.h>

#include <vector>

#include "osprey/core/retry.h"
#include "osprey/core/rng.h"

namespace osprey {
namespace {

TEST(RetryPolicyTest, ValidateRejectsNonsense) {
  RetryPolicy ok;
  EXPECT_TRUE(ok.validate().is_ok());
  RetryPolicy bad = ok;
  bad.max_attempts = 0;
  EXPECT_EQ(bad.validate().code(), ErrorCode::kInvalidArgument);
  bad = ok;
  bad.initial_backoff = -1.0;
  EXPECT_EQ(bad.validate().code(), ErrorCode::kInvalidArgument);
  bad = ok;
  bad.multiplier = 0.5;
  EXPECT_EQ(bad.validate().code(), ErrorCode::kInvalidArgument);
  bad = ok;
  bad.jitter = bad.multiplier;  // > multiplier - 1 breaks monotonicity
  EXPECT_EQ(bad.validate().code(), ErrorCode::kInvalidArgument);
  EXPECT_TRUE(RetryPolicy::none().validate().is_ok());
  EXPECT_TRUE(RetryPolicy::immediate(5).validate().is_ok());
}

TEST(RetryPolicyTest, BackoffGrowsGeometricallyAndCaps) {
  RetryPolicy policy{6, 1.0, 2.0, 5.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(policy.backoff(1), 1.0);
  EXPECT_DOUBLE_EQ(policy.backoff(2), 2.0);
  EXPECT_DOUBLE_EQ(policy.backoff(3), 4.0);
  EXPECT_DOUBLE_EQ(policy.backoff(4), 5.0);  // capped
  EXPECT_DOUBLE_EQ(policy.backoff(5), 5.0);  // plateau
}

TEST(RetryStateTest, CountsAttemptsLikeTheHistoricLoops) {
  // max_attempts = 4 means the first attempt plus 3 retries: delays 1, 2, 4.
  RetryState state({4, 1.0, 2.0, 60.0, 0.0, 0.0});
  Duration d = 0;
  ASSERT_TRUE(state.next_delay(&d));
  EXPECT_DOUBLE_EQ(d, 1.0);
  ASSERT_TRUE(state.next_delay(&d));
  EXPECT_DOUBLE_EQ(d, 2.0);
  ASSERT_TRUE(state.next_delay(&d));
  EXPECT_DOUBLE_EQ(d, 4.0);
  EXPECT_FALSE(state.next_delay(&d));
  EXPECT_EQ(state.failures(), 4);
  EXPECT_DOUBLE_EQ(state.waited(), 7.0);
  EXPECT_EQ(state.trace().size(), 3u);
}

TEST(RetryStateTest, BudgetStopsRetriesEarly) {
  // 1 + 2 = 3 fits a budget of 4; the third delay (4) would exceed it.
  RetryState state({10, 1.0, 2.0, 60.0, 0.0, 4.0});
  Duration d = 0;
  EXPECT_TRUE(state.next_delay(&d));
  EXPECT_TRUE(state.next_delay(&d));
  EXPECT_FALSE(state.next_delay(&d));
  EXPECT_DOUBLE_EQ(state.waited(), 3.0);
}

TEST(RetryStateTest, PropertyBackoffIsMonotoneNonDecreasing) {
  // Random jittered policies: the delay trace never decreases, including
  // across the plateau at max_backoff (jitter <= multiplier - 1).
  Rng meta(2024);
  for (int trial = 0; trial < 200; ++trial) {
    RetryPolicy policy;
    policy.max_attempts = 2 + static_cast<int>(meta.uniform_int(0, 10));
    policy.initial_backoff = meta.uniform(0.01, 5.0);
    policy.multiplier = meta.uniform(1.0, 4.0);
    policy.max_backoff = meta.uniform(1.0, 50.0);
    policy.jitter = meta.uniform(0.0, policy.multiplier - 1.0);
    ASSERT_TRUE(policy.validate().is_ok());
    RetryState state(policy, meta.engine()());
    Duration prev = 0.0;
    Duration d = 0.0;
    while (state.next_delay(&d)) {
      EXPECT_GE(d, prev) << "trial " << trial << " failure "
                         << state.failures();
      EXPECT_LE(d, policy.max_backoff + 1e-12);
      prev = d;
    }
  }
}

TEST(RetryStateTest, PropertySameSeedSameTrace) {
  Rng meta(7);
  for (int trial = 0; trial < 100; ++trial) {
    RetryPolicy policy;
    policy.max_attempts = 8;
    policy.initial_backoff = meta.uniform(0.1, 2.0);
    policy.multiplier = 2.0;
    policy.max_backoff = 30.0;
    policy.jitter = meta.uniform(0.0, 1.0);
    std::uint64_t seed = meta.engine()();
    RetryState a(policy, seed);
    RetryState b(policy, seed);
    Duration d = 0.0;
    while (a.next_delay(&d)) {
    }
    while (b.next_delay(&d)) {
    }
    EXPECT_EQ(a.trace(), b.trace()) << "trial " << trial;

    RetryState c(policy, seed + 1);
    while (c.next_delay(&d)) {
    }
    if (policy.jitter > 0.0 && a.trace() != c.trace()) {
      SUCCEED();  // different seeds usually differ (not required every time)
    }
  }
}

TEST(RetryCallTest, PropertyEventualSuccessWithinBudget) {
  // An op failing with p < 1 succeeds within the attempt budget virtually
  // always when the budget comfortably covers the failure rate.
  Rng meta(99);
  int exhausted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    double p = meta.uniform(0.0, 0.5);
    Rng op_rng(meta.engine()());
    RetryPolicy policy = RetryPolicy::immediate(12);  // p^12 <= 2.4e-4
    Status result = retry_call(
        policy, trial,
        [&]() -> Status {
          if (op_rng.bernoulli(p)) {
            return Status(ErrorCode::kUnavailable, "flaky");
          }
          return Status::ok();
        },
        /*sleep=*/{});
    if (!result.is_ok()) ++exhausted;
  }
  EXPECT_LE(exhausted, 1);  // ~0.07 expected failures over 300 trials
}

TEST(RetryCallTest, NonRetryableErrorsPassThrough) {
  int calls = 0;
  Status result = retry_call(
      RetryPolicy::immediate(5), 0,
      [&]() -> Status {
        ++calls;
        return Status(ErrorCode::kInvalidArgument, "bad input");
      },
      {});
  EXPECT_EQ(result.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);  // no retry on a non-transient error
}

TEST(RetryCallTest, SleepsAndCallbacksSeeEveryRetry) {
  std::vector<Duration> slept;
  std::vector<int> attempts_seen;
  int calls = 0;
  Status result = retry_call(
      {4, 1.0, 2.0, 60.0, 0.0, 0.0}, 0,
      [&]() -> Status {
        ++calls;
        return Status(ErrorCode::kTimeout, "always late");
      },
      [&](Duration d) { slept.push_back(d); },
      [&](int failures, Duration d) {
        attempts_seen.push_back(failures);
        EXPECT_GT(d, 0.0);
      });
  EXPECT_EQ(result.code(), ErrorCode::kTimeout);
  EXPECT_EQ(calls, 4);
  ASSERT_EQ(slept.size(), 3u);
  EXPECT_DOUBLE_EQ(slept[0], 1.0);
  EXPECT_DOUBLE_EQ(slept[1], 2.0);
  EXPECT_DOUBLE_EQ(slept[2], 4.0);
  EXPECT_EQ(attempts_seen, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace osprey

// Tests for osprey/json: parsing, serialization, round-trips, error cases.
#include <gtest/gtest.h>

#include "osprey/json/json.h"

namespace osprey::json {
namespace {

TEST(JsonValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(7).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Object{}).is_object());

  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value(7).as_double(), 7.0);  // int widens
  EXPECT_EQ(Value(3.9).as_int(), 3);            // double truncates
  EXPECT_EQ(Value("hi").as_string(), "hi");
}

TEST(JsonValueTest, ObjectIndexing) {
  Value v;
  v["a"] = Value(1);
  v["b"]["nested"] = Value("x");  // null -> object promotion
  const Value& cv = v;            // const access must not insert keys
  EXPECT_EQ(cv["a"].as_int(), 1);
  EXPECT_EQ(cv["b"]["nested"].as_string(), "x");
  EXPECT_TRUE(cv["missing"].is_null());
  EXPECT_TRUE(cv.contains("a"));
  EXPECT_FALSE(cv.contains("missing"));
}

TEST(JsonDumpTest, CompactOutput) {
  Value v;
  v["sample"] = array_of({1.0, 2.5});
  v["type"] = Value("work");
  v["eq_task_id"] = Value(42);
  EXPECT_EQ(v.dump(), R"({"eq_task_id":42,"sample":[1,2.5],"type":"work"})");
}

TEST(JsonDumpTest, StringEscapes) {
  Value v(std::string("a\"b\\c\n\t\x01"));
  EXPECT_EQ(v.dump(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonDumpTest, PrettyHasNewlines) {
  Value v;
  v["a"] = Value(1);
  std::string pretty = v.dump_pretty();
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_NE(pretty.find("\"a\": 1"), std::string::npos);
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(parse("null").value().is_null());
  EXPECT_EQ(parse("true").value().as_bool(), true);
  EXPECT_EQ(parse("false").value().as_bool(), false);
  EXPECT_EQ(parse("42").value().as_int(), 42);
  EXPECT_EQ(parse("-17").value().as_int(), -17);
  EXPECT_DOUBLE_EQ(parse("3.25").value().as_double(), 3.25);
  EXPECT_DOUBLE_EQ(parse("1e3").value().as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("-2.5e-2").value().as_double(), -0.025);
  EXPECT_EQ(parse("\"hi\"").value().as_string(), "hi");
}

TEST(JsonParseTest, TaskPayloadShape) {
  // The exact dictionary shape of the paper's query_task response (§IV-C).
  auto r = parse(R"({"type": "work", "eq_task_id": 7, "payload": "[1,2]"})");
  ASSERT_TRUE(r.ok());
  const Value& v = r.value();
  EXPECT_EQ(v["type"].as_string(), "work");
  EXPECT_EQ(v["eq_task_id"].as_int(), 7);
  EXPECT_EQ(v["payload"].as_string(), "[1,2]");
}

TEST(JsonParseTest, NestedStructures) {
  auto r = parse(R"([{"a":[1,2,[3]]},{},[],null])");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 4u);
  const Value& doc = r.value();
  EXPECT_EQ(doc[0]["a"][2][0].as_int(), 3);
}

TEST(JsonParseTest, UnicodeEscapes) {
  auto r = parse(R"("Aé中😀")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().as_string(), "A\xC3\xA9\xE4\xB8\xAD\xF0\x9F\x98\x80");
}

TEST(JsonParseTest, WhitespaceTolerant) {
  auto r = parse(" \n\t{ \"a\" :\t1 , \"b\" : [ ] } \r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()["a"].as_int(), 1);
}

TEST(JsonParseTest, RoundTripPreservesValue) {
  const std::string doc =
      R"({"exp":"exp1","pri":-3,"xs":[0.125,2e10,-7],"flag":true,"note":null})";
  Value v1 = parse(doc).value();
  Value v2 = parse(v1.dump()).value();
  EXPECT_EQ(v1, v2);
}

TEST(JsonParseTest, DoubleRoundTripExact) {
  Value v(0.1 + 0.2);
  Value back = parse(v.dump()).value();
  EXPECT_DOUBLE_EQ(back.as_double(), 0.1 + 0.2);
}

struct BadCase {
  const char* name;
  const char* text;
};

class JsonParseErrorTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(JsonParseErrorTest, Rejects) {
  auto r = parse(GetParam().text);
  EXPECT_FALSE(r.ok()) << GetParam().text;
  if (!r.ok()) {
    EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, JsonParseErrorTest,
    ::testing::Values(
        BadCase{"empty", ""}, BadCase{"bare_word", "nope"},
        BadCase{"trailing", "1 2"}, BadCase{"unclosed_obj", "{\"a\":1"},
        BadCase{"unclosed_arr", "[1,2"}, BadCase{"bad_comma", "[1,]"},
        BadCase{"obj_no_colon", "{\"a\" 1}"},
        BadCase{"unquoted_key", "{a:1}"},
        BadCase{"single_quotes", "{'a':1}"},
        BadCase{"unterminated_str", "\"abc"},
        BadCase{"bad_escape", "\"\\x\""},
        BadCase{"bad_unicode", "\"\\u12g4\""},
        BadCase{"lone_surrogate", "\"\\ud800\""},
        BadCase{"leading_zero", "012"}, BadCase{"dot_no_digits", "1."},
        BadCase{"exp_no_digits", "1e"}, BadCase{"plus_number", "+1"}),
    [](const ::testing::TestParamInfo<BadCase>& info) {
      return info.param.name;
    });

TEST(JsonParseTest, DeepNestingRejected) {
  std::string deep(400, '[');
  deep += std::string(400, ']');
  EXPECT_FALSE(parse(deep).ok());
}

TEST(JsonHelpersTest, ToDoubles) {
  auto r = to_doubles(parse("[1, 2.5, -3]").value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<double>{1.0, 2.5, -3.0}));
  EXPECT_FALSE(to_doubles(parse("[1, \"x\"]").value()).ok());
  EXPECT_FALSE(to_doubles(Value("not array")).ok());
}

TEST(JsonHelpersTest, ArrayOfRoundTrip) {
  std::vector<double> xs{0.5, -1.25, 1e6};
  auto r = to_doubles(parse(array_of(xs).dump()).value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), xs);
}

}  // namespace
}  // namespace osprey::json

// Torn-tail fuzz at a segment-rotation boundary (ISSUE 9 satellite).
//
// The nastiest torn-write position is the first record of a freshly rotated
// segment: the cut can land inside the 16-byte segment header (the segment
// carries no information and must be dropped whole), exactly at the header
// boundary (a legal, empty segment the writer must resume into), or inside
// the first record frame (truncate back to the header). The generic torn-
// tail fuzz in wal_test.cpp sweeps cuts within one segment; here every
// byte-level cut of the *newest* segment of a multi-segment log is swept,
// plus the SimLogDevice torn-tail fault-point variant where the tear comes
// from a power-loss magnitude rather than direct disk surgery. After every
// cut: recovery must succeed, rebuild exactly a committed prefix, leave the
// device writable (a fresh manager resumes with dense LSNs), and a second
// crash-recovery must agree.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/core/fault.h"
#include "osprey/db/database.h"
#include "osprey/db/dump.h"
#include "osprey/db/expr.h"
#include "osprey/db/wal.h"

namespace osprey::db::wal {
namespace {

Schema task_schema() {
  return Schema({
      {"eq_task_id", ColumnType::kInt, false, true},
      {"status", ColumnType::kText, false, false},
  });
}

Status apply_txn(Database& db, int i) {
  Table* tasks = db.table("tasks");
  Transaction txn(db);
  auto inserted = tasks->insert(
      Row{Value(std::int64_t{i}), Value("queued-" + std::to_string(i))});
  if (!inserted.ok()) return inserted.error();
  return txn.commit();
}

std::string dump_str(const Database& db) { return dump_database(db).dump(); }

// The campaign's dumps after 0..txns committed transactions, from a shadow
// un-logged database.
std::vector<std::string> shadow_snapshots(int txns) {
  std::vector<std::string> snaps;
  Database db;
  EXPECT_TRUE(db.create_table("tasks", task_schema()).ok());
  snaps.push_back(dump_str(db));
  for (int i = 1; i <= txns; ++i) {
    EXPECT_TRUE(apply_txn(db, i).is_ok());
    snaps.push_back(dump_str(db));
  }
  return snaps;
}

constexpr std::size_t kHeaderBytes = 16;  // "OSPWALv1" + u64 first LSN

// Run a fully-synced campaign with tiny segments so the log rotates often,
// and return the surviving disk.
std::shared_ptr<SimDisk> logged_campaign(int txns) {
  auto disk = std::make_shared<SimDisk>();
  SimLogDevice device(disk);
  Database db;
  WalOptions options;
  options.segment_bytes = 160;  // every txn or two rotates
  WalManager manager(device, options);
  EXPECT_TRUE(manager.open().is_ok());
  manager.attach(db);
  EXPECT_TRUE(db.create_table("tasks", task_schema()).ok());
  for (int i = 1; i <= txns; ++i) {
    EXPECT_TRUE(apply_txn(db, i).is_ok()) << i;
  }
  manager.detach();
  EXPECT_GT(disk->segments.size(), 3u);  // genuinely multi-segment
  return disk;
}

std::string newest_wal_segment(const SimDisk& disk) {
  std::string newest;
  for (const auto& [name, bytes] : disk.segments) {
    (void)bytes;
    if (name.rfind("wal-", 0) == 0 && name > newest) newest = name;
  }
  return newest;
}

TEST(WalRotationTearTest, EveryByteCutOfTheFreshSegmentRecoversACommittedPrefix) {
  constexpr int kTxns = 24;
  std::vector<std::string> snaps = shadow_snapshots(kTxns);
  std::shared_ptr<SimDisk> master = logged_campaign(kTxns);
  std::string newest = newest_wal_segment(*master);
  ASSERT_FALSE(newest.empty());
  const std::string full = master->segments.at(newest);
  ASSERT_GE(full.size(), kHeaderBytes);

  // How many transactions live in segments *before* the newest: the dump a
  // cut inside the newest segment's header must fall back to.
  std::size_t prior_index = 0;
  {
    auto headerless = std::make_shared<SimDisk>(*master);
    headerless->segments.erase(newest);
    SimLogDevice device(headerless);
    Database db;
    Result<RecoveryInfo> info = recover(device, db);
    ASSERT_TRUE(info.ok());
    std::string dump = dump_str(db);
    while (prior_index < snaps.size() && snaps[prior_index] != dump) {
      ++prior_index;
    }
    ASSERT_LT(prior_index, snaps.size()) << "prefix dump not a snapshot";
    ASSERT_LT(prior_index, static_cast<std::size_t>(kTxns));
  }

  std::size_t last_matched = 0;
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    auto disk = std::make_shared<SimDisk>(*master);
    disk->segments[newest] = full.substr(0, cut);
    SimLogDevice device(disk);
    Database db;
    Result<RecoveryInfo> info = recover(device, db);
    ASSERT_TRUE(info.ok()) << "cut=" << cut << ": " << info.error().message;
    std::string dump = dump_str(db);

    // The recovered state is exactly some committed prefix...
    std::size_t matched = snaps.size();
    for (std::size_t j = 0; j < snaps.size(); ++j) {
      if (snaps[j] == dump) {
        matched = j;
        break;
      }
    }
    ASSERT_LT(matched, snaps.size()) << "cut=" << cut << " not a prefix";
    // ...never ahead of what the uncut log held, never behind the intact
    // prior segments, and monotone in the cut position.
    EXPECT_GE(matched, prior_index) << "cut=" << cut;
    EXPECT_GE(matched, last_matched) << "cut=" << cut << " went backwards";
    last_matched = matched;
    if (cut < kHeaderBytes) {
      EXPECT_EQ(matched, prior_index)
          << "cut=" << cut << " inside the header yielded tail records";
    }
    if (cut == full.size()) {
      EXPECT_EQ(matched, static_cast<std::size_t>(kTxns));
    }

    // The repaired device must accept a resumed writer: dense LSNs, a fresh
    // commit, and a second recovery that sees it.
    WalManager resumed(device);
    ASSERT_TRUE(resumed.open().is_ok()) << "cut=" << cut;
    resumed.attach(db);
    ASSERT_TRUE(apply_txn(db, 1000 + static_cast<int>(cut)).is_ok());
    std::string after = dump_str(db);
    resumed.detach();
    SimLogDevice device2(disk);
    Database db2;
    ASSERT_TRUE(recover(device2, db2).ok()) << "cut=" << cut;
    EXPECT_EQ(dump_str(db2), after) << "cut=" << cut;
  }
  EXPECT_EQ(last_matched, static_cast<std::size_t>(kTxns));
}

TEST(WalRotationTearTest, PowerLossTearOnAFreshSegmentViaTheFaultPoint) {
  // Group commit holds the fresh segment's header + first records in the
  // volatile cache; the wal.torn_tail fault lets only a magnitude-sized
  // prefix reach the medium at power loss. Sweep magnitudes so the tear
  // lands inside the header, at its boundary, and inside the first frame.
  constexpr int kBefore = 10;
  std::vector<std::string> snaps = shadow_snapshots(kBefore + 2);
  for (int percent = 1; percent <= 99; percent += 7) {
    ManualClock clock;
    FaultRegistry faults(clock, 29);
    auto disk = std::make_shared<SimDisk>();
    SimLogDevice device(disk, &faults);
    Database db;
    WalOptions options;
    options.segment_bytes = 160;
    options.group_commit_txns = 0;  // commits never sync; flush() is explicit
    WalManager manager(device, options);
    ASSERT_TRUE(manager.open().is_ok());
    manager.attach(db);
    ASSERT_TRUE(db.create_table("tasks", task_schema()).ok());
    for (int i = 1; i <= kBefore; ++i) {
      ASSERT_TRUE(apply_txn(db, i).is_ok());
    }
    ASSERT_TRUE(manager.flush().is_ok());  // durable prefix: kBefore txns
    // The next two txns stay in the volatile cache, landing in a fresh
    // segment forced by the small segment budget, then the lights go out.
    ASSERT_TRUE(apply_txn(db, kBefore + 1).is_ok());
    ASSERT_TRUE(apply_txn(db, kBefore + 2).is_ok());
    faults.set_active(fault_point::wal_torn_tail(), true);
    faults.set_magnitude(fault_point::wal_torn_tail(), percent / 100.0);
    device.crash();
    manager.detach();

    SimLogDevice after(disk);
    Database recovered;
    Result<RecoveryInfo> info = recover(after, recovered);
    ASSERT_TRUE(info.ok()) << "magnitude=" << percent;
    std::string dump = dump_str(recovered);
    bool is_prefix = false;
    for (int j = kBefore; j <= kBefore + 2; ++j) {
      if (snaps[static_cast<std::size_t>(j)] == dump) is_prefix = true;
    }
    EXPECT_TRUE(is_prefix) << "magnitude=" << percent
                           << ": not a committed prefix of the campaign";
  }
}

}  // namespace
}  // namespace osprey::db::wal

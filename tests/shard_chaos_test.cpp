// Sharded-campaign chaos suite: the 750-task multi-work-type campaign on a
// 3-shard cluster, surviving a mid-flight single-shard leader failover.
//
// Three work types (10, 11, 12) run 250 tasks each; under kRange keying
// with range_width 1 they own shards 1, 2, and 0 respectively, so every
// shard carries exactly one work type's traffic. Each shard is a full
// replication group (leader + follower, recurring WAL pump, lossy shipping
// channel). At t=100 shard 1's leader dies with its slice mid-flight: its
// pools are lost, the shipped tail is drained, the follower is promoted
// under epoch 2, orphaned leases are requeued, and a fresh pool drains the
// remainder — all while shards 0 and 2 keep completing work undisturbed at
// epoch 1. Every task completes exactly once across the failover, the
// deposed resource's straggler is epoch-fenced, and the whole run replays
// bit-identically from the same master seed.
//
// The pools claim and report through ShardRouter::pool_backend, so the
// phase-2 pool needs no leader handle of its own — the router re-resolves
// shard 1's leader per operation, which is exactly the failover
// transparency the backend seam exists to provide.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "osprey/core/fault.h"
#include "osprey/db/dump.h"
#include "osprey/eqsql/db_api.h"
#include "osprey/json/json.h"
#include "osprey/me/sampler.h"
#include "osprey/me/task_runners.h"
#include "osprey/net/network.h"
#include "osprey/obs/telemetry.h"
#include "osprey/pool/sim_pool.h"
#include "osprey/shard/cluster.h"
#include "osprey/shard/key.h"
#include "osprey/shard/router.h"
#include "osprey/sim/sim.h"

namespace osprey::shard {
namespace {

constexpr std::array<WorkType, 3> kWorkTypes = {10, 11, 12};
constexpr int kTasksPerType = 250;  // 750 across the campaign
constexpr int kTotalTasks = kTasksPerType * 3;
constexpr int kWorkers = 11;  // per pool; one pool per work type in phase 1
constexpr double kMedianRuntime = 18.0;
constexpr double kRuntimeSigma = 0.3;
constexpr double kCutTime = 100.0;
constexpr double kPumpEvery = 2.0;
constexpr ShardId kFailShard = 1;  // owns work type 10 (10 % 3)

/// Everything the sharded failover determinism check compares.
struct ShardFailoverOutcome {
  bool promoted = false;
  std::string new_leader;
  std::uint64_t old_epoch = 0;
  std::uint64_t new_epoch = 0;
  std::array<std::uint64_t, 3> survivor_epochs = {0, 0, 0};
  std::uint64_t phase1_completed = 0;  // on the failing shard, pre-cut
  std::uint64_t phase2_completed = 0;  // on the failing shard, post-promote
  std::uint64_t other_completed = 0;   // shards that never failed over
  std::uint64_t other_completed_at_cut = 0;
  std::size_t requeued = 0;
  std::uint64_t fenced_writes = 0;
  std::int64_t db_complete = 0;
  std::int64_t db_queued = 0;
  std::int64_t db_running = 0;
  std::array<std::string, 3> shard_dumps;  // per-shard promoted/leader state
  std::string fault_report;
};

ShardFailoverOutcome run_sharded_campaign(std::uint64_t master_seed) {
  ShardFailoverOutcome outcome;
  SeedSequence seeds(master_seed);

  sim::Simulation sim;
  net::Network network = net::Network::testbed();
  FaultRegistry faults(sim, seeds.next());
  network.set_fault_registry(&faults);

  // Work type t owns shard t % 3: one work type per shard, deterministic.
  ShardClusterConfig config;
  config.spec.shard_count = 3;
  config.spec.scheme = ShardScheme::kRange;
  config.spec.range_width = 1;
  config.repl.ship_retry = RetryPolicy::immediate(6);
  config.repl.seed = seeds.next();
  ShardCluster cluster(sim, network, config);
  cluster.set_fault_registry(&faults);
  faults.set_probability(fault_point::repl_ship_drop(), 0.10);

  const char* sites[] = {"bebop", "theta", "midway2"};
  for (ShardId s = 0; s < 3; ++s) {
    EXPECT_TRUE(cluster
                    .create_leader(s, "lead" + std::to_string(s), sites[s])
                    .ok());
    EXPECT_TRUE(cluster
                    .add_follower(s, "follow" + std::to_string(s),
                                  sites[(s + 1) % 3])
                    .ok());
  }
  ShardRouter router(cluster);

  // The replication daemon: one recurring pump fanning out to all shards.
  std::function<void()> pump_tick = [&] {
    (void)cluster.pump_all();
    sim.schedule_at(sim.now() + kPumpEvery, pump_tick);
  };
  sim.schedule_at(kPumpEvery, pump_tick);

  // Submit the campaign: 250 tasks of each work type, routed by key.
  Rng sample_rng(seeds.next());
  auto samples =
      me::uniform_samples(sample_rng, kTotalTasks, 4, -32.768, 32.768);
  for (int i = 0; i < kTotalTasks; ++i) {
    const WorkType type = kWorkTypes[i % 3];
    Result<TaskId> id =
        router.submit_task("sharded", type, json::array_of(samples[i]).dump());
    EXPECT_TRUE(id.ok());
    if (id.ok()) {
      EXPECT_EQ(shard_of_task(id.value()), router.shard_of(type));
    }
  }

  auto make_pool = [&](std::vector<std::unique_ptr<pool::SimWorkerPool>>& into,
                       const std::string& name, WorkType type,
                       std::uint64_t seed) {
    pool::SimPoolConfig c;
    c.name = name;
    c.work_type = type;
    c.num_workers = kWorkers;
    c.batch_size = kWorkers;
    c.threshold = 1;
    c.query_cost = 0.6;
    c.query_jitter = 0.15;
    into.push_back(std::make_unique<pool::SimWorkerPool>(
        sim, router.pool_backend(type), c,
        me::ackley_sim_runner(kMedianRuntime, kRuntimeSigma), seed));
    EXPECT_TRUE(into.back()->start().is_ok());
  };

  // Phase 1: one pool per work type, each claiming through the router.
  std::uint64_t pool_seeds[4] = {seeds.next(), seeds.next(), seeds.next(),
                                 seeds.next()};
  std::vector<std::unique_ptr<pool::SimWorkerPool>> fail_shard_pools;
  std::vector<std::unique_ptr<pool::SimWorkerPool>> other_pools;
  for (int i = 0; i < 3; ++i) {
    const WorkType type = kWorkTypes[i];
    auto& into =
        router.shard_of(type) == kFailShard ? fail_shard_pools : other_pools;
    make_pool(into, "shard_pool_" + std::to_string(type), type, pool_seeds[i]);
  }

  // Any live follower of the failing shard at its leader head means no
  // acknowledged commit is lost in the failover.
  auto caught_up = [&] {
    repl::ReplicationGroup& g = cluster.group(kFailShard);
    const db::wal::Lsn head = g.leader_lsn();
    for (const std::string& id : g.follower_ids()) {
      repl::ReplicaNode* f = g.node(id);
      if (f && f->alive() && f->applied_lsn() == head) return true;
    }
    return false;
  };

  // The cut: shard 1's resource dies whole — its pool, then its leader.
  // The two other shards' pools never stop.
  std::vector<std::unique_ptr<pool::SimWorkerPool>> phase2_pools;
  sim.schedule_at(kCutTime, [&] {
    for (auto& p : other_pools) {
      outcome.other_completed_at_cut += p->tasks_completed();
    }
    for (auto& p : fail_shard_pools) p->crash();
    repl::ReplicationGroup& g = cluster.group(kFailShard);
    for (int i = 0; i < 64 && !caught_up(); ++i) {
      EXPECT_TRUE(g.pump().ok());
    }
    EXPECT_TRUE(caught_up());
    outcome.old_epoch = cluster.epoch(kFailShard);
    EXPECT_TRUE(g.kill("lead" + std::to_string(kFailShard)).is_ok());

    Result<std::string> promoted = cluster.promote(kFailShard);
    EXPECT_TRUE(promoted.ok());
    if (!promoted.ok()) return;
    outcome.promoted = true;
    outcome.new_leader = promoted.value();
    outcome.new_epoch = cluster.epoch(kFailShard);

    // Requeue the leases that died with the phase-1 pool, on the promoted
    // leader, then relaunch capacity through the same router backend — no
    // new connection, the router re-resolves the leader per operation.
    Result<std::unique_ptr<eqsql::EQSQL>> api = g.leader()->connect();
    EXPECT_TRUE(api.ok());
    if (!api.ok()) return;
    Result<std::size_t> requeued = api.value()->requeue_running_tasks();
    EXPECT_TRUE(requeued.ok());
    if (requeued.ok()) outcome.requeued = requeued.value();
    make_pool(phase2_pools, "shard_pool_relaunch", kWorkTypes[0],
              pool_seeds[3]);
  });

  sim.run_until(3000.0);

  // --- collect ---------------------------------------------------------------
  for (const auto& p : fail_shard_pools) {
    outcome.phase1_completed += p->tasks_completed();
  }
  for (const auto& p : phase2_pools) {
    outcome.phase2_completed += p->tasks_completed();
  }
  for (const auto& p : other_pools) {
    outcome.other_completed += p->tasks_completed();
  }
  for (ShardId s = 0; s < 3; ++s) {
    outcome.survivor_epochs[s] = cluster.epoch(s);
  }

  Result<eqsql::QueueStats> stats = router.stats();
  EXPECT_TRUE(stats.ok());
  if (stats.ok()) {
    outcome.db_complete = stats.value().complete;
    outcome.db_queued = stats.value().queued;
    outcome.db_running = stats.value().running;
  }

  // A straggler from shard 1's deposed resource reports a long-lost result
  // stamped with the epoch it still believes in: fenced. A current-epoch
  // re-report dies on the exactly-once guard instead.
  Result<std::vector<eqsql::TaskHandle>> probe =
      router.try_query_tasks(kWorkTypes[0], 1);
  EXPECT_TRUE(probe.ok() && probe.value().empty());  // fully drained
  const TaskId straggler = global_task_id(1, kFailShard);
  Status late = router.report_task_at_epoch(outcome.old_epoch, straggler,
                                            kWorkTypes[0], "{\"y\":0}");
  EXPECT_EQ(late.error().code, ErrorCode::kConflict);
  outcome.fenced_writes = router.fenced_writes();
  Status re_report = router.report_task(straggler, kWorkTypes[0], "{\"y\":0}");
  EXPECT_EQ(re_report.error().code, ErrorCode::kConflict);

  // Converge every shard's follower and snapshot the leaders.
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(cluster.pump_all().ok());
  }
  for (ShardId s = 0; s < 3; ++s) {
    outcome.shard_dumps[s] =
        db::dump_database(cluster.group(s).leader()->database()).dump();
  }
  outcome.fault_report = faults.report();
  return outcome;
}

TEST(ShardChaosTest, SingleShardFailoverExactlyOnceWhileOthersProgress) {
  ShardFailoverOutcome o = run_sharded_campaign(58008);

  ASSERT_TRUE(o.promoted);
  EXPECT_EQ(o.new_leader, "follow1");
  EXPECT_EQ(o.new_epoch, o.old_epoch + 1);
  // Only the failing shard changed epoch: failure isolation.
  EXPECT_EQ(o.survivor_epochs[0], 1u);
  EXPECT_EQ(o.survivor_epochs[kFailShard], 2u);
  EXPECT_EQ(o.survivor_epochs[2], 1u);
  // The cut was genuinely mid-flight on the failing shard...
  EXPECT_GT(o.phase1_completed, 0u);
  EXPECT_LT(o.phase1_completed, static_cast<std::uint64_t>(kTasksPerType));
  // ...so its pool's claimed tasks lost their leases.
  EXPECT_GT(o.requeued, 0u);
  // The other shards kept completing through the failover window.
  EXPECT_GT(o.other_completed_at_cut, 0u);
  EXPECT_GT(o.other_completed, o.other_completed_at_cut);
  EXPECT_EQ(o.other_completed, static_cast<std::uint64_t>(2 * kTasksPerType));
  // Every one of the 750 tasks completed exactly once across the cluster.
  EXPECT_EQ(o.db_complete, kTotalTasks);
  EXPECT_EQ(o.db_queued, 0);
  EXPECT_EQ(o.db_running, 0);
  EXPECT_EQ(o.phase1_completed + o.phase2_completed,
            static_cast<std::uint64_t>(kTasksPerType));
  // The deposed resource's straggler write was epoch-fenced.
  EXPECT_GE(o.fenced_writes, 1u);
  for (const std::string& dump : o.shard_dumps) EXPECT_FALSE(dump.empty());
}

TEST(ShardChaosTest, ShardedCampaignReplaysBitIdentically) {
  ShardFailoverOutcome a = run_sharded_campaign(90210);
  ShardFailoverOutcome b = run_sharded_campaign(90210);

  ASSERT_TRUE(a.promoted);
  ASSERT_TRUE(b.promoted);
  EXPECT_EQ(a.new_leader, b.new_leader);
  EXPECT_EQ(a.phase1_completed, b.phase1_completed);
  EXPECT_EQ(a.phase2_completed, b.phase2_completed);
  EXPECT_EQ(a.other_completed, b.other_completed);
  EXPECT_EQ(a.requeued, b.requeued);
  EXPECT_EQ(a.db_complete, b.db_complete);
  // Every shard's fully-drained database, byte for byte.
  for (ShardId s = 0; s < 3; ++s) {
    EXPECT_EQ(a.shard_dumps[s], b.shard_dumps[s]);
  }
  EXPECT_EQ(a.fault_report, b.fault_report);
}

TEST(ShardChaosTest, ShardedFailoverIsVisibleInTelemetry) {
  obs::ScopedTelemetry scoped;
  ShardFailoverOutcome o = run_sharded_campaign(58008);
  ASSERT_TRUE(o.promoted);

  obs::MetricsSnapshot snap = obs::telemetry().metrics.snapshot();
  // Exactly one failover cluster-wide, and the per-shard epoch gauges show
  // which shard it was.
  EXPECT_EQ(snap.counter_value("osprey_repl_failovers_total"), 1u);
  EXPECT_EQ(snap.gauge_value("osprey_shard_epoch", {{"shard", "1"}}), 2.0);
  EXPECT_EQ(snap.gauge_value("osprey_shard_epoch", {{"shard", "0"}}), 1.0);
  EXPECT_EQ(snap.gauge_value("osprey_shard_epoch", {{"shard", "2"}}), 1.0);
  // The campaign drained: every shard's queue depth gauge reads zero.
  for (const char* shard : {"0", "1", "2"}) {
    EXPECT_EQ(
        snap.gauge_value("osprey_shard_queue_depth", {{"shard", shard}}), 0.0);
  }
  // The straggler fence and the router's scatter plane were exercised.
  EXPECT_GE(snap.counter_value("osprey_shard_fenced_writes_total"), 1u);
  EXPECT_GT(snap.counter_value("osprey_shard_scatter_total"), 0u);
}

}  // namespace
}  // namespace osprey::shard

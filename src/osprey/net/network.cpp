#include "osprey/net/network.h"

#include <algorithm>

namespace osprey::net {

void Network::add_site(const SiteName& site) { sites_[site] = true; }

bool Network::has_site(const SiteName& site) const {
  return sites_.count(site) > 0;
}

std::vector<SiteName> Network::sites() const {
  std::vector<SiteName> out;
  out.reserve(sites_.size());
  for (const auto& [name, _] : sites_) out.push_back(name);
  return out;
}

void Network::set_link(const SiteName& a, const SiteName& b, LinkSpec spec) {
  add_site(a);
  add_site(b);
  // Store under canonical (min, max) ordering; lookups mirror this.
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  links_[key] = spec;
}

LinkSpec Network::link(const SiteName& a, const SiteName& b) const {
  if (a == b) {
    // Intra-site: effectively free relative to WAN scales.
    return LinkSpec{0.0, 1e12};
  }
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  auto it = links_.find(key);
  return it == links_.end() ? default_link_ : it->second;
}

bool Network::partitioned(const SiteName& a, const SiteName& b) const {
  if (a == b || faults_ == nullptr) return false;
  return faults_->active(fault_point::partition(a, b));
}

double Network::degradation(const SiteName& a, const SiteName& b) const {
  if (a == b || faults_ == nullptr) return 1.0;
  return faults_->magnitude(fault_point::slow_link(a, b));
}

Duration Network::latency(const SiteName& a, const SiteName& b) const {
  return link(a, b).latency * degradation(a, b);
}

Duration Network::transfer_duration(const SiteName& a, const SiteName& b,
                                    Bytes bytes) const {
  LinkSpec spec = link(a, b);
  return (spec.latency + static_cast<double>(bytes) / spec.bandwidth) *
         degradation(a, b);
}

Network Network::testbed() {
  Network network;
  const double kMiB = 1 << 20;
  for (const char* site : {"laptop", "bebop", "midway2", "theta", kCloudSite}) {
    network.add_site(site);
  }
  // Laptop: home-broadband-ish uplink to everything.
  for (const char* remote : {"bebop", "midway2", "theta", kCloudSite}) {
    network.set_link("laptop", remote, {0.040, 12.0 * kMiB});
  }
  // Lab-to-lab paths (ESnet-like): low latency, high bandwidth.
  network.set_link("bebop", "theta", {0.002, 1200.0 * kMiB});
  network.set_link("bebop", "midway2", {0.004, 800.0 * kMiB});
  network.set_link("midway2", "theta", {0.004, 800.0 * kMiB});
  // Cloud control plane reachable from the labs with modest latency.
  for (const char* site : {"bebop", "midway2", "theta"}) {
    network.set_link(site, kCloudSite, {0.025, 200.0 * kMiB});
  }
  return network;
}

}  // namespace osprey::net

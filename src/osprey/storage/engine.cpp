#include "osprey/storage/engine.h"

#include <algorithm>
#include <utility>

#include "osprey/db/dump.h"
#include "osprey/obs/telemetry.h"
#include "osprey/storage/compaction.h"
#include "osprey/storage/manifest.h"

namespace osprey::storage {

namespace {

constexpr const char* kRunPrefix = "sst-";

/// Engine-global telemetry (DESIGN.md §observability): block-cache traffic
/// and the spill/compaction size distributions. Per-table families (memtable
/// bytes, flush/compaction counters, runs per level) are acquired lazily per
/// store since their label sets are dynamic.
struct StorageObs {
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& read_errors;
  obs::Histogram& flush_bytes;
  obs::Histogram& compaction_bytes;
};

StorageObs& storage_obs() {
  static StorageObs o{
      obs::telemetry().metrics.counter("osprey_storage_cache_hits_total"),
      obs::telemetry().metrics.counter("osprey_storage_cache_misses_total"),
      obs::telemetry().metrics.counter("osprey_storage_read_errors_total"),
      obs::telemetry().metrics.histogram("osprey_storage_flush_bytes", {},
                                         obs::bytes_buckets()),
      obs::telemetry().metrics.histogram("osprey_storage_compaction_bytes", {},
                                         obs::bytes_buckets()),
  };
  return o;
}

bool has_prefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

// --- LsmStore ----------------------------------------------------------------

LsmStore::LsmStore(StorageEngine& engine, std::string table)
    : engine_(engine), table_(std::move(table)) {
  engine_.register_store(this);
}

LsmStore::~LsmStore() { engine_.unregister_store(this); }

void LsmStore::put(db::RowId id, db::Row row) {
  std::lock_guard<std::recursive_mutex> lock(engine_.mutex_);
  live_.insert(id);
  mem_.put(id, std::move(row));
  if (mem_.bytes() >= engine_.options_.memtable_bytes) {
    // Budget reached: rotate and spill. Failure (fault point, dead device)
    // is not an error for the caller — the rows stay readable in the
    // immutable slot and the flush is retried at the next rotation.
    engine_.rotate_and_flush_locked(*this);
  }
}

std::optional<db::Row> LsmStore::get(db::RowId id) const {
  std::lock_guard<std::recursive_mutex> lock(engine_.mutex_);
  if (!live_.count(id)) return std::nullopt;
  if (const db::Row* row = mem_.find(id)) return *row;
  if (const db::Row* row = immutable_.find(id)) return *row;
  return engine_.find_in_runs_locked(*this, id);
}

const db::Row* LsmStore::get_ref(db::RowId id) const {
  std::lock_guard<std::recursive_mutex> lock(engine_.mutex_);
  if (!live_.count(id)) return nullptr;
  if (const db::Row* row = mem_.find(id)) return row;
  if (const db::Row* row = immutable_.find(id)) return row;
  return nullptr;  // spilled: caller falls back to get()
}

bool LsmStore::erase(db::RowId id) {
  std::lock_guard<std::recursive_mutex> lock(engine_.mutex_);
  if (live_.erase(id) == 0) return false;
  // No tombstones: liveness left with the id set; any version of the row
  // still sitting in a run is dropped by the next compaction that sees it.
  mem_.erase(id);
  immutable_.erase(id);
  return true;
}

void LsmStore::clear() {
  std::lock_guard<std::recursive_mutex> lock(engine_.mutex_);
  live_.clear();
  mem_.clear();
  immutable_.clear();
  for (const auto& run : runs_) engine_.retire_run_locked(run);
  runs_.clear();
  engine_.update_gauges_locked(*this);
}

std::size_t LsmStore::size() const {
  std::lock_guard<std::recursive_mutex> lock(engine_.mutex_);
  return live_.size();
}

bool LsmStore::contains(db::RowId id) const {
  std::lock_guard<std::recursive_mutex> lock(engine_.mutex_);
  return live_.count(id) > 0;
}

std::vector<db::RowId> LsmStore::ids() const {
  std::lock_guard<std::recursive_mutex> lock(engine_.mutex_);
  return std::vector<db::RowId>(live_.begin(), live_.end());
}

Status LsmStore::scan(
    const std::function<Status(db::RowId, const db::Row&)>& fn) const {
  std::lock_guard<std::recursive_mutex> lock(engine_.mutex_);
  // Ascending-id order; consecutive spilled ids land in the same decoded
  // block, so the cache makes this O(blocks) device reads, not O(rows).
  for (db::RowId id : live_) {
    if (const db::Row* row = mem_.find(id)) {
      Status s = fn(id, *row);
      if (!s.is_ok()) return s;
      continue;
    }
    if (const db::Row* row = immutable_.find(id)) {
      Status s = fn(id, *row);
      if (!s.is_ok()) return s;
      continue;
    }
    std::optional<db::Row> row = engine_.find_in_runs_locked(*this, id);
    if (!row) {
      return Status(ErrorCode::kUnavailable,
                    "storage: live row " + std::to_string(id) + " of '" +
                        table_ + "' unreadable");
    }
    Status s = fn(id, *row);
    if (!s.is_ok()) return s;
  }
  return Status::ok();
}

Status LsmStore::flush() {
  std::lock_guard<std::recursive_mutex> lock(engine_.mutex_);
  return engine_.rotate_and_flush_locked(*this);
}

// --- StorageEngine -----------------------------------------------------------

StorageEngine::StorageEngine(db::wal::LogDevice& device, StorageOptions options,
                             FaultRegistry* faults)
    : device_(device),
      options_(options),
      faults_(faults),
      cache_(options.cache_blocks) {}

StorageEngine::~StorageEngine() = default;

Status StorageEngine::attach(db::Database& db) {
  // Lock order: database outer, engine inner. Table calls into LsmStore
  // under the database mutex and the store takes the engine mutex inside
  // it, so any engine path that calls back into the database must take the
  // database mutex first.
  std::lock_guard<std::recursive_mutex> db_lock(db.mutex());
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (!db.table_names().empty()) {
    return Status(ErrorCode::kConflict,
                  "storage: attach requires an empty database (existing "
                  "tables would keep their in-memory stores)");
  }
  db.set_store_factory([this](const std::string& table) {
    return std::make_unique<LsmStore>(*this, table);
  });
  db_ = &db;
  return Status::ok();
}

void StorageEngine::install(db::wal::WalManager& wal) {
  wal.set_snapshot_provider(
      [this](db::Database& db) { return build_manifest(db); });
  wal.set_post_checkpoint_hook(
      [this](db::wal::Lsn lsn) { on_checkpoint(lsn); });
}

Result<db::wal::RecoveryInfo> StorageEngine::recover(db::Database& db) {
  if (db_ != &db) {
    Status attached = attach(db);
    if (!attached.is_ok()) return attached.error();
  }
  // Orphan GC before replay: any run the newest durable checkpoint does not
  // reference — a torn flush, an un-checkpointed compaction output, or a
  // leftover the previous process never deleted — is dead weight, because
  // everything it held is re-derivable from the manifest plus the WAL tail.
  std::set<std::string> referenced;
  db::wal::Lsn ckpt_lsn = 0;
  Result<json::Value> ckpt =
      db::wal::read_latest_checkpoint(device_, &ckpt_lsn);
  if (ckpt.ok() && is_manifest(ckpt.value())) {
    referenced = manifest_run_segments(ckpt.value());
  }
  Result<std::vector<std::string>> names = device_.list();
  if (!names.ok()) return names.error();
  for (const std::string& name : names.value()) {
    if (has_prefix(name, kRunPrefix) && !referenced.count(name)) {
      Status removed = device_.remove(name);
      if (!removed.is_ok()) return removed.error();
    }
  }
  return db::wal::recover(
      device_, db, [this](db::Database& target, const json::Value& snapshot) {
        if (is_manifest(snapshot)) return restore_manifest(target, snapshot);
        return db::restore_database(target, snapshot);
      });
}

void StorageEngine::on_checkpoint(db::wal::Lsn) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  // The manifest is durable: runs it references must now be pinned until a
  // later manifest drops them; runs the *previous* manifest pinned but this
  // one no longer references (compacted away, table dropped) are free.
  for (const std::string& segment : zombies_) {
    device_.remove(segment);  // best effort; recovery GC sweeps leftovers
    cache_.erase_segment(segment);
  }
  zombies_.clear();
  std::set<std::string> pinned(manifest_segments_.begin(),
                               manifest_segments_.end());
  manifest_segments_.clear();
  for (auto& [name, store] : stores_) {
    (void)name;
    for (auto& run : store->runs_) {
      run->in_manifest = pinned.count(run->segment) > 0;
    }
  }
}

StorageStats StorageEngine::stats() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  StorageStats s;
  for (const auto& [name, store] : stores_) {
    (void)name;
    s.memtable_bytes += store->mem_.bytes() + store->immutable_.bytes();
    s.memtable_rows += store->mem_.size() + store->immutable_.size();
    std::size_t resident = 0;
    for (db::RowId id : store->live_) {
      if (store->mem_.find(id) || store->immutable_.find(id)) ++resident;
    }
    s.spilled_rows += store->live_.size() - resident;
    s.runs += store->runs_.size();
    for (const auto& run : store->runs_) s.run_bytes += run->bytes;
  }
  s.zombie_runs = zombies_.size();
  s.flushes = flushes_;
  s.flush_failures = flush_failures_;
  s.compactions = compactions_;
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.read_errors = read_errors_;
  return s;
}

Status StorageEngine::rotate_and_flush_locked(LsmStore& store) {
  // A pending immutable memtable (earlier flush failed) goes first; while it
  // cannot be written the active memtable keeps absorbing writes past the
  // budget — correctness over footprint.
  if (!store.immutable_.empty()) {
    Status s = flush_immutable_locked(store);
    if (!s.is_ok()) return s;
  }
  if (store.mem_.empty()) return Status::ok();
  std::swap(store.mem_, store.immutable_);
  return flush_immutable_locked(store);
}

Status StorageEngine::flush_immutable_locked(LsmStore& store) {
  if (store.immutable_.empty()) return Status::ok();
  if (faults_ && faults_->should_fire(fault_point::storage_flush_fail())) {
    ++flush_failures_;
    return Status(ErrorCode::kUnavailable, "storage: flush fault injected");
  }
  std::vector<RunEntry> entries;
  entries.reserve(store.immutable_.size());
  for (const auto& [id, row] : store.immutable_.entries()) {
    entries.push_back(RunEntry{id, row});
  }
  auto meta = std::make_shared<RunMeta>();
  std::string image = encode_run(entries, options_.block_bytes,
                                 options_.bloom_bits_per_key, meta.get());
  meta->seq = store.next_seq_;
  meta->level = 0;
  meta->segment = run_segment_name(store.table_, meta->seq, 0);
  meta->bytes = image.size();
  // A previous torn attempt may have left bytes under this name.
  device_.remove(meta->segment);
  cache_.erase_segment(meta->segment);
  Status appended = device_.append(meta->segment, image);
  if (!appended.is_ok()) {
    ++flush_failures_;
    return appended;
  }
  Status synced = device_.sync(meta->segment);
  if (!synced.is_ok()) {
    ++flush_failures_;
    return synced;
  }
  store.next_seq_++;
  store.runs_.insert(store.runs_.begin(), meta);  // newest first
  store.immutable_.clear();
  ++flushes_;
  if (obs::enabled()) {
    storage_obs().flush_bytes.observe(static_cast<double>(image.size()));
    if (!store.obs_flushes_) {
      store.obs_flushes_ = &obs::telemetry().metrics.counter(
          "osprey_storage_flushes_total", {{"table", store.table_}});
    }
    store.obs_flushes_->inc();
  }
  update_gauges_locked(store);
  return compact_locked(store);
}

Status StorageEngine::compact_locked(LsmStore& store) {
  while (true) {
    std::map<std::uint32_t, std::size_t> level_counts;
    for (const auto& run : store.runs_) ++level_counts[run->level];
    std::optional<std::uint32_t> level =
        pick_compaction_level(level_counts, options_.compact_fanout);
    if (!level) return Status::ok();
    if (faults_ &&
        faults_->should_fire(fault_point::storage_compact_fail())) {
      return Status(ErrorCode::kUnavailable,
                    "storage: compaction fault injected");
    }

    std::vector<std::shared_ptr<RunMeta>> inputs;
    std::vector<CompactionInput> decoded;
    std::uint64_t out_seq = 0;
    for (const auto& run : store.runs_) {
      if (run->level != *level) continue;
      Result<std::vector<RunEntry>> entries = read_run_locked(*run);
      if (!entries.ok()) return entries.error();
      out_seq = std::max(out_seq, run->seq);
      decoded.push_back(CompactionInput{run->seq, std::move(entries).take()});
      inputs.push_back(run);
    }
    std::vector<RunEntry> merged = merge_runs(
        std::move(decoded),
        [&store](db::RowId id) { return store.live_.count(id) > 0; });

    std::shared_ptr<RunMeta> output;
    if (!merged.empty()) {
      output = std::make_shared<RunMeta>();
      std::string image = encode_run(merged, options_.block_bytes,
                                     options_.bloom_bits_per_key, output.get());
      // The output's seq is the newest input's: the merged data is exactly
      // as new as that run, and must stay *older* than any level-0 run
      // flushed since.
      output->seq = out_seq;
      output->level = *level + 1;
      output->segment =
          run_segment_name(store.table_, output->seq, output->level);
      output->bytes = image.size();
      device_.remove(output->segment);
      cache_.erase_segment(output->segment);
      Status appended = device_.append(output->segment, image);
      if (appended.is_ok()) appended = device_.sync(output->segment);
      if (!appended.is_ok()) return appended;  // inputs stay live
      if (obs::enabled()) {
        storage_obs().compaction_bytes.observe(
            static_cast<double>(image.size()));
      }
    }

    // Output durable (or empty): swap it in for the inputs. Inputs a durable
    // manifest still references become zombies until the next checkpoint.
    auto is_input = [&inputs](const std::shared_ptr<RunMeta>& run) {
      return std::find(inputs.begin(), inputs.end(), run) != inputs.end();
    };
    store.runs_.erase(
        std::remove_if(store.runs_.begin(), store.runs_.end(), is_input),
        store.runs_.end());
    if (output) {
      auto pos = std::upper_bound(
          store.runs_.begin(), store.runs_.end(), output->seq,
          [](std::uint64_t seq, const std::shared_ptr<RunMeta>& run) {
            return seq > run->seq;
          });
      store.runs_.insert(pos, output);
    }
    for (const auto& run : inputs) retire_run_locked(run);
    ++compactions_;
    if (obs::enabled()) {
      if (!store.obs_compactions_) {
        store.obs_compactions_ = &obs::telemetry().metrics.counter(
            "osprey_storage_compactions_total", {{"table", store.table_}});
      }
      store.obs_compactions_->inc();
    }
    update_gauges_locked(store);
  }
}

Result<std::vector<RunEntry>> StorageEngine::read_run_locked(
    const RunMeta& run) {
  // Whole-run read for compaction: one device read, bypassing the block
  // cache (compaction inputs are about to disappear).
  Result<std::string> image = device_.read(run.segment);
  if (!image.ok()) return image.error();
  std::vector<RunEntry> entries;
  entries.reserve(run.entries);
  for (const BlockIndexEntry& block : run.blocks) {
    if (block.offset + block.length > image.value().size()) {
      return Error(ErrorCode::kInvalidArgument,
                   "storage: run '" + run.segment + "' shorter than its index");
    }
    Result<std::vector<RunEntry>> decoded = decode_block(
        image.value().substr(block.offset, block.length));
    if (!decoded.ok()) return decoded.error();
    for (RunEntry& e : decoded.value()) entries.push_back(std::move(e));
  }
  return entries;
}

std::optional<db::Row> StorageEngine::find_in_runs_locked(
    const LsmStore& store, db::RowId id) {
  for (const auto& run : store.runs_) {  // newest first
    if (run->blocks.empty() || id < run->min_id || id > run->max_id) continue;
    if (!run->bloom.may_contain(id)) continue;
    // Last block whose first_id <= id.
    auto it = std::upper_bound(
        run->blocks.begin(), run->blocks.end(), id,
        [](db::RowId target, const BlockIndexEntry& block) {
          return target < block.first_id;
        });
    if (it == run->blocks.begin()) continue;
    std::size_t ordinal =
        static_cast<std::size_t>(std::prev(it) - run->blocks.begin());
    BlockCache::Block block = read_block_locked(*run, ordinal);
    if (!block) {
      // Read error (counted in read_block_locked) on a run that may hold the
      // newest version of this row: falling through to older runs could
      // silently serve a stale version. Fail the lookup instead — a nullopt
      // for a live id is the unreadable-row signal (row_store.h contract).
      return std::nullopt;
    }
    auto entry = std::lower_bound(
        block->begin(), block->end(), id,
        [](const RunEntry& e, db::RowId target) { return e.id < target; });
    if (entry != block->end() && entry->id == id) return entry->row;
  }
  return std::nullopt;
}

BlockCache::Block StorageEngine::read_block_locked(const RunMeta& run,
                                                   std::size_t ordinal) {
  const std::string key = BlockCache::key(run.segment, ordinal);
  if (BlockCache::Block cached = cache_.get(key)) {
    if (obs::enabled()) storage_obs().cache_hits.inc();
    return cached;
  }
  if (obs::enabled()) storage_obs().cache_misses.inc();
  const BlockIndexEntry& index = run.blocks[ordinal];
  Result<std::string> frame =
      device_.read_range(run.segment, index.offset, index.length);
  if (!frame.ok() || frame.value().size() < index.length) {
    ++read_errors_;
    if (obs::enabled()) storage_obs().read_errors.inc();
    return nullptr;
  }
  Result<std::vector<RunEntry>> decoded = decode_block(frame.value());
  if (!decoded.ok()) {
    ++read_errors_;
    if (obs::enabled()) storage_obs().read_errors.inc();
    return nullptr;
  }
  auto block = std::make_shared<const std::vector<RunEntry>>(
      std::move(decoded).take());
  cache_.put(key, block);
  return block;
}

void StorageEngine::retire_run_locked(const std::shared_ptr<RunMeta>& run) {
  if (run->in_manifest) {
    // The last durable manifest references this run: recovery would need it
    // if we crashed now. Keep it until the next checkpoint proves it stale.
    zombies_.push_back(run->segment);
  } else {
    device_.remove(run->segment);  // best effort; recovery GC sweeps
    cache_.erase_segment(run->segment);
  }
}

void StorageEngine::register_store(LsmStore* store) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  stores_[store->table_] = store;
}

void StorageEngine::unregister_store(LsmStore* store) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  // Dropping a table retires its runs; manifest-pinned ones linger as
  // zombies until the next checkpoint (whose manifest omits the table).
  for (const auto& run : store->runs_) retire_run_locked(run);
  auto it = stores_.find(store->table_);
  if (it != stores_.end() && it->second == store) stores_.erase(it);
}

void StorageEngine::update_gauges_locked(const LsmStore& store) {
  if (!obs::enabled()) return;
  obs::telemetry()
      .metrics.gauge("osprey_storage_memtable_bytes",
                     {{"table", store.table_}})
      .set(static_cast<double>(store.mem_.bytes() +
                               store.immutable_.bytes()));
  std::map<std::uint32_t, std::size_t> level_counts;
  std::uint32_t max_level = 0;
  for (const auto& run : store.runs_) {
    ++level_counts[run->level];
    max_level = std::max(max_level, run->level);
  }
  // Levels that just emptied must drop to 0, so walk 0..max inclusive.
  for (std::uint32_t level = 0; level <= max_level; ++level) {
    obs::telemetry()
        .metrics.gauge("osprey_storage_runs",
                       {{"table", store.table_},
                        {"level", std::to_string(level)}})
        .set(static_cast<double>(level_counts[level]));
  }
}

}  // namespace osprey::storage

// Tests for the ME layer: test functions, samplers, linear algebra, GPR,
// reprioritization, and the async/sync drivers end-to-end on the simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "osprey/eqsql/schema.h"
#include "osprey/json/json.h"
#include "osprey/me/async_driver.h"
#include "osprey/me/functions.h"
#include "osprey/me/gpr.h"
#include "osprey/me/sync_driver.h"
#include "osprey/me/task_runners.h"

namespace osprey::me {
namespace {

// --- test functions -------------------------------------------------------------

class TestFunctionTest : public ::testing::TestWithParam<TestFunction> {};

TEST_P(TestFunctionTest, GlobalMinimumValue) {
  const TestFunction& f = GetParam();
  // Evaluate at the known minimizer.
  Point minimizer(4, f.name == "rosenbrock" || f.name == "levy" ? 1.0 : 0.0);
  EXPECT_NEAR(f.fn(minimizer), f.global_min, 1e-9) << f.name;
}

TEST_P(TestFunctionTest, PositiveAwayFromMinimum) {
  const TestFunction& f = GetParam();
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    Point p(4);
    for (double& x : p) x = rng.uniform(f.lo * 0.5, f.hi * 0.5);
    EXPECT_GE(f.fn(p), f.global_min - 1e-9) << f.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSurfaces, TestFunctionTest, ::testing::ValuesIn(test_functions()),
    [](const ::testing::TestParamInfo<TestFunction>& info) {
      return info.param.name;
    });

TEST(AckleyTest, KnownValues) {
  EXPECT_NEAR(ackley({0.0, 0.0, 0.0, 0.0}), 0.0, 1e-12);
  // Symmetric in sign.
  EXPECT_DOUBLE_EQ(ackley({1.0, -2.0}), ackley({-1.0, 2.0}));
  // Far from the origin the value approaches a + e ~ 22.718.
  EXPECT_GT(ackley({30.0, 30.0, 30.0, 30.0}), 19.0);
  EXPECT_LT(ackley({30.0, 30.0, 30.0, 30.0}), 22.72);
}

TEST(TestFunctionLookupTest, ByName) {
  EXPECT_TRUE(test_function("ackley").ok());
  EXPECT_EQ(test_function("nope").code(), ErrorCode::kNotFound);
}

// --- samplers --------------------------------------------------------------------

TEST(SamplerTest, UniformBoundsAndDeterminism) {
  Rng rng(1);
  auto points = uniform_samples(rng, 500, 4, -32.768, 32.768);
  ASSERT_EQ(points.size(), 500u);
  for (const Point& p : points) {
    ASSERT_EQ(p.size(), 4u);
    for (double x : p) {
      EXPECT_GE(x, -32.768);
      EXPECT_LE(x, 32.768);
    }
  }
  Rng rng2(1);
  EXPECT_EQ(uniform_samples(rng2, 500, 4, -32.768, 32.768), points);
}

TEST(SamplerTest, LatinHypercubeStratifiesEachDimension) {
  Rng rng(2);
  const int n = 100;
  auto points = latin_hypercube(rng, n, 3, 0.0, 1.0);
  for (int d = 0; d < 3; ++d) {
    std::vector<bool> stratum_hit(n, false);
    for (const Point& p : points) {
      int s = std::min(n - 1, static_cast<int>(p[static_cast<std::size_t>(d)] * n));
      EXPECT_FALSE(stratum_hit[static_cast<std::size_t>(s)])
          << "stratum " << s << " hit twice in dim " << d;
      stratum_hit[static_cast<std::size_t>(s)] = true;
    }
  }
}

// --- linalg ----------------------------------------------------------------------

TEST(LinalgTest, CholeskyOfKnownMatrix) {
  Matrix a(2, 2);
  a.at(0, 0) = 4;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 3;
  ASSERT_TRUE(cholesky_inplace(a).is_ok());
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(a.at(0, 1), 0.0);  // upper triangle zeroed
}

TEST(LinalgTest, CholeskyRejectsNonSpd) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky_inplace(a).is_ok());
}

TEST(LinalgTest, CholeskySolveRoundTrip) {
  // Build SPD A = B B^T + n I, pick x, compute b = A x, solve, compare.
  Rng rng(7);
  const std::size_t n = 20;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0;
      for (std::size_t k = 0; k < n; ++k) {
        // Deterministic pseudo-random B entries.
        double bi = std::sin(static_cast<double>(i * n + k + 1));
        double bj = std::sin(static_cast<double>(j * n + k + 1));
        sum += bi * bj;
      }
      a.at(i, j) = sum + (i == j ? 1.0 : 0.0);
    }
  }
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.uniform(-2, 2);
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
  }
  ASSERT_TRUE(cholesky_inplace(a).is_ok());
  std::vector<double> x = cholesky_solve(a, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

// --- GPR -------------------------------------------------------------------------

TEST(GprTest, InterpolatesTrainingDataWithLowNoise) {
  GprConfig config;
  config.lengthscale = 1.0;
  config.noise = 1e-8;
  GPR model(config);
  std::vector<Point> x{{0.0}, {1.0}, {2.0}, {3.0}};
  std::vector<double> y{1.0, 2.0, 0.5, -1.0};
  ASSERT_TRUE(model.fit(x, y).is_ok());
  for (std::size_t i = 0; i < x.size(); ++i) {
    Prediction p = model.predict(x[i]);
    EXPECT_NEAR(p.mean, y[i], 1e-4);
    EXPECT_LT(p.variance, 1e-4);
  }
}

TEST(GprTest, UncertaintyGrowsAwayFromData) {
  GPR model(GprConfig{KernelType::kRBF, 0.5, 1.0, 1e-6, true});
  std::vector<Point> x{{0.0}, {1.0}};
  std::vector<double> y{0.0, 1.0};
  ASSERT_TRUE(model.fit(x, y).is_ok());
  EXPECT_LT(model.predict({0.5}).variance, model.predict({5.0}).variance);
}

TEST(GprTest, MeanRevertsToPriorFarAway) {
  GprConfig config;
  config.lengthscale = 0.5;
  GPR model(config);
  std::vector<Point> x{{0.0}, {1.0}};
  std::vector<double> y{10.0, 12.0};
  ASSERT_TRUE(model.fit(x, y).is_ok());
  // Far from data, prediction reverts to the (de-normalized) prior mean.
  EXPECT_NEAR(model.predict({100.0}).mean, 11.0, 1e-6);
}

TEST(GprTest, Matern52AlsoFits) {
  GprConfig config;
  config.kernel = KernelType::kMatern52;
  config.lengthscale = 1.0;
  config.noise = 1e-8;
  GPR model(config);
  std::vector<Point> x{{0.0}, {1.0}, {2.0}};
  std::vector<double> y{0.0, 1.0, 4.0};
  ASSERT_TRUE(model.fit(x, y).is_ok());
  EXPECT_NEAR(model.predict({1.0}).mean, 1.0, 1e-3);
}

TEST(GprTest, RejectsBadInput) {
  GPR model;
  EXPECT_FALSE(model.fit({}, {}).is_ok());
  EXPECT_FALSE(model.fit({{1.0}}, {1.0, 2.0}).is_ok());
  EXPECT_FALSE(model.fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}).is_ok());
  GprConfig bad;
  bad.lengthscale = -1;
  EXPECT_FALSE(GPR(bad).fit({{1.0}}, {1.0}).is_ok());
}

TEST(GprTest, DuplicatePointsSurviveViaJitter) {
  GprConfig config;
  config.noise = 0.0;  // forces the jitter retry path
  GPR model(config);
  std::vector<Point> x{{1.0}, {1.0}, {2.0}};
  std::vector<double> y{3.0, 3.0, 5.0};
  EXPECT_TRUE(model.fit(x, y).is_ok());
}

TEST(GprTest, LearnsSmoothFunction) {
  // y = sin(x) on [0, 6]; the GPR should predict held-out points well.
  GprConfig config;
  config.lengthscale = 1.0;
  config.noise = 1e-6;
  GPR model(config);
  std::vector<Point> x;
  std::vector<double> y;
  for (int i = 0; i <= 24; ++i) {
    double xi = i * 0.25;
    x.push_back({xi});
    y.push_back(std::sin(xi));
  }
  ASSERT_TRUE(model.fit(x, y).is_ok());
  for (double test : {0.13, 1.7, 3.33, 5.9}) {
    EXPECT_NEAR(model.predict({test}).mean, std::sin(test), 0.01) << test;
  }
}

TEST(GprTest, LengthscaleSearchImprovesLikelihood) {
  std::vector<Point> x;
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    double xi = i * 0.2;
    x.push_back({xi});
    y.push_back(std::sin(xi));
  }
  GprConfig config;
  config.noise = 1e-4;
  config.lengthscale = 0.01;  // badly wrong starting point
  GPR fixed(config);
  ASSERT_TRUE(fixed.fit(x, y).is_ok());
  auto searched = GPR::fit_lengthscale_search(x, y, config, 0.01, 10.0);
  ASSERT_TRUE(searched.ok());
  EXPECT_GT(searched.value().log_marginal_likelihood(),
            fixed.log_marginal_likelihood());
  EXPECT_GT(searched.value().config().lengthscale, 0.1);
}

TEST(GprTest, PrioritiesRankPromisingFirst) {
  // Fit on a bowl; remaining points closer to the minimum must get higher
  // priorities.
  GprConfig config;
  config.lengthscale = 2.0;
  GPR model(config);
  std::vector<Point> x;
  std::vector<double> y;
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    Point p{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    y.push_back(sphere(p));
    x.push_back(std::move(p));
  }
  ASSERT_TRUE(model.fit(x, y).is_ok());
  std::vector<Point> remaining{{0.1, 0.1}, {4.5, 4.5}, {2.0, 2.0}};
  std::vector<Priority> priorities = promising_first_priorities(model, remaining);
  ASSERT_EQ(priorities.size(), 3u);
  EXPECT_GT(priorities[0], priorities[2]);  // near-minimum beats mid
  EXPECT_GT(priorities[2], priorities[1]);  // mid beats far corner
  // Ranks are exactly 1..n.
  std::vector<Priority> sorted = priorities;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<Priority>{1, 2, 3}));
}

// --- drivers end-to-end ------------------------------------------------------------

struct DriverHarness {
  DriverHarness() {
    db::sql::Connection conn(db);
    EXPECT_TRUE(eqsql::create_schema(conn).is_ok());
    api = std::make_unique<eqsql::EQSQL>(db, sim);
  }

  pool::SimPoolConfig pool_config(const PoolId& name, int workers) {
    pool::SimPoolConfig c;
    c.name = name;
    c.work_type = 1;
    c.num_workers = workers;
    c.batch_size = workers;
    c.threshold = 1;
    c.query_cost = 0.2;
    c.query_jitter = 0.0;
    c.idle_shutdown = 10.0;
    return c;
  }

  sim::Simulation sim;
  db::Database db;
  std::unique_ptr<eqsql::EQSQL> api;
};

TEST(AsyncDriverTest, RunsPaperWorkflowShape) {
  DriverHarness h;
  AsyncDriverConfig config;
  config.work_type = 1;
  config.retrain_after = 25;
  config.gpr.lengthscale = 8.0;
  config.gpr.noise = 1e-4;
  AsyncGprDriver driver(h.sim, *h.api, config);

  Rng rng(11);
  auto samples = uniform_samples(rng, 150, 4, -32.768, 32.768);
  ASSERT_TRUE(driver.run(samples).is_ok());

  pool::SimWorkerPool pool(h.sim, *h.api, h.pool_config("p1", 16),
                           ackley_sim_runner(3.0, 0.5));
  ASSERT_TRUE(pool.start().is_ok());
  h.sim.run();

  EXPECT_TRUE(driver.finished());
  EXPECT_EQ(driver.completed(), 150u);
  EXPECT_GE(driver.retrains().size(), 3u);
  // Retrains see growing training sets and shrinking remaining sets
  // ("at the next reprioritization 650 uncompleted tasks ... and so on").
  for (std::size_t i = 1; i < driver.retrains().size(); ++i) {
    EXPECT_GT(driver.retrains()[i].train_size,
              driver.retrains()[i - 1].train_size);
    EXPECT_LT(driver.retrains()[i].reprioritized,
              driver.retrains()[i - 1].reprioritized);
  }
  // Priorities span 1..n_remaining.
  const RetrainRecord& first = driver.retrains().front();
  Priority max_priority = 0;
  for (const auto& [id, p] : first.assignments) {
    max_priority = std::max(max_priority, p);
  }
  EXPECT_EQ(static_cast<std::size_t>(max_priority), first.reprioritized);
  // The optimizer found something decent on Ackley (random 4-D values
  // average ~21).
  EXPECT_LT(driver.best_value(), 21.0);
  // Best-so-far trajectory is monotone decreasing.
  for (std::size_t i = 1; i < driver.best_trajectory().size(); ++i) {
    EXPECT_LT(driver.best_trajectory()[i].value,
              driver.best_trajectory()[i - 1].value);
  }
}

TEST(AsyncDriverTest, RemoteExecutorDelaysApplication) {
  DriverHarness h;
  AsyncDriverConfig config;
  config.retrain_after = 20;
  // Remote executor: deliver priorities after 30 simulated seconds, as a
  // FaaS round trip would.
  AsyncGprDriver driver(
      h.sim, *h.api, config,
      [&h, &config](const std::vector<Point>& x, const std::vector<double>& y,
                    const std::vector<Point>& remaining,
                    std::function<void(std::vector<Priority>)> done) {
        GPR model(config.gpr);
        if (!model.fit(x, y).is_ok()) {
          done({});
          return;
        }
        auto priorities = promising_first_priorities(model, remaining);
        h.sim.schedule_in(30.0, [done = std::move(done),
                                 priorities = std::move(priorities)] {
          done(priorities);
        });
      });
  Rng rng(13);
  ASSERT_TRUE(driver.run(uniform_samples(rng, 80, 4, -32, 32)).is_ok());
  pool::SimWorkerPool pool(h.sim, *h.api, h.pool_config("p1", 8),
                           ackley_sim_runner(3.0, 0.5));
  ASSERT_TRUE(pool.start().is_ok());
  h.sim.run();
  EXPECT_TRUE(driver.finished());
  ASSERT_GE(driver.retrains().size(), 1u);
  // The retrain window has nonzero duration in simulated time.
  EXPECT_GE(driver.retrains()[0].finished_at - driver.retrains()[0].started_at,
            30.0);
  EXPECT_EQ(driver.completed(), 80u);
}

TEST(SyncDriverTest, GenerationsRunToBudget) {
  DriverHarness h;
  SyncDriverConfig config;
  config.generation_size = 20;
  config.generations = 4;
  config.candidate_pool = 300;
  config.gpr.lengthscale = 8.0;
  config.gpr.noise = 1e-4;
  SyncGprDriver driver(h.sim, *h.api, config);
  ASSERT_TRUE(driver.run().is_ok());
  pool::SimWorkerPool pool(h.sim, *h.api, h.pool_config("p1", 8),
                           ackley_sim_runner(3.0, 0.5));
  ASSERT_TRUE(pool.start().is_ok());
  h.sim.run();
  EXPECT_TRUE(driver.finished());
  EXPECT_EQ(driver.completed(), 80u);
  EXPECT_EQ(driver.generation(), 4);
  EXPECT_LT(driver.best_value(), 21.0);
}

TEST(AsyncDriverTest, RejectsEmptySampleSet) {
  DriverHarness h;
  me::AsyncGprDriver driver(h.sim, *h.api, me::AsyncDriverConfig{});
  EXPECT_EQ(driver.run({}).code(), ErrorCode::kInvalidArgument);
}

TEST(AsyncDriverTest, FailedGprKeepsOriginalOrderAndFinishes) {
  // Degenerate targets (all identical, zero noise) can stress the fit; the
  // driver must survive a failing/empty reprioritization and still finish.
  DriverHarness h;
  me::AsyncDriverConfig config;
  config.retrain_after = 10;
  me::AsyncGprDriver driver(
      h.sim, *h.api, config,
      [](const std::vector<me::Point>&, const std::vector<double>&,
         const std::vector<me::Point>&,
         std::function<void(std::vector<Priority>)> done) {
        done({});  // executor reports "no new priorities"
      });
  Rng rng(3);
  ASSERT_TRUE(driver.run(me::uniform_samples(rng, 40, 2, -1, 1)).is_ok());
  pool::SimWorkerPool pool(h.sim, *h.api, h.pool_config("p", 8),
                           ackley_sim_runner(2.0, 0.3));
  ASSERT_TRUE(pool.start().is_ok());
  h.sim.run();
  EXPECT_TRUE(driver.finished());
  EXPECT_EQ(driver.completed(), 40u);
  // Retrain records exist but carry no assignments.
  ASSERT_FALSE(driver.retrains().empty());
  EXPECT_TRUE(driver.retrains().front().assignments.empty());
}

TEST(SyncDriverTest, RejectsInvalidGenerationConfig) {
  DriverHarness h;
  me::SyncDriverConfig config;
  config.generation_size = 0;
  me::SyncGprDriver driver(h.sim, *h.api, config);
  EXPECT_EQ(driver.run().code(), ErrorCode::kInvalidArgument);
}

TEST(TaskRunnerTest, MalformedPayloadYieldsErrorResult) {
  auto runner = ackley_sim_runner(1.0, 0.0);
  Rng rng(1);
  eqsql::TaskHandle handle{1, 1, "{not json"};
  pool::TaskOutcome outcome = runner(handle, rng);
  auto parsed = osprey::json::parse(outcome.result);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().contains("error"));
  eqsql::TaskHandle bad_type{2, 1, R"(["a","b"])"};
  outcome = runner(bad_type, rng);
  EXPECT_TRUE(osprey::json::parse(outcome.result).value().contains("error"));
}

}  // namespace
}  // namespace osprey::me

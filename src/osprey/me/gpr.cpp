#include "osprey/me/gpr.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <tuple>

namespace osprey::me {

namespace {

double squared_distance(const Point& a, const Point& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

double GPR::kernel(const Point& a, const Point& b) const {
  const double r2 = squared_distance(a, b);
  const double ls2 = config_.lengthscale * config_.lengthscale;
  switch (config_.kernel) {
    case KernelType::kRBF:
      return config_.signal_variance * std::exp(-0.5 * r2 / ls2);
    case KernelType::kMatern52: {
      const double r = std::sqrt(r2);
      const double s = std::sqrt(5.0) * r / config_.lengthscale;
      return config_.signal_variance * (1.0 + s + s * s / 3.0) * std::exp(-s);
    }
  }
  return 0.0;
}

Status GPR::fit(const std::vector<Point>& x, const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "fit needs equal, nonzero numbers of points and targets");
  }
  const std::size_t dim = x.front().size();
  for (const Point& p : x) {
    if (p.size() != dim || dim == 0) {
      return Status(ErrorCode::kInvalidArgument, "ragged or empty input point");
    }
  }
  if (config_.lengthscale <= 0 || config_.signal_variance <= 0 ||
      config_.noise < 0) {
    return Status(ErrorCode::kInvalidArgument, "invalid GPR hyperparameters");
  }

  x_ = x;
  const std::size_t n = x.size();

  // Normalize targets.
  y_mean_ = 0.0;
  y_std_ = 1.0;
  if (config_.normalize_y) {
    y_mean_ = std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(n);
    double var = 0.0;
    for (double v : y) var += (v - y_mean_) * (v - y_mean_);
    var /= static_cast<double>(n);
    y_std_ = var > 1e-12 ? std::sqrt(var) : 1.0;
  }
  y_normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    y_normalized_[i] = (y[i] - y_mean_) / y_std_;
  }

  // K + noise I, then Cholesky (retry with growing jitter if needed).
  double jitter = std::max(config_.noise, 1e-10);
  for (int attempt = 0; attempt < 5; ++attempt) {
    chol_ = Matrix(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double k = kernel(x_[i], x_[j]);
        chol_.at(i, j) = k;
        chol_.at(j, i) = k;
      }
      chol_.at(i, i) += jitter;
    }
    Status ok = cholesky_inplace(chol_);
    if (ok.is_ok()) {
      alpha_ = cholesky_solve(chol_, y_normalized_);
      // log p(y) = -1/2 y^T alpha - sum log L_ii - n/2 log(2 pi)
      double log_det_half = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        log_det_half += std::log(chol_.at(i, i));
      }
      log_marginal_ = -0.5 * dot(y_normalized_, alpha_) - log_det_half -
                      0.5 * static_cast<double>(n) * std::log(6.283185307179586);
      fitted_ = true;
      return Status::ok();
    }
    jitter *= 100.0;
  }
  fitted_ = false;
  return Status(ErrorCode::kInvalidArgument,
                "kernel matrix is not positive definite even with jitter");
}

Prediction GPR::predict(const Point& p) const {
  Prediction out;
  if (!fitted_) return out;
  const std::size_t n = x_.size();
  std::vector<double> k_star(n);
  for (std::size_t i = 0; i < n; ++i) {
    k_star[i] = kernel(p, x_[i]);
  }
  const double mean_normalized = dot(k_star, alpha_);
  out.mean = mean_normalized * y_std_ + y_mean_;
  // var = k(p,p) - v^T v with v = L^-1 k_star.
  std::vector<double> v = forward_solve(chol_, k_star);
  double var_normalized = kernel(p, p) - dot(v, v);
  out.variance = std::max(0.0, var_normalized) * y_std_ * y_std_;
  return out;
}

std::vector<Prediction> GPR::predict_batch(
    const std::vector<Point>& points) const {
  std::vector<Prediction> out;
  out.reserve(points.size());
  for (const Point& p : points) out.push_back(predict(p));
  return out;
}

double GPR::log_marginal_likelihood() const { return log_marginal_; }

Result<GPR> GPR::fit_lengthscale_search(const std::vector<Point>& x,
                                        const std::vector<double>& y,
                                        GprConfig config, double ls_min,
                                        double ls_max, int iterations) {
  if (!(ls_min > 0) || ls_max <= ls_min) {
    return Error(ErrorCode::kInvalidArgument, "invalid lengthscale interval");
  }
  // Golden-section maximization of log marginal likelihood over log(ls) —
  // the likelihood surface is much better behaved in log space.
  auto evaluate = [&](double log_ls) {
    GprConfig c = config;
    c.lengthscale = std::exp(log_ls);
    GPR model(c);
    Status ok = model.fit(x, y);
    return std::pair<double, GPR>(
        ok.is_ok() ? model.log_marginal_likelihood()
                   : -std::numeric_limits<double>::infinity(),
        std::move(model));
  };

  const double phi = 0.6180339887498949;
  double lo = std::log(ls_min);
  double hi = std::log(ls_max);
  double m1 = hi - phi * (hi - lo);
  double m2 = lo + phi * (hi - lo);
  auto [f1, g1] = evaluate(m1);
  auto [f2, g2] = evaluate(m2);
  for (int i = 0; i < iterations; ++i) {
    if (f1 < f2) {
      lo = m1;
      m1 = m2;
      f1 = f2;
      g1 = std::move(g2);
      m2 = lo + phi * (hi - lo);
      std::tie(f2, g2) = evaluate(m2);
    } else {
      hi = m2;
      m2 = m1;
      f2 = f1;
      g2 = std::move(g1);
      m1 = hi - phi * (hi - lo);
      std::tie(f1, g1) = evaluate(m1);
    }
  }
  GPR best = f1 >= f2 ? std::move(g1) : std::move(g2);
  if (!best.fitted()) {
    return Error(ErrorCode::kInvalidArgument,
                 "no positive-definite fit in the lengthscale interval");
  }
  return best;
}

std::vector<Priority> promising_first_priorities(
    const GPR& model, const std::vector<Point>& remaining) {
  const std::size_t n = remaining.size();
  std::vector<Prediction> predictions = model.predict_batch(remaining);
  // Rank by predicted mean: the lowest mean gets the highest priority n,
  // the highest mean gets priority 1 (we minimize; higher priority pops
  // first from the output queue).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return predictions[a].mean < predictions[b].mean;
                   });
  std::vector<Priority> priorities(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    priorities[order[rank]] = static_cast<Priority>(n - rank);
  }
  return priorities;
}

}  // namespace osprey::me

// SEIR calibration: the epidemiologic workload OSPREY is built for (§I-II).
//
// A ground-truth SEIR epidemic is observed through a noisy under-reporting
// surveillance model; the workflow then searches (beta, sigma, gamma) to
// minimize the Poisson deviance of candidate epidemics against the observed
// case counts — the same asynchronous GPR-reprioritized campaign as §VI,
// with the Ackley function swapped for an actual epidemic model.
//
// Runs on the discrete-event simulator: a 300-task campaign on two 16-worker
// pools of "Bebop" completes in well under a second of wall time while
// simulating tens of minutes of campaign time.
#include <cmath>
#include <cstdio>

#include "osprey/epi/calibrate.h"
#include "osprey/eqsql/schema.h"
#include "osprey/json/json.h"
#include "osprey/me/async_driver.h"
#include "osprey/me/sampler.h"
#include "osprey/sim/sim.h"

using namespace osprey;

int main() {
  constexpr WorkType kSimWork = 1;

  // Ground truth: R0 = 4 epidemic in a city of 1M, observed at a 25%
  // reporting rate with weekend under-reporting.
  epi::SeirParams truth;
  truth.beta = 0.5;
  truth.sigma = 0.25;
  truth.gamma = 0.125;
  truth.population = 1e6;
  truth.initial_infected = 20;
  epi::ReportingModel reporting;
  reporting.report_rate = 0.25;

  epi::CalibrationProblem problem =
      epi::make_synthetic_problem(truth, 120, reporting);
  std::printf("synthetic surveillance: %.0f reported cases over %d days "
              "(true R0 = %.1f)\n",
              problem.observed.total(), problem.observed.days(), epi::r0(truth));

  // Simulated EMEWS stack.
  sim::Simulation sim;
  db::Database db;
  db::sql::Connection conn(db);
  if (!eqsql::create_schema(conn).is_ok()) return 1;
  eqsql::EQSQL api(db, sim);

  // Search box around plausible epidemiology: beta in [0.1,1], sigma in
  // [0.05,0.5], gamma in [0.05,0.5]. Points are sampled in the unit cube and
  // scaled inside the payload.
  const double lo[3] = {0.1, 0.05, 0.05};
  const double hi[3] = {1.0, 0.5, 0.5};
  Rng rng(99);
  auto unit = me::latin_hypercube(rng, 300, 3, 0.0, 1.0);
  std::vector<me::Point> candidates;
  candidates.reserve(unit.size());
  for (const auto& u : unit) {
    candidates.push_back({lo[0] + u[0] * (hi[0] - lo[0]),
                          lo[1] + u[1] * (hi[1] - lo[1]),
                          lo[2] + u[2] * (hi[2] - lo[2])});
  }

  me::AsyncDriverConfig driver_config;
  driver_config.exp_id = "seir_calibration";
  driver_config.work_type = kSimWork;
  driver_config.retrain_after = 30;
  driver_config.gpr.lengthscale = 0.3;
  driver_config.gpr.noise = 1e-3;
  me::AsyncGprDriver driver(sim, api, driver_config);
  if (!driver.run(candidates).is_ok()) return 1;

  // Two pilot pools; calibration tasks take ~20 simulated seconds each.
  // The objective is log1p(deviance): deviances span orders of magnitude
  // and the GPR surrogate ranks far better on the log scale.
  auto runner = epi::calibration_sim_runner(problem, 20.0, 0.5,
                                            /*log_loss=*/true);
  pool::SimPoolConfig pool_config;
  pool_config.work_type = kSimWork;
  pool_config.num_workers = 16;
  pool_config.batch_size = 16;
  pool_config.threshold = 1;
  pool_config.idle_shutdown = 30.0;
  pool_config.name = "bebop_pool_1";
  pool::SimWorkerPool pool1(sim, api, pool_config, runner, 31);
  pool_config.name = "bebop_pool_2";
  pool::SimWorkerPool pool2(sim, api, pool_config, runner, 37);
  if (!pool1.start().is_ok() || !pool2.start().is_ok()) return 1;

  sim.run();

  if (!driver.finished()) {
    std::fprintf(stderr, "campaign did not finish\n");
    return 1;
  }
  std::printf("campaign: %zu evaluations in %.0f simulated seconds, "
              "%zu reprioritizations\n",
              driver.completed(), sim.now(), driver.retrains().size());

  // Report the best candidate found (objective is log1p(deviance)).
  double best_loss = std::expm1(driver.best_value());
  double loss_at_truth = problem.loss(truth.beta, truth.sigma, truth.gamma);
  std::printf("best deviance found: %.1f (deviance at true parameters: %.1f)\n",
              best_loss, loss_at_truth);
  std::printf("pools: %llu + %llu tasks executed\n",
              static_cast<unsigned long long>(pool1.tasks_completed()),
              static_cast<unsigned long long>(pool2.tasks_completed()));
  // Success criterion: within ~12x of the truth's own deviance (a 300-point
  // space-filling search in a 3-D box; Poisson noise means even the truth
  // does not fit perfectly).
  return std::log1p(best_loss) < std::log1p(loss_at_truth) + 2.5 ? 0 : 1;
}

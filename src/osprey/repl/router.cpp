#include "osprey/repl/router.h"

#include <algorithm>
#include <utility>

namespace osprey::repl {

namespace wal = db::wal;

ReplRouter::ReplRouter(ReplicationGroup& group, RouterConfig config)
    : group_(group), config_(config) {}

ReplicaNode* ReplRouter::reader_for(wal::Lsn min_lsn) {
  if (config_.route_reads_to_replicas) {
    // Tighten the caller's watermark with the staleness bound: a replica may
    // serve the read only if it is within max_staleness_lsns of the leader
    // head *and* has applied everything the caller requires.
    const wal::Lsn head = group_.leader_lsn();
    wal::Lsn floor = min_lsn;
    if (head > config_.max_staleness_lsns) {
      floor = std::max(floor, head - config_.max_staleness_lsns);
    }
    ReplicaNode* replica = group_.replica_for_read(floor);
    if (replica != nullptr) {
      ++replica_reads_;
      return replica;
    }
    ++redirects_;  // wanted a replica, fell back to the leader
  }
  ReplicaNode* leader = group_.leader();
  if (leader == nullptr || !leader->alive()) return nullptr;
  ++leader_reads_;
  return leader;
}

Result<std::unique_ptr<eqsql::EQSQL>> ReplRouter::leader_api() {
  ReplicaNode* leader = group_.leader();
  if (leader == nullptr || !leader->alive()) {
    return Error(ErrorCode::kUnavailable, "no live leader");
  }
  Result<std::unique_ptr<eqsql::EQSQL>> api = leader->connect();
  // Leader handles are per-call, so the tenant context re-attaches on every
  // resolve — it survives leader replacement the same way epoch fencing does.
  if (api.ok() && tenants_ != nullptr) {
    api.value()->set_tenant_context(tenants_, tenant_);
  }
  return api;
}

Result<TaskId> ReplRouter::submit_task(const ExpId& exp_id, WorkType eq_type,
                                       const std::string& payload,
                                       Priority priority,
                                       const std::string& tag) {
  auto api = leader_api();
  if (!api.ok()) return api.error();
  return api.value()->submit_task(exp_id, eq_type, payload, priority, tag);
}

Result<std::vector<TaskId>> ReplRouter::submit_tasks(
    const ExpId& exp_id, WorkType eq_type,
    const std::vector<std::string>& payloads, Priority priority,
    const std::string& tag) {
  auto api = leader_api();
  if (!api.ok()) return api.error();
  return api.value()->submit_tasks(exp_id, eq_type, payloads, priority, tag);
}

Result<TaskId> ReplRouter::submit_task_as(const TenantId& tenant,
                                          const ExpId& exp_id, WorkType eq_type,
                                          const std::string& payload,
                                          Priority priority,
                                          const std::string& tag) {
  auto api = leader_api();
  if (!api.ok()) return api.error();
  return api.value()->submit_task_as(tenant, exp_id, eq_type, payload,
                                     priority, tag);
}

Result<std::vector<TaskId>> ReplRouter::submit_tasks_as(
    const TenantId& tenant, const ExpId& exp_id, WorkType eq_type,
    const std::vector<std::string>& payloads, Priority priority,
    const std::string& tag) {
  auto api = leader_api();
  if (!api.ok()) return api.error();
  return api.value()->submit_tasks_as(tenant, exp_id, eq_type, payloads,
                                      priority, tag);
}

Result<std::vector<eqsql::TaskHandle>> ReplRouter::try_query_tasks(
    WorkType eq_type, int n, const PoolId& worker_pool) {
  auto api = leader_api();
  if (!api.ok()) return api.error();
  return api.value()->try_query_tasks(eq_type, n, worker_pool);
}

Status ReplRouter::report_task(TaskId eq_task_id, WorkType eq_type,
                               const std::string& result) {
  return report_task_at_epoch(group_.epoch(), eq_task_id, eq_type, result);
}

Status ReplRouter::report_task_at_epoch(Epoch epoch, TaskId eq_task_id,
                                        WorkType eq_type,
                                        const std::string& result) {
  // Fence before touching the database: a worker that claimed its task from
  // a since-deposed leader reports with that leader's epoch, and the report
  // must die here or the task could complete twice across the failover.
  const Epoch current = group_.epoch();
  if (epoch < current) {
    ++fenced_writes_;
    return Status(ErrorCode::kConflict,
                  "fenced: write epoch " + std::to_string(epoch) +
                      " < group epoch " + std::to_string(current));
  }
  auto api = leader_api();
  if (!api.ok()) return api.error();
  return api.value()->report_task(eq_task_id, eq_type, result);
}

Result<std::string> ReplRouter::try_query_result(TaskId eq_task_id) {
  auto api = leader_api();
  if (!api.ok()) return api.error();
  return api.value()->try_query_result(eq_task_id);
}

Result<std::vector<TaskId>> ReplRouter::try_query_completed(
    const std::vector<TaskId>& eq_task_ids, int n) {
  auto api = leader_api();
  if (!api.ok()) return api.error();
  return api.value()->try_query_completed(eq_task_ids, n);
}

Result<std::size_t> ReplRouter::requeue_tasks(
    const std::vector<TaskId>& eq_task_ids) {
  auto api = leader_api();
  if (!api.ok()) return api.error();
  return api.value()->requeue_tasks(eq_task_ids);
}

Result<std::string> ReplRouter::peek_result(TaskId eq_task_id) {
  return peek_result_at(eq_task_id, 0);
}

Result<std::string> ReplRouter::peek_result_at(TaskId eq_task_id,
                                               wal::Lsn min_lsn) {
  ReplicaNode* node = reader_for(min_lsn);
  if (node == nullptr) return Error(ErrorCode::kUnavailable, "no live node");
  auto api = node->connect();
  if (!api.ok()) return api.error();
  return api.value()->peek_result(eq_task_id);
}

Result<eqsql::TaskStatus> ReplRouter::task_status(TaskId eq_task_id) {
  ReplicaNode* node = reader_for(0);
  if (node == nullptr) return Error(ErrorCode::kUnavailable, "no live node");
  auto api = node->connect();
  if (!api.ok()) return api.error();
  return api.value()->task_status(eq_task_id);
}

Result<std::int64_t> ReplRouter::queued_count(WorkType eq_type) {
  ReplicaNode* node = reader_for(0);
  if (node == nullptr) return Error(ErrorCode::kUnavailable, "no live node");
  auto api = node->connect();
  if (!api.ok()) return api.error();
  return api.value()->queued_count(eq_type);
}

Result<eqsql::QueueStats> ReplRouter::stats() {
  ReplicaNode* node = reader_for(0);
  if (node == nullptr) return Error(ErrorCode::kUnavailable, "no live node");
  auto api = node->connect();
  if (!api.ok()) return api.error();
  return api.value()->stats();
}

eqsql::WaitRouting ReplRouter::wait_routing(eqsql::Notifier* notifier) {
  eqsql::WaitRouting routing;
  routing.peeker = [this](TaskId eq_task_id) { return peek_result(eq_task_id); };
  routing.notifier = notifier;
  return routing;
}

}  // namespace osprey::repl

#include "osprey/json/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace osprey::json {

namespace {
const Value& null_value() {
  static const Value v;
  return v;
}
}  // namespace

const Value& Value::operator[](const std::string& key) const {
  if (!is_object()) return null_value();
  auto it = as_object().find(key);
  return it == as_object().end() ? null_value() : it->second;
}

Value& Value::operator[](const std::string& key) {
  if (is_null()) data_ = Object{};
  return std::get<Object>(data_)[key];
}

std::size_t Value::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  return 0;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_double(std::string& out, double d) {
  if (std::isnan(d)) {
    out += "null";  // JSON has no NaN; match Python's json default behavior
    return;
  }
  if (std::isinf(d)) {
    out += d > 0 ? "1e308" : "-1e308";
    return;
  }
  char buf[32];
  // %.17g round-trips doubles exactly; trim to shortest when possible.
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  double check = std::strtod(buf, nullptr);
  if (check == d) {
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[32];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, d);
      if (std::strtod(shorter, nullptr) == d) {
        out += shorter;
        return;
      }
    }
  }
  out += buf;
}

void write_value(std::string& out, const Value& v, int indent, int depth) {
  auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.type()) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(v.as_int()); break;
    case Type::kDouble: write_double(out, v.as_double()); break;
    case Type::kString: write_escaped(out, v.as_string()); break;
    case Type::kArray: {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const Value& e : a) {
        if (!first) out += indent < 0 ? "," : ",";
        first = false;
        newline(depth + 1);
        write_value(out, e, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, val] : o) {
        if (!first) out += ",";
        first = false;
        newline(depth + 1);
        write_escaped(out, key);
        out += indent < 0 ? ":" : ": ";
        write_value(out, val, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string Value::dump() const {
  std::string out;
  write_value(out, *this, /*indent=*/-1, 0);
  return out;
}

std::string Value::dump_pretty() const {
  std::string out;
  write_value(out, *this, /*indent=*/2, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> parse_document() {
    skip_ws();
    Result<Value> v = parse_value(0);
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON value");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 256;

  Error make_error(const std::string& msg) const {
    return Error(ErrorCode::kInvalidArgument,
                 msg + " at offset " + std::to_string(pos_));
  }
  Result<Value> fail(const std::string& msg) const { return make_error(msg); }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (!at_end() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(const char* word) {
    std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<Value> parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        Result<std::string> s = parse_string();
        if (!s.ok()) return s.error();
        return Value(std::move(s).take());
      }
      case 't':
        if (consume_word("true")) return Value(true);
        return fail("invalid literal");
      case 'f':
        if (consume_word("false")) return Value(false);
        return fail("invalid literal");
      case 'n':
        if (consume_word("null")) return Value(nullptr);
        return fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Result<Value> parse_object(int depth) {
    consume('{');
    Object obj;
    skip_ws();
    if (consume('}')) return Value(std::move(obj));
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key");
      Result<std::string> key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_ws();
      Result<Value> val = parse_value(depth + 1);
      if (!val.ok()) return val;
      obj[std::move(key).take()] = std::move(val).take();
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Value(std::move(obj));
      return fail("expected ',' or '}' in object");
    }
  }

  Result<Value> parse_array(int depth) {
    consume('[');
    Array arr;
    skip_ws();
    if (consume(']')) return Value(std::move(arr));
    while (true) {
      skip_ws();
      Result<Value> val = parse_value(depth + 1);
      if (!val.ok()) return val;
      arr.push_back(std::move(val).take());
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Value(std::move(arr));
      return fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> parse_string() {
    consume('"');
    std::string out;
    while (true) {
      if (at_end()) return make_error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (at_end()) return make_error("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return make_error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return make_error("bad hex digit in \\u escape");
            }
            // Surrogate pair handling for non-BMP characters.
            if (code >= 0xD800 && code <= 0xDBFF) {
              if (pos_ + 6 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return make_error("unpaired surrogate");
              }
              pos_ += 2;
              unsigned low = 0;
              for (int i = 0; i < 4; ++i) {
                char h = text_[pos_++];
                low <<= 4;
                if (h >= '0' && h <= '9') low |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f') low |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F') low |= static_cast<unsigned>(h - 'A' + 10);
                else return make_error("bad hex digit in \\u escape");
              }
              if (low < 0xDC00 || low > 0xDFFF) {
                return make_error("invalid low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            }
            append_utf8(out, code);
            break;
          }
          default:
            return make_error("invalid escape character");
        }
      } else {
        out += c;
      }
    }
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Result<Value> parse_number() {
    std::size_t start = pos_;
    if (consume('-')) {
    }
    if (at_end()) return fail("invalid number");
    if (!consume('0')) {
      if (at_end() || peek() < '1' || peek() > '9') {
        return fail("invalid number");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    bool is_integer = true;
    if (consume('.')) {
      is_integer = false;
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("digits required after decimal point");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      is_integer = false;
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("digits required in exponent");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    std::string token = text_.substr(start, pos_ - start);
    if (is_integer) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Value(static_cast<std::int64_t>(v));
      }
      // Fall through to double for out-of-range integers.
    }
    errno = 0;
    double d = std::strtod(token.c_str(), nullptr);
    if (errno != 0 && (d == HUGE_VAL || d == -HUGE_VAL)) {
      return fail("number out of range");
    }
    return Value(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Value> parse(const std::string& text) {
  return Parser(text).parse_document();
}

Value parse_or_die(const std::string& text) {
  Result<Value> r = parse(text);
  assert(r.ok() && "parse_or_die on invalid JSON");
  if (!r.ok()) return Value();  // keep release builds defined
  return std::move(r).take();
}

Value array_of(const std::vector<double>& xs) {
  Array a;
  a.reserve(xs.size());
  for (double x : xs) a.emplace_back(x);
  return Value(std::move(a));
}

Result<std::vector<double>> to_doubles(const Value& v) {
  if (!v.is_array()) {
    return Error(ErrorCode::kInvalidArgument, "expected JSON array");
  }
  std::vector<double> out;
  out.reserve(v.as_array().size());
  for (const Value& e : v.as_array()) {
    if (!e.is_number()) {
      return Error(ErrorCode::kInvalidArgument, "expected numeric element");
    }
    out.push_back(e.as_double());
  }
  return out;
}

}  // namespace osprey::json

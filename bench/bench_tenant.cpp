// Multi-tenant front door benchmark (ROADMAP item 4, DESIGN.md §5.13):
// weighted-fair scheduling quality, noisy-neighbor isolation, and the raw
// admission-control cost.
//
// Three experiments against the real EQSQL claim path:
//
//  - fair_share: four backlogged tenants with weights 4:3:2:1 claimed in
//    worker-sized batches; reports each tenant's service share and the
//    weighted Jain fairness index J = (sum x)^2 / (n * sum x^2) over
//    x_i = served_i / weight_i. Stride scheduling should hold J ~ 1.0;
//    the shape check requires >= 0.99.
//  - isolation: the ISSUE acceptance scenario on a virtual-clock fleet —
//    tenant A floods at 10x its quota while tenant B runs a steady
//    campaign; reports B's p99 task-cycle latency uncontended vs contended.
//    The shape check enforces contended <= 2x baseline and that A's
//    in-flight never crossed its quota.
//  - admission: wall-clock cost of the front door itself — admit/release
//    cycles and at-quota rejections per second on a TenantRegistry.
//
// Prints the table, emits BENCH_tenant.json, exits nonzero on FAIL.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "osprey/core/clock.h"
#include "osprey/eqsql/db_api.h"
#include "osprey/eqsql/service.h"
#include "osprey/tenant/registry.h"

using namespace osprey;
using namespace osprey::tenant;

namespace {

constexpr WorkType kWork = 1;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double p99(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  return xs[static_cast<std::size_t>(0.99 * (xs.size() - 1))];
}

// --- fair_share --------------------------------------------------------------

struct FairShareResult {
  std::vector<int> served;  // per tenant
  double jain = 0.0;
  double claims_per_s = 0.0;
};

FairShareResult run_fair_share(const std::vector<double>& weights,
                               int claims) {
  ManualClock clock;
  eqsql::EmewsService service(clock);
  if (!service.start().is_ok() || !service.enable_tenants().is_ok()) {
    std::abort();
  }
  std::vector<std::unique_ptr<eqsql::EQSQL>> apis;
  const int per_tenant = claims;  // nobody drains inside the window
  for (std::size_t t = 0; t < weights.size(); ++t) {
    TenantConfig config;
    config.weight = weights[t];
    if (!service.tenants()
             ->register_tenant("t" + std::to_string(t), config)
             .is_ok()) {
      std::abort();
    }
    auto api = service.connect_as("t" + std::to_string(t));
    if (!api.ok()) std::abort();
    apis.push_back(std::move(api).take());
    std::vector<std::string> payloads(per_tenant, std::to_string(t));
    if (!apis[t]->submit_tasks("bench", kWork, payloads).ok()) std::abort();
  }
  FairShareResult out;
  out.served.assign(weights.size(), 0);
  const double t0 = now_s();
  int claimed = 0;
  while (claimed < claims) {
    auto batch = apis[0]->try_query_tasks(
        kWork, std::min(16, claims - claimed), "fleet");
    if (!batch.ok() || batch.value().empty()) std::abort();
    for (const auto& handle : batch.value()) {
      ++out.served[static_cast<std::size_t>(std::stoi(handle.payload))];
      ++claimed;
    }
  }
  const double elapsed = now_s() - t0;
  out.claims_per_s = claims / std::max(elapsed, 1e-9);
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t t = 0; t < weights.size(); ++t) {
    const double x = out.served[t] / weights[t];
    sum += x;
    sum_sq += x * x;
  }
  out.jain = (sum * sum) / (static_cast<double>(weights.size()) * sum_sq);
  return out;
}

// --- isolation ---------------------------------------------------------------

struct IsolationResult {
  double p99_s = 0.0;
  std::uint64_t rejected = 0;
  std::int64_t peak_in_flight = 0;
  bool quota_held = true;
};

/// The chaos scenario on a deterministic virtual-clock fleet: B submits 2
/// tasks/tick into a 20-worker fleet (4-tick runtime); with `flood`, A
/// hammers the door at 10x its quota of 20 every tick.
IsolationResult run_isolation(bool flood) {
  constexpr int kWorkers = 20;
  constexpr double kRuntime = 4.0;
  constexpr int kBTasks = 300;
  constexpr std::uint64_t kQuota = 20;
  IsolationResult out;
  ManualClock clock;
  eqsql::EmewsService service(clock);
  if (!service.start().is_ok() || !service.enable_tenants().is_ok()) {
    std::abort();
  }
  TenantConfig a_config;
  a_config.submit_quota = kQuota;
  if (!service.tenants()->register_tenant("A", a_config).is_ok() ||
      !service.tenants()->register_tenant("B").is_ok()) {
    std::abort();
  }
  auto a_api = service.connect_as("A").take();
  auto b_api = service.connect_as("B").take();
  auto workers = service.connect().take();

  struct Running {
    TaskId id;
    bool is_b;
    double done_at;
  };
  std::vector<Running> fleet;
  std::map<TaskId, double> b_submitted_at;
  std::vector<double> b_latencies;
  int b_submitted = 0, b_reported = 0;
  for (int tick = 0; tick < 5000; ++tick) {
    const double now = static_cast<double>(tick);
    clock.set(now);
    for (auto it = fleet.begin(); it != fleet.end();) {
      if (it->done_at <= now) {
        if (!workers->report_task(it->id, kWork, "r").is_ok()) std::abort();
        if (it->is_b) {
          ++b_reported;
          b_latencies.push_back(now - b_submitted_at[it->id]);
        }
        it = fleet.erase(it);
      } else {
        ++it;
      }
    }
    for (int i = 0; i < 2 && b_submitted < kBTasks; ++i) {
      auto id = b_api->submit_task("campaign", kWork, "b");
      if (!id.ok()) std::abort();
      b_submitted_at[id.value()] = now;
      ++b_submitted;
    }
    if (flood) {
      for (std::uint64_t i = 0; i < kQuota * 10; ++i) {
        (void)a_api->submit_task("flood", kWork, "a");
      }
      const TenantStats a = service.tenants()->stats_for("A").value();
      out.peak_in_flight =
          std::max(out.peak_in_flight, a.queued + a.running);
      if (a.queued + a.running > static_cast<std::int64_t>(kQuota)) {
        out.quota_held = false;
      }
    }
    const int free = kWorkers - static_cast<int>(fleet.size());
    if (free > 0) {
      auto batch = workers->try_query_tasks(kWork, free, "fleet");
      if (!batch.ok()) std::abort();
      for (const auto& handle : batch.value()) {
        fleet.push_back(
            {handle.eq_task_id, handle.payload == "b", now + kRuntime});
      }
    }
    if (b_submitted == kBTasks && b_reported == kBTasks) break;
  }
  if (b_reported != kBTasks) std::abort();
  out.p99_s = p99(b_latencies);
  out.rejected = service.tenants()->stats_for("A").value().rejected;
  return out;
}

// --- admission ---------------------------------------------------------------

struct AdmissionResult {
  double admit_cycles_per_s = 0.0;
  double rejects_per_s = 0.0;
};

AdmissionResult run_admission() {
  AdmissionResult out;
  TenantRegistry registry;
  TenantConfig config;
  config.submit_quota = 64;
  if (!registry.register_tenant("t", config).is_ok()) std::abort();
  constexpr int kCycles = 200000;
  double t0 = now_s();
  for (int i = 0; i < kCycles; ++i) {
    if (!registry.admit("t", 1).is_ok()) std::abort();
    registry.on_claimed("t", 1);
    registry.on_finished("t", 1, /*from_queue=*/false, 0.01, 0.01);
  }
  out.admit_cycles_per_s = kCycles / std::max(now_s() - t0, 1e-9);
  // At-quota rejections: the hot path a flood actually exercises.
  if (!registry.admit("t", 64).is_ok()) std::abort();
  t0 = now_s();
  for (int i = 0; i < kCycles; ++i) {
    if (registry.admit("t", 1).is_ok()) std::abort();
  }
  out.rejects_per_s = kCycles / std::max(now_s() - t0, 1e-9);
  return out;
}

}  // namespace

int main() {
  bool failed = false;
  osprey::bench::JsonWriter json("tenant");

  const std::vector<double> weights = {4, 3, 2, 1};
  const FairShareResult fair = run_fair_share(weights, 2000);
  std::printf("fair_share: weights 4:3:2:1, 2000 claims\n");
  for (std::size_t t = 0; t < weights.size(); ++t) {
    std::printf("  t%zu  weight %.0f  served %d (ideal %.0f)\n", t,
                weights[t], fair.served[t], 2000 * weights[t] / 10.0);
  }
  std::printf("  jain(weighted) %.4f   claims/s %.0f\n", fair.jain,
              fair.claims_per_s);
  {
    json::Object row;
    row["name"] = "fair_share";
    row["tenants"] = static_cast<std::int64_t>(weights.size());
    row["claims"] = static_cast<std::int64_t>(2000);
    row["jain_weighted"] = fair.jain;
    row["claims_per_s"] = fair.claims_per_s;
    for (std::size_t t = 0; t < weights.size(); ++t) {
      row["served_t" + std::to_string(t)] =
          static_cast<std::int64_t>(fair.served[t]);
    }
    json.add(std::move(row));
  }
  if (fair.jain < 0.99) {
    std::printf("FAIL: weighted Jain index %.4f < 0.99\n", fair.jain);
    failed = true;
  }

  const IsolationResult baseline = run_isolation(/*flood=*/false);
  const IsolationResult contended = run_isolation(/*flood=*/true);
  const double ratio =
      baseline.p99_s > 0 ? contended.p99_s / baseline.p99_s : 0.0;
  std::printf(
      "isolation: B p99 %.1fs uncontended, %.1fs under 10x-quota flood "
      "(%.2fx); A rejected %llu, peak in-flight %lld\n",
      baseline.p99_s, contended.p99_s, ratio,
      static_cast<unsigned long long>(contended.rejected),
      static_cast<long long>(contended.peak_in_flight));
  {
    json::Object row;
    row["name"] = "isolation";
    row["baseline_p99_s"] = baseline.p99_s;
    row["contended_p99_s"] = contended.p99_s;
    row["p99_ratio"] = ratio;
    row["flood_rejected"] =
        static_cast<std::int64_t>(contended.rejected);
    row["flood_peak_in_flight"] = contended.peak_in_flight;
    json.add(std::move(row));
  }
  if (!contended.quota_held) {
    std::printf("FAIL: flooding tenant crossed its quota\n");
    failed = true;
  }
  if (contended.rejected == 0) {
    std::printf("FAIL: the flood was never rejected\n");
    failed = true;
  }
  if (ratio > 2.0) {
    std::printf("FAIL: contended p99 %.2fx baseline (> 2x bound)\n", ratio);
    failed = true;
  }

  const AdmissionResult admission = run_admission();
  std::printf("admission: %.0f admit cycles/s, %.0f rejects/s\n",
              admission.admit_cycles_per_s, admission.rejects_per_s);
  {
    json::Object row;
    row["name"] = "admission";
    row["admit_cycles_per_s"] = admission.admit_cycles_per_s;
    row["rejects_per_s"] = admission.rejects_per_s;
    json.add(std::move(row));
  }

  json.write();
  if (failed) {
    std::printf("RESULT: FAIL\n");
    return 1;
  }
  std::printf("RESULT: OK\n");
  return 0;
}

// Tests for the deterministic fault-injection plane (FaultRegistry).
#include <gtest/gtest.h>

#include <vector>

#include "osprey/core/fault.h"
#include "osprey/sim/sim.h"

namespace osprey {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  FaultTest() : faults_(sim_, 42) {}

  sim::Simulation sim_;
  FaultRegistry faults_;
};

TEST_F(FaultTest, UnarmedPointNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(faults_.should_fire("nothing.armed"));
  }
  EXPECT_FALSE(faults_.active("nothing.armed"));
  EXPECT_DOUBLE_EQ(faults_.magnitude("nothing.armed"), 1.0);
  EXPECT_EQ(faults_.checks("nothing.armed"), 100u);
  EXPECT_EQ(faults_.fires("nothing.armed"), 0u);
}

TEST_F(FaultTest, ProbabilityZeroAndOne) {
  faults_.set_probability("always", 1.0);
  faults_.set_probability("never", 0.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(faults_.should_fire("always"));
    EXPECT_FALSE(faults_.should_fire("never"));
  }
  EXPECT_EQ(faults_.fires("always"), 50u);
  EXPECT_EQ(faults_.fires("never"), 0u);
}

TEST_F(FaultTest, ProbabilityIsRoughlyHonored) {
  faults_.set_probability("p30", 0.3);
  int fired = 0;
  for (int i = 0; i < 2000; ++i) {
    if (faults_.should_fire("p30")) ++fired;
  }
  EXPECT_GT(fired, 2000 * 0.3 - 100);
  EXPECT_LT(fired, 2000 * 0.3 + 100);
  EXPECT_EQ(faults_.fires("p30"), static_cast<std::uint64_t>(fired));
}

TEST_F(FaultTest, FailNextConsumesExactly) {
  faults_.fail_next("burst", 3);
  EXPECT_TRUE(faults_.should_fire("burst"));
  EXPECT_TRUE(faults_.should_fire("burst"));
  EXPECT_TRUE(faults_.should_fire("burst"));
  EXPECT_FALSE(faults_.should_fire("burst"));
  // active() is pure: a pending fail_next does not make the point active.
  faults_.fail_next("burst", 1);
  EXPECT_FALSE(faults_.active("burst"));
  EXPECT_TRUE(faults_.should_fire("burst"));
}

TEST_F(FaultTest, ScheduledWindowsFollowTheClock) {
  faults_.add_window("outage", 10.0, 20.0);
  faults_.add_window("outage", 30.0, 35.0);
  EXPECT_FALSE(faults_.active("outage"));  // t = 0
  sim_.schedule_at(15.0, [&] {
    EXPECT_TRUE(faults_.active("outage"));
    EXPECT_TRUE(faults_.should_fire("outage"));
  });
  sim_.schedule_at(20.0, [&] {
    EXPECT_FALSE(faults_.active("outage"));  // [start, end): end excluded
  });
  sim_.schedule_at(32.0, [&] { EXPECT_TRUE(faults_.active("outage")); });
  sim_.schedule_at(40.0, [&] { EXPECT_FALSE(faults_.active("outage")); });
  sim_.run();
}

TEST_F(FaultTest, LatchAndMagnitude) {
  faults_.set_magnitude("net.slow.a|b", 8.0);
  // Magnitude only applies while active.
  EXPECT_DOUBLE_EQ(faults_.magnitude("net.slow.a|b"), 1.0);
  faults_.set_active("net.slow.a|b", true);
  EXPECT_DOUBLE_EQ(faults_.magnitude("net.slow.a|b"), 8.0);
  EXPECT_TRUE(faults_.should_fire("net.slow.a|b"));  // active => fires
  faults_.set_active("net.slow.a|b", false);
  EXPECT_DOUBLE_EQ(faults_.magnitude("net.slow.a|b"), 1.0);
}

TEST_F(FaultTest, ClearDisarmsButKeepsStatistics) {
  faults_.set_probability("x", 1.0);
  EXPECT_TRUE(faults_.should_fire("x"));
  faults_.clear("x");
  EXPECT_FALSE(faults_.should_fire("x"));
  EXPECT_EQ(faults_.checks("x"), 2u);
  EXPECT_EQ(faults_.fires("x"), 1u);

  faults_.set_active("y", true);
  faults_.clear_all();
  EXPECT_FALSE(faults_.active("y"));
  EXPECT_FALSE(faults_.should_fire("x"));
}

TEST_F(FaultTest, PerPointStreamsAreIndependentOfInterleaving) {
  // Querying other points between draws must not change a point's sequence:
  // streams are seeded per (registry seed, point name), not shared.
  sim::Simulation sim2;
  FaultRegistry isolated(sim2, 42);
  std::vector<bool> alone;
  isolated.set_probability("target", 0.5);
  for (int i = 0; i < 64; ++i) alone.push_back(isolated.should_fire("target"));

  faults_.set_probability("target", 0.5);
  faults_.set_probability("noise", 0.5);
  std::vector<bool> interleaved;
  for (int i = 0; i < 64; ++i) {
    (void)faults_.should_fire("noise");
    interleaved.push_back(faults_.should_fire("target"));
    (void)faults_.should_fire("noise");
  }
  EXPECT_EQ(alone, interleaved);
}

TEST_F(FaultTest, SameSeedReplaysIdentically) {
  sim::Simulation sim2;
  FaultRegistry replay(sim2, 42);
  faults_.set_probability("p", 0.37);
  replay.set_probability("p", 0.37);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(faults_.should_fire("p"), replay.should_fire("p")) << "draw " << i;
  }
  sim::Simulation sim3;
  FaultRegistry other_seed(sim3, 43);
  other_seed.set_probability("p", 0.37);
  int disagreements = 0;
  sim::Simulation sim4;
  FaultRegistry base(sim4, 42);
  base.set_probability("p", 0.37);
  for (int i = 0; i < 256; ++i) {
    if (base.should_fire("p") != other_seed.should_fire("p")) ++disagreements;
  }
  EXPECT_GT(disagreements, 0);  // a different seed is a different scenario
}

TEST_F(FaultTest, ReportListsEveryTouchedPoint) {
  faults_.set_probability("a", 1.0);
  (void)faults_.should_fire("a");
  (void)faults_.should_fire("b");
  auto names = faults_.points();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  std::string report = faults_.report();
  EXPECT_NE(report.find("a: 1/1"), std::string::npos);
  EXPECT_NE(report.find("b: 0/1"), std::string::npos);
}

TEST(FaultPointNames, CanonicalSpellings) {
  EXPECT_EQ(fault_point::endpoint("theta-ep"), "faas.endpoint.theta-ep");
  EXPECT_EQ(fault_point::endpoint_offline("theta-ep"),
            "faas.endpoint.theta-ep.offline");
  // Link points are order-insensitive: both spellings name one point.
  EXPECT_EQ(fault_point::partition("bebop", "theta"),
            fault_point::partition("theta", "bebop"));
  EXPECT_EQ(fault_point::partition("bebop", "theta"), "net.partition.bebop|theta");
  EXPECT_EQ(fault_point::slow_link("theta", "bebop"), "net.slow.bebop|theta");
  EXPECT_EQ(fault_point::pool_stall("p1"), "pool.p1.stall");
  EXPECT_STREQ(fault_point::transfer_corrupt(), "transfer.corrupt");
  EXPECT_STREQ(fault_point::transfer_abort(), "transfer.abort");
}

}  // namespace
}  // namespace osprey

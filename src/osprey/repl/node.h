// A replica of the EMEWS task database: one member of a ReplicationGroup.
//
// The paper's EMEWS service (§IV-C) is a single resource-local process; a
// ReplicaNode is that process made replaceable. Every node owns its own
// database, its own simulated log device, and a role:
//
//  - The *leader* runs a WalManager attached to its database, so every
//    committed transaction lands in its log; the group's shipper tails that
//    log with a WalCursor and fans batches out to the followers.
//  - A *follower* holds no WalManager. It bootstraps from a leader snapshot
//    (writing the snapshot to its own device as a checkpoint segment) and
//    then redo-applies shipped batches via apply_batch(), appending the raw
//    frames to its own device as it goes. The follower's device is therefore
//    always a self-sufficient log: recover() rebuilds the follower state,
//    and promote() opens a WalManager on it to continue the *same* log as
//    the new leader — LSNs stay dense across a failover.
//
// Epoch fencing: each node tracks the highest leadership epoch it has seen
// (from bootstrap, promote(), or replicated kEpoch records). apply_batch()
// rejects batches stamped with an older epoch with kConflict, which is how a
// deposed leader's straggler batches die.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/core/fault.h"
#include "osprey/db/database.h"
#include "osprey/db/wal.h"
#include "osprey/eqsql/db_api.h"
#include "osprey/json/json.h"
#include "osprey/net/network.h"

namespace osprey::repl {

using Epoch = std::uint64_t;

/// One LSN-ordered batch of committed WAL records in flight from the leader
/// to a follower. `records` / `frames` come straight from a CursorBatch;
/// `epoch` is stamped by the shipper at send time so a deposed leader's
/// stragglers carry their stale epoch with them.
struct ShipBatch {
  Epoch epoch = 0;
  db::wal::Lsn first_lsn = 0;
  db::wal::Lsn last_lsn = 0;
  std::size_t transactions = 0;
  std::vector<db::wal::Record> records;
  std::string frames;
};

class ReplicaNode {
 public:
  enum class Role { kLeader, kFollower };

  /// A node at `site` with a fresh empty database and log device. `faults`
  /// (optional) is threaded into the device so WAL fault points also apply
  /// to replica storage.
  ReplicaNode(std::string id, net::SiteName site, const Clock& clock,
              FaultRegistry* faults = nullptr);
  ~ReplicaNode();

  // --- lifecycle -------------------------------------------------------------

  /// Become the founding leader at `epoch`: open a WAL on the device, attach
  /// it, create the EMEWS schema (logged), and log the epoch.
  Status init_leader(Epoch epoch, db::wal::WalOptions options = {});

  /// Bootstrap as a follower from a leader snapshot consistent as of
  /// `snapshot_lsn`: restore the database, persist the snapshot to the own
  /// device as a checkpoint segment, and start accepting batches from
  /// `snapshot_lsn + 1`.
  Status bootstrap(const json::Value& snapshot, db::wal::Lsn snapshot_lsn,
                   Epoch epoch);

  /// Redo-apply a shipped batch. Returns the node's applied LSN afterwards.
  ///  - kUnavailable: node dead or not bootstrapped.
  ///  - kConflict: batch epoch older than the node's (fenced straggler).
  ///  - kInvalidArgument: LSN gap (batch starts past applied+1); the shipper
  ///    must resync its cursor. Duplicate batches (last_lsn <= applied) are
  ///    acknowledged as no-ops — idempotency by LSN.
  Result<db::wal::Lsn> apply_batch(const ShipBatch& batch);

  /// Failover: continue this node's own log as the new leader under
  /// `new_epoch`. Opens a WalManager positioned after applied_lsn, attaches
  /// it, and durably logs the epoch record that fences the old leader.
  Status promote(Epoch new_epoch, db::wal::WalOptions options = {});

  /// Rebuild a fresh or crashed node from its own device — the follower
  /// restart path, proving the follower log is self-sufficient. Replaces the
  /// in-memory database (outstanding EQSQL handles are invalidated), restores
  /// the checkpoint + committed tail, and re-learns the epoch from the
  /// replicated kEpoch records.
  Result<db::wal::RecoveryInfo> recover_from_disk();

  /// Power loss: volatile device cache is lost, node stops serving.
  void crash();
  /// Graceful stop: flush the log (leader) / sync the device (follower) so
  /// a subsequent bootstrap or recovery sees every acknowledged write.
  Status stop();

  // --- accessors -------------------------------------------------------------

  const std::string& node_id() const { return id_; }
  const net::SiteName& site() const { return site_; }
  Role role() const;
  Epoch epoch() const;
  bool alive() const;
  bool bootstrapped() const;
  /// Highest LSN reflected in the database (followers: last applied; the
  /// leader reports its log position).
  db::wal::Lsn applied_lsn() const;

  db::Database& database() { return *db_; }
  db::wal::LogDevice& device() { return *device_; }
  db::wal::SimLogDevice& sim_device() { return *device_; }
  std::shared_ptr<db::wal::SimDisk> disk() { return disk_; }
  db::wal::WalManager* wal() { return wal_.get(); }

  /// A fresh EQSQL handle onto this node's database. Each concurrent caller
  /// needs its own handle (they share the database but not statement state).
  /// Route a custom sleeper or notifier in via EQSQL::set_wait_routing.
  Result<std::unique_ptr<eqsql::EQSQL>> connect();

 private:
  Status append_frames_locked(const ShipBatch& batch);

  const std::string id_;
  const net::SiteName site_;
  const Clock& clock_;
  FaultRegistry* faults_;

  mutable std::mutex mutex_;
  std::shared_ptr<db::wal::SimDisk> disk_;
  std::unique_ptr<db::wal::SimLogDevice> device_;
  std::unique_ptr<db::Database> db_;
  std::unique_ptr<db::wal::WalManager> wal_;  // leader only
  Role role_ = Role::kFollower;
  Epoch epoch_ = 0;
  db::wal::Lsn applied_lsn_ = 0;
  bool alive_ = true;
  bool bootstrapped_ = false;

  // Follower-side log geometry: the segment shipped frames append to.
  std::string segment_;
  std::uint64_t segment_size_ = 0;
  db::wal::WalOptions log_options_;
};

}  // namespace osprey::repl

#include "osprey/eqsql/service.h"

#include <map>
#include <utility>

#include "osprey/db/dump.h"
#include "osprey/db/sql_exec.h"
#include "osprey/eqsql/schema.h"
#include "osprey/storage/manifest.h"

namespace osprey::eqsql {

EmewsService::EmewsService(const Clock& clock) : clock_(clock) {}

EmewsService::~EmewsService() {
  // The database outlives the wal_ and notifier_ members (declaration
  // order), so unwind the observer chain before the managers go away:
  // notifier first (it wraps the WAL), then the WAL.
  if (notifier_) notifier_->detach();
  if (wal_) wal_->detach();
}

Status EmewsService::start() {
  if (running_) {
    return Status(ErrorCode::kConflict, "EMEWS service already running");
  }
  if (!schema_created_) {
    db::sql::Connection conn(db_);
    Status s = create_schema(conn);
    if (!s.is_ok()) return s;
    schema_created_ = true;
  }
  running_ = true;
  return Status::ok();
}

Status EmewsService::stop() {
  if (!running_) {
    return Status(ErrorCode::kConflict, "EMEWS service not running");
  }
  // Flush before flipping the flag: with group commit a stopping service may
  // hold acknowledged-but-unsynced transactions, and a replica bootstrapping
  // from this node's device must see every acknowledged write — a graceful
  // stop must leave no volatile tail behind (crash() may; that's what
  // recovery is for).
  if (wal_) {
    Status flushed = wal_->flush();
    if (!flushed.is_ok()) return flushed;
  }
  running_ = false;
  return Status::ok();
}

Result<std::unique_ptr<EQSQL>> EmewsService::connect(Sleeper sleeper) {
  if (!running_) {
    return Error(ErrorCode::kUnavailable, "EMEWS service not running");
  }
  auto api = std::make_unique<EQSQL>(db_, clock_);
  WaitRouting routing;
  routing.sleeper = std::move(sleeper);
  routing.notifier = notifier_.get();
  api->set_wait_routing(std::move(routing));
  // With tenancy on, even untenanted handles share the registry: their
  // claims go through the fair scheduler and their reports feed the
  // accounting for whichever tenant owns the task.
  if (tenants_) api->set_tenant_context(tenants_.get());
  return api;
}

Result<std::unique_ptr<EQSQL>> EmewsService::connect_as(const TenantId& tenant,
                                                        Sleeper sleeper) {
  if (tenant.empty()) return connect(std::move(sleeper));
  if (!tenants_) {
    return Error(ErrorCode::kUnavailable,
                 "tenancy not enabled on this service");
  }
  if (!tenants_->registered(tenant)) {
    return Error(ErrorCode::kPermissionDenied,
                 "unknown tenant '" + tenant + "'");
  }
  Result<std::unique_ptr<EQSQL>> api = connect(std::move(sleeper));
  if (!api.ok()) return api;
  api.value()->set_tenant_context(tenants_.get(), tenant);
  return api;
}

Status EmewsService::enable_tenants() {
  if (tenants_) return Status::ok();
  tenants_ = std::make_unique<tenant::TenantRegistry>();
  return sync_tenant_depths();
}

Status EmewsService::sync_tenant_depths() {
  if (!tenants_ || !schema_created_) return Status::ok();
  db::sql::Connection conn(db_);
  auto live = conn.execute(
      "SELECT tenant, eq_status FROM eq_tasks "
      "WHERE eq_status IN ('queued', 'running')");
  if (!live.ok()) return live.error();
  std::map<TenantId, std::pair<std::int64_t, std::int64_t>> depths;
  for (const db::Row& row : live.value().rows) {
    auto& [queued, running] =
        depths[row[0].is_null() ? TenantId{} : row[0].as_text()];
    (row[1].as_text() == "queued" ? queued : running) += 1;
  }
  for (const auto& [tenant, d] : depths) {
    tenants_->sync_depths(tenant, d.first, d.second);
  }
  return Status::ok();
}

Status EmewsService::enable_notifications() {
  if (notifier_) return Status::ok();
  notifier_ = std::make_unique<Notifier>();
  notifier_->attach(db_);
  return Status::ok();
}

Result<ServiceStats> EmewsService::stats() {
  if (!running_) {
    return Error(ErrorCode::kUnavailable, "EMEWS service not running");
  }
  db::sql::Connection conn(db_);
  ServiceStats stats;
  struct CountQuery {
    const char* sql;
    std::int64_t* slot;
  };
  const CountQuery queries[] = {
      {"SELECT COUNT(*) FROM eq_tasks", &stats.tasks_total},
      {"SELECT COUNT(*) FROM eq_tasks WHERE eq_status = 'queued'",
       &stats.tasks_queued},
      {"SELECT COUNT(*) FROM eq_tasks WHERE eq_status = 'running'",
       &stats.tasks_running},
      {"SELECT COUNT(*) FROM eq_tasks WHERE eq_status = 'complete'",
       &stats.tasks_complete},
      {"SELECT COUNT(*) FROM eq_tasks WHERE eq_status = 'canceled'",
       &stats.tasks_canceled},
      {"SELECT COUNT(*) FROM eq_output_queue", &stats.output_queue_depth},
      {"SELECT COUNT(*) FROM eq_input_queue", &stats.input_queue_depth},
  };
  for (const CountQuery& q : queries) {
    auto r = conn.execute(q.sql);
    if (!r.ok()) return r.error();
    *q.slot = r.value().rows[0][0].as_int();
  }
  return stats;
}

json::Value EmewsService::checkpoint() const {
  return db::dump_database(db_);
}

Status EmewsService::restore(const json::Value& snapshot) {
  if (schema_created_ || running_) {
    return Status(ErrorCode::kConflict,
                  "restore requires a fresh service instance");
  }
  Status s = (storage_ && storage::is_manifest(snapshot))
                 ? storage_->restore_manifest(db_, snapshot)
                 : db::restore_database(db_, snapshot);
  if (!s.is_ok()) return s;
  if (!schema_exists(db_)) {
    return Status(ErrorCode::kInvalidArgument,
                  "snapshot does not contain an EMEWS schema");
  }
  schema_created_ = true;
  running_ = true;
  // The snapshot may hold tasks that were running on the old resource; their
  // pools are gone, so put them back in the output queue for the new one.
  EQSQL eq(db_, clock_);
  Result<std::size_t> requeued = eq.requeue_running_tasks();
  if (!requeued.ok()) return requeued.error();
  recovered_requeues_ = requeued.value();
  // Tenancy enabled before the restore: the registry's depths predate the
  // snapshot, so rebuild them from the restored table.
  return sync_tenant_depths();
}

Status EmewsService::enable_storage(db::wal::LogDevice& device,
                                    storage::StorageOptions options,
                                    FaultRegistry* faults) {
  if (storage_) {
    return Status(ErrorCode::kConflict, "storage engine already enabled");
  }
  storage_ = std::make_unique<storage::StorageEngine>(device, options, faults);
  Status attached = storage_->attach(db_);
  if (!attached.is_ok()) {
    storage_.reset();
    return attached;
  }
  // enable_storage and enable_wal compose in either order; whichever comes
  // second completes the checkpoint wiring.
  if (wal_) storage_->install(*wal_);
  return Status::ok();
}

Status EmewsService::enable_wal(db::wal::LogDevice& device,
                                db::wal::WalOptions options) {
  if (wal_) {
    return Status(ErrorCode::kConflict, "WAL already enabled");
  }
  auto manager = std::make_unique<db::wal::WalManager>(device, options);
  Status opened = manager->open();
  if (!opened.is_ok()) return opened;
  // WalManager::attach takes the observer slot unconditionally. If the
  // notification plane is already installed, step it aside and re-wrap it
  // around the WAL afterward, preserving the chain notifier -> wal.
  if (notifier_) notifier_->detach();
  manager->attach(db_);
  if (notifier_) notifier_->attach(db_);
  wal_ = std::move(manager);
  if (storage_) storage_->install(*wal_);
  if (!db_.table_names().empty()) {
    // State created before the log existed (enable_wal on a live campaign):
    // checkpoint it, otherwise recovery would replay onto nothing.
    Result<db::wal::Lsn> ckpt = wal_->checkpoint(db_);
    if (!ckpt.ok()) {
      if (notifier_) notifier_->detach();
      wal_->detach();
      wal_.reset();
      if (notifier_) notifier_->attach(db_);
      return ckpt.error();
    }
  }
  return Status::ok();
}

Result<db::wal::Lsn> EmewsService::checkpoint_durable() {
  if (!wal_) {
    return Error(ErrorCode::kUnavailable, "WAL not enabled on this service");
  }
  return wal_->checkpoint(db_);
}

Result<db::wal::RecoveryInfo> EmewsService::recover_from_wal(
    db::wal::LogDevice& device, db::wal::WalOptions options) {
  if (schema_created_ || running_ || wal_) {
    return Error(ErrorCode::kConflict,
                 "recover_from_wal requires a fresh service instance");
  }
  if (storage_ && &storage_->device() != &device) {
    return Error(ErrorCode::kInvalidArgument,
                 "recover_from_wal: storage engine is bound to a different "
                 "device than the log being recovered");
  }
  Result<db::wal::RecoveryInfo> info =
      storage_ ? storage_->recover(db_) : db::wal::recover(device, db_);
  if (!info.ok()) return info;
  if (!schema_exists(db_)) {
    return Error(ErrorCode::kInvalidArgument,
                 "log does not contain an EMEWS schema");
  }
  auto manager = std::make_unique<db::wal::WalManager>(device, options);
  Status opened = manager->open();
  if (!opened.is_ok()) return opened.error();
  if (notifier_) notifier_->detach();
  manager->attach(db_);
  if (notifier_) notifier_->attach(db_);
  wal_ = std::move(manager);
  if (storage_) storage_->install(*wal_);
  schema_created_ = true;
  running_ = true;
  // Requeue after the log is attached: the lease release is itself a
  // committed, durable transaction, so a crash during recovery replays it.
  EQSQL eq(db_, clock_);
  Result<std::size_t> requeued = eq.requeue_running_tasks();
  if (!requeued.ok()) return requeued.error();
  recovered_requeues_ = requeued.value();
  Status synced = sync_tenant_depths();
  if (!synced.is_ok()) return synced.error();
  return info;
}

}  // namespace osprey::eqsql

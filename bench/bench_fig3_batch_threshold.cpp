// Reproduces Figure 3: "Number of tasks executed by a worker pool for
// different batch sizes and thresholds."
//
// Paper setup (§VI): 750 Ackley tasks with lognormal runtimes, one worker
// pool with 33 workers on a 36-core Bebop node, three query configurations:
//   top:    batch=50, threshold=1   (oversubscribed -> in-pool task cache)
//   middle: batch=33, threshold=1   (fetch-per-completion -> dips)
//   bottom: batch=33, threshold=15  (deficit gate -> saw-tooth idling)
//
// Expected shape (not absolute numbers): utilization(50,1) > utilization
// (33,1) > utilization(33,15), and the (33,15) trace shows deep drops. The
// bench prints each concurrency trace as a resampled series plus summary
// statistics, then checks the shape criteria.
#include <cstdio>
#include <memory>
#include <vector>

#include "osprey/eqsql/schema.h"
#include "osprey/json/json.h"
#include "osprey/me/sampler.h"
#include "osprey/me/task_runners.h"
#include "osprey/pool/sim_pool.h"

using namespace osprey;

namespace {

constexpr WorkType kWork = 1;
constexpr int kTasks = 750;
constexpr int kWorkers = 33;
constexpr double kMedianRuntime = 20.0;  // seconds, lognormal sigma 0.5
constexpr double kQueryCost = 0.6;       // the "more costly database query"

struct RunResult {
  pool::ConcurrencyTrace trace;
  double makespan = 0;
  std::uint64_t queries = 0;
  std::uint64_t cache_hits = 0;
  double mean_concurrency = 0;
  double full_fraction = 0;  // fraction of steady state with all 33 busy
  int max_drop = 0;
  int max_rise = 0;
};

RunResult run_configuration(int batch, int threshold) {
  sim::Simulation sim;
  db::Database db;
  db::sql::Connection conn(db);
  if (!eqsql::create_schema(conn).is_ok()) std::abort();
  eqsql::EQSQL api(db, sim);

  Rng rng(2023);
  auto samples = me::uniform_samples(rng, kTasks, 4, -32.768, 32.768);
  std::vector<std::string> payloads;
  payloads.reserve(samples.size());
  for (const auto& p : samples) payloads.push_back(json::array_of(p).dump());
  if (!api.submit_tasks("fig3", kWork, payloads).ok()) std::abort();

  pool::SimPoolConfig config;
  config.name = "pool";
  config.work_type = kWork;
  config.num_workers = kWorkers;
  config.batch_size = batch;
  config.threshold = threshold;
  config.query_cost = kQueryCost;
  config.query_jitter = 0.15;
  config.poll_interval = 0.5;
  config.idle_shutdown = 10.0;
  pool::SimWorkerPool pool(sim, api, config, me::ackley_sim_runner(
                                                 kMedianRuntime, 0.5), 7);
  if (!pool.start().is_ok()) std::abort();
  sim.run();

  RunResult result;
  result.trace = pool.trace();
  result.queries = pool.queries_issued();
  result.cache_hits = pool.cache_hits();
  // Makespan: last time the trace leaves zero.
  const auto& points = result.trace.points();
  for (auto it = points.rbegin(); it != points.rend(); ++it) {
    if (it->running > 0) {
      result.makespan = it->time;
      break;
    }
  }
  // Steady state: skip ramp-up and drain.
  double t0 = 30.0;
  double t1 = result.makespan * 0.85;
  result.mean_concurrency = result.trace.mean_concurrency(t0, t1);
  result.full_fraction = result.trace.fraction_at_least(kWorkers, t0, t1);
  result.max_drop = result.trace.max_drop();
  result.max_rise = result.trace.max_rise();
  return result;
}

void print_series(const char* label, const RunResult& r, double horizon) {
  std::printf("\n%s\n", label);
  std::printf("  concurrency (1 char per 10 s, 0-9 ~ 0-%d running, '.'=idle):\n  ",
              kWorkers);
  std::printf("%s\n", r.trace.sparkline(0, horizon, 10.0, kWorkers).c_str());
  std::printf("  t(s):  ");
  for (int t = 0; t <= static_cast<int>(horizon); t += 60) {
    std::printf("%-6d", t);
  }
  std::printf("\n");
  std::printf("  mean running (steady state): %5.2f / %d  (utilization %.1f%%)\n",
              r.mean_concurrency, kWorkers, 100.0 * r.mean_concurrency / kWorkers);
  std::printf("  time at full %d workers:      %.1f%%\n", kWorkers,
              100.0 * r.full_fraction);
  std::printf("  max refill jump (saw-tooth):  %d tasks\n", r.max_rise);
  std::printf("  output-queue queries issued:  %llu\n",
              static_cast<unsigned long long>(r.queries));
  std::printf("  starts served from the cache: %llu\n",
              static_cast<unsigned long long>(r.cache_hits));
  std::printf("  makespan:                     %.0f s\n", r.makespan);
}

}  // namespace

int main() {
  std::printf("=== Figure 3: worker-pool concurrency vs (batch size, threshold) ===\n");
  std::printf("750 Ackley tasks, 33 workers, lognormal runtimes (median %.0fs), "
              "query cost %.1fs\n", kMedianRuntime, kQueryCost);

  RunResult top = run_configuration(50, 1);
  RunResult middle = run_configuration(33, 1);
  RunResult bottom = run_configuration(33, 15);
  double horizon = std::max({top.makespan, middle.makespan, bottom.makespan});

  print_series("[top]    batch=50 threshold=1  (oversubscribed cache)", top,
               horizon);
  print_series("[middle] batch=33 threshold=1  (fetch per completion)", middle,
               horizon);
  print_series("[bottom] batch=33 threshold=15 (saw-tooth)", bottom, horizon);

  std::printf("\n--- shape checks vs the paper ---\n");
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok) ++failures;
  };
  check(top.mean_concurrency > middle.mean_concurrency,
        "batch 50/thr 1 utilizes workers better than batch 33/thr 1");
  check(middle.mean_concurrency > bottom.mean_concurrency,
        "batch 33/thr 1 utilizes workers better than batch 33/thr 15");
  check(top.full_fraction > 0.9,
        "oversubscribed pool keeps all 33 workers busy >90% of steady state");
  check(bottom.max_rise >= middle.max_rise,
        "threshold 15 refills are at least as large as threshold 1 refills");
  check(bottom.max_rise >= 10,
        "threshold 15 saw-tooth refills many workers at once (deficit >= 15)");
  check(top.cache_hits > 600,
        "the oversubscribed pool serves nearly every start from its cache "
        "('quickly pulled without the more costly database query')");
  check(middle.cache_hits < top.cache_hits / 10,
        "batch == workers has (almost) no cache to pull from");
  check(bottom.queries < middle.queries,
        "the threshold gate reduces database queries");
  return failures == 0 ? 0 : 1;
}

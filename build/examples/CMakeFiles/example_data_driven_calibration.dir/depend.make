# Empty dependencies file for example_data_driven_calibration.
# This may be replaced when dependencies are built.

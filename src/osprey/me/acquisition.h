// Acquisition strategies for surrogate-guided reprioritization.
//
// §VI reprioritizes by predicted mean ("those more likely to find an
// optimal result according to the GPR"). The paper's own motivation cites
// surrogate-based multi-objective/Bayesian optimization [2][8] (Binois,
// Collier, Ozik), where acquisition functions balancing exploitation and
// exploration — expected improvement, confidence bounds — replace the plain
// mean. This module provides those as drop-in alternatives for
// promising_first_priorities, plus the ablation hook the acquisition bench
// sweeps.
#pragma once

#include "osprey/me/gpr.h"

namespace osprey::me {

enum class Acquisition {
  /// Rank by posterior mean (lower = better) — the paper's §VI rule.
  kMean,
  /// Expected improvement over the incumbent best (higher = better):
  /// EI(x) = (f* - mu) Phi(z) + sigma phi(z), z = (f* - mu) / sigma.
  kExpectedImprovement,
  /// Lower confidence bound (lower = better): mu - beta * sigma.
  kLowerConfidenceBound,
  /// Portfolio (ref [8], Binois/Collier/Ozik "A portfolio approach to
  /// massively parallel Bayesian optimization"): interleave the preference
  /// orders of mean, EI, and LCB round-robin, so the top of the queue mixes
  /// exploitation and exploration candidates.
  kPortfolio,
};

const char* acquisition_name(Acquisition a);

struct AcquisitionConfig {
  Acquisition kind = Acquisition::kMean;
  /// Exploration weight for kLowerConfidenceBound.
  double beta = 2.0;
  /// Incumbent best objective for kExpectedImprovement.
  double incumbent = 0.0;
};

/// Scalar acquisition score of one posterior prediction. For kMean and
/// kLowerConfidenceBound, lower is better; for kExpectedImprovement, higher
/// is better (the ranking helper accounts for the direction).
double acquisition_score(const Prediction& prediction,
                         const AcquisitionConfig& config);

/// Generalization of promising_first_priorities: rank `remaining` under the
/// chosen acquisition; the most promising point gets the highest priority
/// (ranks 1..n, as in §VI).
std::vector<Priority> acquisition_priorities(const GPR& model,
                                             const std::vector<Point>& remaining,
                                             const AcquisitionConfig& config);

/// Standard normal CDF / PDF (exposed for tests).
double normal_cdf(double z);
double normal_pdf(double z);

}  // namespace osprey::me

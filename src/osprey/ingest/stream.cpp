#include "osprey/ingest/stream.h"

#include <algorithm>
#include <cmath>

namespace osprey::ingest {

LaggedSource::LaggedSource(std::vector<double> truth, Config config)
    : truth_(std::move(truth)), config_(std::move(config)) {}

Publication LaggedSource::publish(int day, TimePoint now) const {
  Publication batch;
  batch.published_at = now;
  batch.source = config_.name;
  if (day < 0 || day >= days()) return batch;
  // Revise the trailing window [day - lag_days + 1, day]; day d published on
  // day p has revision (p - d), completeness converging geometrically.
  int first = std::max(0, day - config_.lag_days + 1);
  for (int d = first; d <= day; ++d) {
    int revision = day - d;
    double completeness =
        1.0 - (1.0 - config_.initial_completeness) *
                  std::pow(config_.convergence, revision);
    Record record;
    record.day = d;
    record.revision = revision;
    record.value = std::floor(truth_[static_cast<std::size_t>(d)] * completeness);
    batch.records.push_back(record);
  }
  return batch;
}

Status StreamIngestor::ingest(const Publication& publication) {
  if (publication.source.empty()) {
    return Status(ErrorCode::kInvalidArgument, "publication without a source");
  }
  for (const Record& record : publication.records) {
    auto& history = by_day_[record.day];
    if (!history.empty() && record.revision <= history.back().revision) {
      ++stale_dropped_;
      continue;
    }
    history.push_back(record);
  }
  ++publications_;
  last_ingest_at_ = clock_->now();
  return Status::ok();
}

std::vector<double> StreamIngestor::current_view() const {
  if (by_day_.empty()) return {};
  int last_day = by_day_.rbegin()->first;
  std::vector<double> view(static_cast<std::size_t>(last_day) + 1, 0.0);
  for (const auto& [day, history] : by_day_) {
    view[static_cast<std::size_t>(day)] = history.back().value;
  }
  return view;
}

std::vector<Record> StreamIngestor::history(int day) const {
  auto it = by_day_.find(day);
  return it == by_day_.end() ? std::vector<Record>{} : it->second;
}

std::vector<int> StreamIngestor::revised_days() const {
  std::vector<int> days;
  for (const auto& [day, history] : by_day_) {
    for (std::size_t i = 1; i < history.size(); ++i) {
      if (history[i].value != history[0].value) {
        days.push_back(day);
        break;
      }
    }
  }
  return days;
}

}  // namespace osprey::ingest

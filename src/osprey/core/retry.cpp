#include "osprey/core/retry.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "osprey/obs/telemetry.h"

namespace osprey {

Duration RetryPolicy::backoff(int failures) const {
  if (failures <= 0 || initial_backoff <= 0.0) return std::max(initial_backoff, 0.0);
  double base = initial_backoff * std::pow(multiplier, failures - 1);
  if (max_backoff > 0.0) base = std::min(base, max_backoff);
  return base;
}

Duration RetryPolicy::backoff(int failures, Rng& rng) const {
  if (failures <= 0 || initial_backoff <= 0.0) return std::max(initial_backoff, 0.0);
  double base = initial_backoff * std::pow(multiplier, failures - 1);
  if (max_backoff > 0.0 && base >= max_backoff) {
    // Plateaued: return the cap exactly, consuming no randomness, so the
    // delay sequence stays monotone once it reaches the cap.
    return max_backoff;
  }
  if (jitter > 0.0) base *= 1.0 + jitter * rng.uniform();
  if (max_backoff > 0.0) base = std::min(base, max_backoff);
  return base;
}

Status RetryPolicy::validate() const {
  if (max_attempts < 1) {
    return Status(ErrorCode::kInvalidArgument, "max_attempts must be >= 1");
  }
  if (initial_backoff < 0.0 || max_backoff < 0.0 || budget < 0.0) {
    return Status(ErrorCode::kInvalidArgument, "backoff durations must be >= 0");
  }
  if (multiplier < 1.0) {
    return Status(ErrorCode::kInvalidArgument, "multiplier must be >= 1");
  }
  if (jitter < 0.0 || jitter > multiplier - 1.0) {
    return Status(ErrorCode::kInvalidArgument,
                  "jitter must be in [0, multiplier - 1] to keep backoff "
                  "monotone non-decreasing");
  }
  return Status::ok();
}

RetryState::RetryState(RetryPolicy policy, std::uint64_t seed,
                       std::string component)
    : policy_(policy), rng_(seed), component_(std::move(component)) {}

bool RetryState::next_delay(Duration* delay) {
  ++failures_;
  if (failures_ >= policy_.max_attempts) return false;
  Duration d = policy_.jitter > 0.0 ? policy_.backoff(failures_, rng_)
                                    : policy_.backoff(failures_);
  if (policy_.budget > 0.0 && waited_ + d > policy_.budget) return false;
  waited_ += d;
  trace_.push_back(d);
  if (delay) *delay = d;
  if (!component_.empty() && obs::enabled()) {
    obs::telemetry()
        .metrics
        .counter("osprey_retry_attempts_total", {{"component", component_}})
        .inc();
  }
  return true;
}

Status retry_call(const RetryPolicy& policy, std::uint64_t seed,
                  const std::function<Status()>& op,
                  const std::function<void(Duration)>& sleep,
                  const OnRetry& on_retry, std::string component) {
  RetryState state(policy, seed, std::move(component));
  while (true) {
    Status status = op();
    if (status.is_ok()) return status;
    if (status.code() != ErrorCode::kUnavailable &&
        status.code() != ErrorCode::kTimeout) {
      return status;  // non-retryable
    }
    Duration delay = 0.0;
    if (!state.next_delay(&delay)) return status;
    if (on_retry) on_retry(state.failures(), delay);
    if (delay > 0.0 && sleep) sleep(delay);
  }
}

}  // namespace osprey

// The unified wait API: one WaitSpec for every blocking EQSQL call.
//
// The paper's Listing-1 API threads a (delay, timeout) pair through every
// blocking call, and the first four PRs grew three overlapping knobs around
// it — a poll-cadence struct, a loose Sleeper constructor parameter, and a
// ResultPeeker setter. WaitSpec and WaitRouting collapse those into one
// surface:
//
//   - WaitSpec says *how long* to wait and *how* — commit-driven
//     notifications (see notify.h) with a poll fallback, or pure polling,
//     which preserves the paper's (delay, timeout) contract as the degraded
//     mode for remote and replica paths that have no commit hook.
//   - WaitRouting says *where* the waiting machinery plugs in: the sleeper
//     used by poll-mode waits, the replica-servable result probe, and the
//     Notifier whose commit wakeups end the wait early.
//
// The positional WaitSpec(delay, timeout) constructor keeps the paper's
// `query_result(id, {delay, timeout})` call shape compiling with its exact
// polling behavior.
#pragma once

#include <functional>
#include <string>

#include "osprey/core/error.h"
#include "osprey/core/types.h"
#include "osprey/eqsql/task.h"

namespace osprey::eqsql {

class Notifier;

/// How blocking queries wait between probes (deprecated alias home: this
/// used to live in db_api.h; it is now part of the wait surface).
using Sleeper = std::function<void(Duration)>;

/// Read-only completion probe used by result waits when read routing is
/// configured (see WaitRouting::peeker): returns the result payload if the
/// task is complete, kNotFound ("task not complete") while it is not, and
/// kCanceled for canceled tasks — the same contract as EQSQL::peek_result,
/// but the probe may be served by a read replica.
using ResultPeeker = std::function<Result<std::string>(TaskId)>;

/// How a blocking call should wait.
enum class WaitStrategy {
  /// Notify when the API has a Notifier attached, else poll. The default:
  /// call sites get commit-driven wakeups the moment the notification plane
  /// is enabled, with zero code changes.
  kAuto,
  /// Block on commit-driven wakeups (requires an attached Notifier), with
  /// the poll cadence as a fallback re-check so a missed wakeup degrades to
  /// the old polling latency instead of hanging.
  kNotify,
  /// Pure (delay, timeout) polling — the paper's Listing-1 behavior and the
  /// degraded mode for remote/replica paths with no commit hook.
  kPoll,
};

const char* wait_strategy_name(WaitStrategy s);

/// The one wait knob: strategy + deadline + poll-fallback cadence. Braced
/// `{delay, timeout}` call sites get strategy kPoll via the positional
/// constructor and behave exactly like the paper's polling loop.
struct WaitSpec {
  WaitStrategy strategy = WaitStrategy::kAuto;
  /// Overall deadline; kTimeout on expiry, matching the paper's
  /// {'type':'status','payload':'TIMEOUT'} protocol.
  Duration timeout = 2.0;
  /// Poll cadence: the delay between probes in kPoll mode, and the fallback
  /// re-check slice in kNotify mode (a lost wakeup costs one slice).
  Duration poll_delay = 0.5;
  /// Per-empty-probe delay growth factor (1.0 = fixed delay).
  double poll_backoff = 1.0;
  /// Cap on grown delays; 0 = uncapped (the timeout still bounds waiting).
  Duration poll_max_delay = 0.0;

  WaitSpec() = default;

  /// Positional (delay, timeout[, backoff[, max_delay]]) — the paper's
  /// argument order, so braced `{delay, timeout}` call sites keep compiling
  /// and keep their exact polling behavior.
  WaitSpec(Duration delay, Duration deadline, double backoff = 1.0,
           Duration max_delay = 0.0)
      : strategy(WaitStrategy::kPoll),
        timeout(deadline),
        poll_delay(delay),
        poll_backoff(backoff),
        poll_max_delay(max_delay) {}

  static WaitSpec notify(Duration timeout) {
    WaitSpec spec;
    spec.strategy = WaitStrategy::kNotify;
    spec.timeout = timeout;
    return spec;
  }

  static WaitSpec poll(Duration delay, Duration timeout) {
    WaitSpec spec;
    spec.strategy = WaitStrategy::kPoll;
    spec.poll_delay = delay;
    spec.timeout = timeout;
    return spec;
  }

  /// The strategy this spec resolves to against a (possibly null) notifier:
  /// kAuto picks kNotify when a notifier is attached, else kPoll.
  WaitStrategy resolve(const Notifier* notifier) const {
    if (strategy == WaitStrategy::kPoll) return WaitStrategy::kPoll;
    if (notifier != nullptr) return WaitStrategy::kNotify;
    return WaitStrategy::kPoll;
  }
};

/// Where the waiting machinery plugs in. This replaced the loose Sleeper
/// constructor parameter and the EQSQL::set_result_peeker knob; route all
/// three pieces through EQSQL::set_wait_routing.
struct WaitRouting {
  /// How poll-mode waits sleep. Defaults to a real sleep; the simulation
  /// injects a virtual-time sleeper; tests inject clock-advancing fakes.
  Sleeper sleeper;
  /// Remote/replica-servable result probe for result waits; unset = every
  /// probe runs against the local database (single-node behavior).
  ResultPeeker peeker;
  /// Commit-driven wakeups; nullptr = poll-only (kNotify resolves to kPoll
  /// via WaitSpec::resolve). The notifier must outlive the EQSQL handle.
  Notifier* notifier = nullptr;
};

}  // namespace osprey::eqsql

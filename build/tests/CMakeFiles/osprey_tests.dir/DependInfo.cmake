
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/acquisition_test.cpp" "tests/CMakeFiles/osprey_tests.dir/acquisition_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/acquisition_test.cpp.o.d"
  "/root/repo/tests/capi_test.cpp" "tests/CMakeFiles/osprey_tests.dir/capi_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/capi_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/osprey_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/db_test.cpp" "tests/CMakeFiles/osprey_tests.dir/db_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/db_test.cpp.o.d"
  "/root/repo/tests/epi_test.cpp" "tests/CMakeFiles/osprey_tests.dir/epi_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/epi_test.cpp.o.d"
  "/root/repo/tests/eqsql_test.cpp" "tests/CMakeFiles/osprey_tests.dir/eqsql_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/eqsql_test.cpp.o.d"
  "/root/repo/tests/faas_test.cpp" "tests/CMakeFiles/osprey_tests.dir/faas_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/faas_test.cpp.o.d"
  "/root/repo/tests/ingest_test.cpp" "tests/CMakeFiles/osprey_tests.dir/ingest_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/ingest_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/osprey_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/json_test.cpp" "tests/CMakeFiles/osprey_tests.dir/json_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/json_test.cpp.o.d"
  "/root/repo/tests/me_test.cpp" "tests/CMakeFiles/osprey_tests.dir/me_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/me_test.cpp.o.d"
  "/root/repo/tests/monitor_test.cpp" "tests/CMakeFiles/osprey_tests.dir/monitor_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/monitor_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/osprey_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/pool_test.cpp" "tests/CMakeFiles/osprey_tests.dir/pool_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/pool_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/osprey_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/proxystore_test.cpp" "tests/CMakeFiles/osprey_tests.dir/proxystore_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/proxystore_test.cpp.o.d"
  "/root/repo/tests/remote_test.cpp" "tests/CMakeFiles/osprey_tests.dir/remote_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/remote_test.cpp.o.d"
  "/root/repo/tests/sched_test.cpp" "tests/CMakeFiles/osprey_tests.dir/sched_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/sched_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/osprey_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/sql_test.cpp" "tests/CMakeFiles/osprey_tests.dir/sql_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/sql_test.cpp.o.d"
  "/root/repo/tests/stress_test.cpp" "tests/CMakeFiles/osprey_tests.dir/stress_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/stress_test.cpp.o.d"
  "/root/repo/tests/transfer_test.cpp" "tests/CMakeFiles/osprey_tests.dir/transfer_test.cpp.o" "gcc" "tests/CMakeFiles/osprey_tests.dir/transfer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/osprey.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// The asynchronous task API (§V-B): futures over EMEWS DB tasks.
//
// "A future encapsulates the asynchronous execution of a task... Future
// instances are created and returned when tasks are submitted." The
// collection functions (as_completed, pop_completed, update_priority)
// perform batch operations on the EMEWS DB rather than iterating through
// futures individually — that batching is benchmarked in bench_futures.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "osprey/eqsql/db_api.h"

namespace osprey::eqsql {

/// Handle to an asynchronously executing task. Copyable; copies share the
/// cached result (resolving a future twice does not re-pop the input queue).
class TaskFuture {
 public:
  TaskFuture() = default;
  TaskFuture(EQSQL& api, TaskId task_id, WorkType eq_type);

  TaskId task_id() const { return state_ ? state_->task_id : 0; }
  WorkType eq_type() const { return state_ ? state_->eq_type : 0; }
  bool valid() const { return state_ != nullptr; }

  /// The EQSQL API this future resolves against (nullptr when invalid).
  EQSQL* api() const { return state_ ? state_->api : nullptr; }

  /// Current task status ("query the status ... without waiting").
  Result<TaskStatus> status() const;

  /// True when the task has completed and its result is available (cached
  /// results count as done).
  bool done() const;

  /// Non-blocking result check: the cached result, or the popped result if
  /// the task just completed; kNotFound while still pending.
  Result<std::string> try_result();

  /// Blocking result waiting per `wait` (braced (delay, timeout) call sites
  /// behave unchanged via the positional WaitSpec constructor).
  Result<std::string> result(WaitSpec wait = {});

  /// Cancel the task (no-op if already complete). True when the task was
  /// newly canceled.
  Result<bool> cancel();

  /// Current priority in the output queue.
  Result<Priority> priority() const;

  /// Reprioritize this task relative to others in the output queue.
  Status set_priority(Priority priority);

 private:
  friend Result<std::vector<std::size_t>> as_completed(
      std::vector<TaskFuture>& futures, std::size_t n, WaitSpec wait);

  struct State {
    EQSQL* api = nullptr;
    TaskId task_id = 0;
    WorkType eq_type = 0;
    std::optional<std::string> cached_result;
    bool canceled = false;
  };
  std::shared_ptr<State> state_;
};

/// Wait until `n` of the given futures complete and return their indexes
/// (in completion-discovery order). Futures whose results were already
/// retrieved count immediately. Returns kTimeout if fewer than n complete
/// within `wait.timeout`. Uses one batch DB query per probe, not one per
/// future, and with a notifier routed in blocks on the result channel
/// between probes instead of sleeping a fixed delay. (Paper: as_completed
/// yields futures as they complete.)
Result<std::vector<std::size_t>> as_completed(std::vector<TaskFuture>& futures,
                                              std::size_t n, WaitSpec wait);

/// Deprecated shim: the pre-WaitSpec signature. `timeout` of nullopt means
/// wait forever (the old contract); the probe cadence is the WaitSpec
/// default.
Result<std::vector<std::size_t>> as_completed(
    std::vector<TaskFuture>& futures, std::size_t n,
    std::optional<Duration> timeout = std::nullopt);

/// Pop the first completed future from the list: removes it and returns it.
/// (Paper: pop_completed "returns the first completed Future from a list,
/// removing that Future from the list".)
Result<TaskFuture> pop_completed(std::vector<TaskFuture>& futures,
                                 WaitSpec wait);

/// Deprecated shim: the pre-WaitSpec signature (nullopt = wait forever).
Result<TaskFuture> pop_completed(std::vector<TaskFuture>& futures,
                                 std::optional<Duration> timeout = std::nullopt);

/// Batch-update the priorities of all (still queued) futures in one DB
/// transaction. `priorities` is broadcast (size 1) or element-wise.
Result<std::size_t> update_priority(std::vector<TaskFuture>& futures,
                                    const std::vector<Priority>& priorities);

/// Batch-cancel; returns the number newly canceled.
Result<std::size_t> cancel(std::vector<TaskFuture>& futures);

/// Submit a task and get its future — the paper's EQSQL.submit_task returns
/// a Future in the Python API.
Result<TaskFuture> submit_task_future(EQSQL& api, const ExpId& exp_id,
                                      WorkType eq_type,
                                      const std::string& payload,
                                      Priority priority = 0,
                                      const std::string& tag = "");

/// Batch submission returning futures.
Result<std::vector<TaskFuture>> submit_task_futures(
    EQSQL& api, const ExpId& exp_id, WorkType eq_type,
    const std::vector<std::string>& payloads, Priority priority = 0,
    const std::string& tag = "");

}  // namespace osprey::eqsql

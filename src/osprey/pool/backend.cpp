#include "osprey/pool/backend.h"

namespace osprey::pool {

PoolBackend PoolBackend::local(eqsql::EQSQL& api) {
  PoolBackend backend;
  backend.claim_batched = [&api](WorkType eq_type, int batch_size,
                                 int threshold, int owned,
                                 const PoolId& worker_pool) {
    return api.try_query_tasks_batched(eq_type, batch_size, threshold, owned,
                                       worker_pool);
  };
  backend.report = [&api](TaskId eq_task_id, WorkType eq_type,
                          const std::string& result) {
    return api.report_task(eq_task_id, eq_type, result);
  };
  backend.requeue = [&api](const std::vector<TaskId>& ids) {
    return api.requeue_tasks(ids);
  };
  backend.notifier = [&api]() { return api.notifier(); };
  return backend;
}

}  // namespace osprey::pool

#include "osprey/shard/router.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "osprey/core/retry.h"
#include "osprey/obs/telemetry.h"

namespace osprey::shard {

namespace {

/// Static handles, resolved once (the ReplObs pattern): scatter traffic is
/// hot-path, so per-op registry lookups are not acceptable.
struct ShardObs {
  obs::Counter& scatter_ops;
  obs::Counter& partial_failures;
  obs::Counter& merge_duplicates;
  obs::Counter& fenced_writes;
  obs::Histogram& scatter_fanout;
  obs::Histogram& scatter_latency;
  obs::Histogram& merge_batch;

  ShardObs()
      : scatter_ops(
            obs::telemetry().metrics.counter("osprey_shard_scatter_total")),
        partial_failures(obs::telemetry().metrics.counter(
            "osprey_shard_scatter_partial_failures_total")),
        merge_duplicates(obs::telemetry().metrics.counter(
            "osprey_shard_merge_duplicates_total")),
        fenced_writes(obs::telemetry().metrics.counter(
            "osprey_shard_fenced_writes_total")),
        scatter_fanout(obs::telemetry().metrics.histogram(
            "osprey_shard_scatter_fanout", {}, obs::count_buckets())),
        scatter_latency(obs::telemetry().metrics.histogram(
            "osprey_shard_scatter_latency_seconds")),
        merge_batch(obs::telemetry().metrics.histogram(
            "osprey_shard_merge_batch_ids", {}, obs::count_buckets())) {}
};

ShardObs& shard_obs() {
  static ShardObs obs;
  return obs;
}

/// The poll-delay sequence for blocking loops — the same RetryState the
/// EQSQL blocking calls use, so a sharded wait backs off identically to an
/// unsharded one.
RetryState poll_waiter(const eqsql::WaitSpec& wait) {
  RetryPolicy policy;
  policy.max_attempts = std::numeric_limits<int>::max();
  policy.initial_backoff = wait.poll_delay;
  policy.multiplier = wait.poll_backoff;
  policy.max_backoff = wait.poll_max_delay;
  policy.jitter = 0.0;
  policy.budget = 0.0;
  return RetryState(policy, 0, "shard.poll");
}

/// A shard outage mid-wait is a retryable condition for blocking calls: the
/// probe re-resolves the shard leader next round, so a failover in the wait
/// window costs retries, not an error.
bool retryable(ErrorCode code) { return code == ErrorCode::kUnavailable; }

}  // namespace

// --- UnionWaiter -------------------------------------------------------------

UnionWaiter::UnionWaiter(const std::vector<eqsql::Notifier*>& notifiers,
                         WorkType eq_type) {
  subs_.reserve(notifiers.size());
  for (eqsql::Notifier* n : notifiers) {
    if (n == nullptr) continue;
    subs_.push_back({n, n->on_work(eq_type, [this] { bump(); })});
  }
}

UnionWaiter::UnionWaiter(const std::vector<eqsql::Notifier*>& notifiers) {
  subs_.reserve(notifiers.size());
  for (eqsql::Notifier* n : notifiers) {
    if (n == nullptr) continue;
    subs_.push_back({n, n->on_result([this](TaskId) { bump(); })});
  }
}

UnionWaiter::~UnionWaiter() {
  for (const Subscription& sub : subs_) {
    sub.notifier->remove_listener(sub.id);
  }
}

void UnionWaiter::bump() {
  // Runs on the committing thread (under that shard's database mutex and
  // listener mutex); our mutex is a leaf, so the order stays acyclic.
  version_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mutex_);
  }
  cv_.notify_all();
}

bool UnionWaiter::wait_past(std::uint64_t seen, Duration timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, std::chrono::duration<double>(timeout), [&] {
    return version_.load(std::memory_order_acquire) > seen;
  });
}

// --- ShardRouter -------------------------------------------------------------

ShardRouter::ShardRouter(ShardCluster& cluster, ShardRouterConfig config)
    : cluster_(cluster), config_(std::move(config)) {
  if (!config_.sleeper) config_.sleeper = &RealClock::sleep_for;
  routers_.reserve(cluster_.shard_count());
  for (ShardId s = 0; s < cluster_.shard_count(); ++s) {
    routers_.push_back(
        std::make_unique<repl::ReplRouter>(cluster_.group(s), config_.read));
  }
}

std::vector<ShardId> ShardRouter::rotation() {
  const std::uint32_t count = shard_count();
  const auto start = static_cast<ShardId>(
      rr_.fetch_add(1, std::memory_order_relaxed) % count);
  std::vector<ShardId> order(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    order[i] = static_cast<ShardId>((start + i) % count);
  }
  return order;
}

Result<TaskId> ShardRouter::submit_task(const ExpId& exp_id, WorkType eq_type,
                                        const std::string& payload,
                                        Priority priority,
                                        const std::string& tag) {
  const ShardId s = shard_of(eq_type, exp_id);
  Result<TaskId> local =
      routers_[s]->submit_task(exp_id, eq_type, payload, priority, tag);
  if (!local.ok()) return local;
  return global_task_id(local.value(), s);
}

Result<std::vector<TaskId>> ShardRouter::submit_tasks(
    const ExpId& exp_id, WorkType eq_type,
    const std::vector<std::string>& payloads, Priority priority,
    const std::string& tag) {
  const ShardId s = shard_of(eq_type, exp_id);
  Result<std::vector<TaskId>> locals =
      routers_[s]->submit_tasks(exp_id, eq_type, payloads, priority, tag);
  if (!locals.ok()) return locals;
  std::vector<TaskId> globals;
  globals.reserve(locals.value().size());
  for (TaskId local : locals.value()) {
    globals.push_back(global_task_id(local, s));
  }
  return globals;
}

Result<TaskId> ShardRouter::submit_task_as(const TenantId& tenant,
                                           const ExpId& exp_id,
                                           WorkType eq_type,
                                           const std::string& payload,
                                           Priority priority,
                                           const std::string& tag) {
  const ShardId s = shard_of(eq_type, exp_id);
  Result<TaskId> local = routers_[s]->submit_task_as(tenant, exp_id, eq_type,
                                                     payload, priority, tag);
  if (!local.ok()) return local;
  return global_task_id(local.value(), s);
}

Result<std::vector<TaskId>> ShardRouter::submit_tasks_as(
    const TenantId& tenant, const ExpId& exp_id, WorkType eq_type,
    const std::vector<std::string>& payloads, Priority priority,
    const std::string& tag) {
  const ShardId s = shard_of(eq_type, exp_id);
  Result<std::vector<TaskId>> locals = routers_[s]->submit_tasks_as(
      tenant, exp_id, eq_type, payloads, priority, tag);
  if (!locals.ok()) return locals;
  std::vector<TaskId> globals;
  globals.reserve(locals.value().size());
  for (TaskId local : locals.value()) {
    globals.push_back(global_task_id(local, s));
  }
  return globals;
}

void ShardRouter::set_tenant_context(TenantId tenant) {
  for (ShardId s = 0; s < shard_count(); ++s) {
    routers_[s]->set_tenant_context(cluster_.tenants(s), tenant);
  }
}

std::vector<tenant::TenantStats> ShardRouter::tenant_stats() {
  // Registry snapshots are in-memory — no shard database is touched, so
  // this merge works even while a shard's leader is down.
  std::map<TenantId, tenant::TenantStats> merged;
  for (ShardId s = 0; s < shard_count(); ++s) {
    tenant::TenantRegistry* registry = cluster_.tenants(s);
    if (registry == nullptr) continue;
    for (const tenant::TenantStats& row : registry->stats()) {
      auto [it, inserted] = merged.try_emplace(row.tenant, row);
      if (inserted) continue;
      tenant::TenantStats& sum = it->second;
      sum.queued += row.queued;
      sum.running += row.running;
      sum.admitted += row.admitted;
      sum.rejected += row.rejected;
      sum.claimed += row.claimed;
      sum.completed += row.completed;
      sum.cost_task_seconds += row.cost_task_seconds;
    }
  }
  std::vector<tenant::TenantStats> out;
  out.reserve(merged.size());
  for (auto& [_, row] : merged) out.push_back(std::move(row));
  return out;
}

Status ShardRouter::gather_tasks(WorkType eq_type, int budget,
                                 const PoolId& worker_pool,
                                 std::vector<eqsql::TaskHandle>* out) {
  // Work-type keying: the type's whole queue lives on one shard. Experiment
  // keying spreads a type across shards, so the claim sweeps the rotation
  // until the budget is filled.
  std::vector<ShardId> shards;
  if (cluster_.spec().key == ShardKeyKind::kWorkType) {
    shards.push_back(shard_of(eq_type));
  } else {
    shards = rotation();
  }
  obs::Stopwatch latency;
  std::size_t failed = 0;
  Error last_error;
  for (ShardId s : shards) {
    const int want = budget - static_cast<int>(out->size());
    if (want <= 0) break;
    Result<std::vector<eqsql::TaskHandle>> claimed =
        routers_[s]->try_query_tasks(eq_type, want, worker_pool);
    if (!claimed.ok()) {
      if (!config_.tolerate_partial) return claimed.error();
      ++failed;
      ++partial_failures_;
      if (obs::enabled()) shard_obs().partial_failures.inc();
      last_error = claimed.error();
      continue;
    }
    for (eqsql::TaskHandle& handle : claimed.value()) {
      handle.eq_task_id = global_task_id(handle.eq_task_id, s);
      out->push_back(std::move(handle));
    }
  }
  if (failed == shards.size()) return last_error;  // every probe failed
  if (shards.size() > 1) {
    ++scatter_ops_;
    if (obs::enabled()) {
      ShardObs& o = shard_obs();
      o.scatter_ops.inc();
      o.scatter_fanout.observe(static_cast<double>(shards.size()));
      obs::observe_latency(o.scatter_latency, latency);
    }
  }
  return Status::ok();
}

Result<std::vector<eqsql::TaskHandle>> ShardRouter::try_query_tasks(
    WorkType eq_type, int n, const PoolId& worker_pool) {
  if (n <= 0) return std::vector<eqsql::TaskHandle>{};
  std::vector<eqsql::TaskHandle> handles;
  Status gathered = gather_tasks(eq_type, n, worker_pool, &handles);
  if (!gathered.is_ok()) return gathered.error();
  return handles;
}

Result<std::vector<eqsql::TaskHandle>> ShardRouter::query_task(
    WorkType eq_type, int n, const PoolId& worker_pool, eqsql::WaitSpec wait) {
  const Clock& clock = cluster_.clock();
  const TimePoint deadline = clock.now() + wait.timeout;
  RetryState waiter = poll_waiter(wait);

  // Notify mode needs every relevant shard's notifier: a shard without one
  // could complete work the union never hears about, so any gap degrades
  // the whole wait to polling.
  std::vector<eqsql::Notifier*> notifiers;
  const bool single = cluster_.spec().key == ShardKeyKind::kWorkType;
  const std::uint32_t fanout = single ? 1 : shard_count();
  bool all_notify = true;
  for (std::uint32_t i = 0; i < fanout; ++i) {
    const ShardId s = single ? shard_of(eq_type) : static_cast<ShardId>(i);
    eqsql::Notifier* notifier = cluster_.notifier(s);
    if (notifier == nullptr) all_notify = false;
    notifiers.push_back(notifier);
  }
  const bool use_notify =
      wait.strategy != eqsql::WaitStrategy::kPoll && all_notify;
  std::unique_ptr<UnionWaiter> channel;
  if (use_notify) {
    channel = std::make_unique<UnionWaiter>(notifiers, eq_type);
  }

  while (true) {
    const std::uint64_t seen = channel ? channel->version() : 0;
    Result<std::vector<eqsql::TaskHandle>> handles =
        try_query_tasks(eq_type, n, worker_pool);
    if (!handles.ok() && !retryable(handles.code())) return handles;
    if (handles.ok() && !handles.value().empty()) return handles;
    Duration delay = wait.poll_delay;
    waiter.next_delay(&delay);
    if (channel) {
      const Duration remaining = deadline - clock.now();
      if (remaining <= 0.0) {
        return Error(ErrorCode::kTimeout,
                     "no task of type " + std::to_string(eq_type) +
                         " within " + std::to_string(wait.timeout) + "s");
      }
      const Duration slice =
          delay > 0.0 ? std::min(delay, remaining) : remaining;
      channel->wait_past(seen, slice);
    } else {
      if (clock.now() + delay > deadline) {
        return Error(ErrorCode::kTimeout,
                     "no task of type " + std::to_string(eq_type) +
                         " within " + std::to_string(wait.timeout) + "s");
      }
      config_.sleeper(delay);
    }
  }
}

Status ShardRouter::report_task(TaskId global_id, WorkType eq_type,
                                const std::string& result) {
  const ShardId s = shard_of_task(global_id);
  if (s >= shard_count()) {
    return Status(ErrorCode::kInvalidArgument,
                  "task " + std::to_string(global_id) + " routes to shard " +
                      std::to_string(s) + " of " +
                      std::to_string(shard_count()));
  }
  return routers_[s]->report_task(local_task_id(global_id), eq_type, result);
}

Status ShardRouter::report_task_at_epoch(repl::Epoch epoch, TaskId global_id,
                                         WorkType eq_type,
                                         const std::string& result) {
  const ShardId s = shard_of_task(global_id);
  if (s >= shard_count()) {
    return Status(ErrorCode::kInvalidArgument,
                  "task " + std::to_string(global_id) + " routes to shard " +
                      std::to_string(s) + " of " +
                      std::to_string(shard_count()));
  }
  const std::uint64_t fenced_before = routers_[s]->fenced_writes();
  Status status = routers_[s]->report_task_at_epoch(
      epoch, local_task_id(global_id), eq_type, result);
  if (obs::enabled() && routers_[s]->fenced_writes() > fenced_before) {
    shard_obs().fenced_writes.inc();
  }
  return status;
}

Result<std::string> ShardRouter::try_query_result(TaskId global_id) {
  const ShardId s = shard_of_task(global_id);
  if (s >= shard_count()) {
    return Error(ErrorCode::kInvalidArgument,
                 "task " + std::to_string(global_id) + " routes to shard " +
                     std::to_string(s) + " of " + std::to_string(shard_count()));
  }
  return routers_[s]->try_query_result(local_task_id(global_id));
}

Result<std::size_t> ShardRouter::requeue_tasks(
    const std::vector<TaskId>& global_ids) {
  // Group per owning shard, de-globalizing the ids on the way.
  std::vector<std::vector<TaskId>> per_shard(shard_count());
  for (TaskId id : global_ids) {
    const ShardId s = shard_of_task(id);
    if (s >= shard_count()) {
      return Error(ErrorCode::kInvalidArgument,
                   "task " + std::to_string(id) + " routes to shard " +
                       std::to_string(s) + " of " +
                       std::to_string(shard_count()));
    }
    per_shard[s].push_back(local_task_id(id));
  }
  std::size_t requeued = 0;
  std::size_t probed = 0;
  std::size_t failed = 0;
  Error last_error{ErrorCode::kUnavailable, "no shards probed"};
  for (ShardId s = 0; s < shard_count(); ++s) {
    if (per_shard[s].empty()) continue;
    ++probed;
    Result<std::size_t> r = routers_[s]->requeue_tasks(per_shard[s]);
    if (!r.ok()) {
      if (!config_.tolerate_partial) return r.error();
      ++failed;
      ++partial_failures_;
      last_error = r.error();
      continue;
    }
    requeued += r.value();
  }
  if (probed > 0 && failed == probed) return last_error;
  return requeued;
}

pool::PoolBackend ShardRouter::pool_backend(WorkType eq_type) {
  pool::PoolBackend backend;
  backend.claim_batched = [this](WorkType type, int batch_size, int threshold,
                                 int owned, const PoolId& worker_pool)
      -> Result<std::vector<eqsql::TaskHandle>> {
    // The same batch/threshold gate as EQSQL::try_query_tasks_batched; the
    // claim itself routes through the owning shard (or scatters, under
    // experiment keying).
    if (batch_size <= 0 || threshold <= 0 || owned < 0) {
      return Error(ErrorCode::kInvalidArgument,
                   "batch_size and threshold must be positive, owned >= 0");
    }
    int deficit = batch_size - owned;
    if (deficit < threshold) return std::vector<eqsql::TaskHandle>{};
    return try_query_tasks(type, deficit, worker_pool);
  };
  backend.report = [this](TaskId global_id, WorkType type,
                          const std::string& result) {
    return report_task(global_id, type, result);
  };
  backend.requeue = [this](const std::vector<TaskId>& ids) {
    return requeue_tasks(ids);
  };
  backend.notifier = [this, eq_type]() -> eqsql::Notifier* {
    if (cluster_.spec().key != ShardKeyKind::kWorkType) return nullptr;
    return cluster_.notifier(shard_of(eq_type));
  };
  return backend;
}

Result<std::string> ShardRouter::peek_result(TaskId global_id) {
  const ShardId s = shard_of_task(global_id);
  if (s >= shard_count()) {
    return Error(ErrorCode::kInvalidArgument,
                 "task " + std::to_string(global_id) + " routes to shard " +
                     std::to_string(s) + " of " + std::to_string(shard_count()));
  }
  return routers_[s]->peek_result(local_task_id(global_id));
}

Result<eqsql::TaskStatus> ShardRouter::task_status(TaskId global_id) {
  const ShardId s = shard_of_task(global_id);
  if (s >= shard_count()) {
    return Error(ErrorCode::kInvalidArgument,
                 "task " + std::to_string(global_id) + " routes to shard " +
                     std::to_string(s) + " of " + std::to_string(shard_count()));
  }
  return routers_[s]->task_status(local_task_id(global_id));
}

Result<std::int64_t> ShardRouter::queued_count(WorkType eq_type) {
  if (cluster_.spec().key == ShardKeyKind::kWorkType) {
    return routers_[shard_of(eq_type)]->queued_count(eq_type);
  }
  // Experiment keying spreads a type across every shard: sum the scatter.
  std::int64_t total = 0;
  std::size_t succeeded = 0;
  Error last_error;
  for (ShardId s = 0; s < shard_count(); ++s) {
    Result<std::int64_t> count = routers_[s]->queued_count(eq_type);
    if (!count.ok()) {
      if (!config_.tolerate_partial) return count.error();
      ++partial_failures_;
      if (obs::enabled()) shard_obs().partial_failures.inc();
      last_error = count.error();
      continue;
    }
    total += count.value();
    ++succeeded;
  }
  if (succeeded == 0) return last_error;
  ++scatter_ops_;
  if (obs::enabled()) shard_obs().scatter_ops.inc();
  return total;
}

Result<eqsql::QueueStats> ShardRouter::stats() {
  obs::Stopwatch latency;
  eqsql::QueueStats total;
  std::size_t succeeded = 0;
  Error last_error;
  for (ShardId s = 0; s < shard_count(); ++s) {
    Result<eqsql::QueueStats> stats = routers_[s]->stats();
    if (!stats.ok()) {
      if (!config_.tolerate_partial) return stats.error();
      ++partial_failures_;
      if (obs::enabled()) shard_obs().partial_failures.inc();
      last_error = stats.error();
      continue;
    }
    const eqsql::QueueStats& st = stats.value();
    total.output_queue += st.output_queue;
    total.input_queue += st.input_queue;
    total.queued += st.queued;
    total.running += st.running;
    total.complete += st.complete;
    total.canceled += st.canceled;
    ++succeeded;
  }
  if (succeeded == 0) return last_error;
  ++scatter_ops_;
  if (obs::enabled()) {
    ShardObs& o = shard_obs();
    o.scatter_ops.inc();
    o.scatter_fanout.observe(static_cast<double>(shard_count()));
    obs::observe_latency(o.scatter_latency, latency);
  }
  return total;
}

Result<std::vector<TaskId>> ShardRouter::try_query_completed(
    const std::vector<TaskId>& global_ids, int n) {
  if (n <= 0 || global_ids.empty()) return std::vector<TaskId>{};
  // Group the ids by owning shard, preserving the caller's per-shard order.
  // A shard with no ids is not probed at all (the empty-shard edge).
  std::unordered_map<ShardId, std::vector<TaskId>> locals;
  for (TaskId id : global_ids) {
    const ShardId s = shard_of_task(id);
    if (s >= shard_count()) {
      return Error(ErrorCode::kInvalidArgument,
                   "task " + std::to_string(id) + " routes to shard " +
                       std::to_string(s) + " of " +
                       std::to_string(shard_count()));
    }
    locals[s].push_back(local_task_id(id));
  }
  obs::Stopwatch latency;
  std::vector<TaskId> found;
  std::unordered_set<TaskId> seen;
  std::size_t probed = 0;
  std::size_t failed = 0;
  Error last_error;
  // Gather in rotation order with a shrinking budget: each shard-side probe
  // pops its input-queue entries — an exactly-once delivery — so a probe
  // must never ask for more than the caller can still take.
  for (ShardId s : rotation()) {
    if (static_cast<int>(found.size()) >= n) break;
    auto it = locals.find(s);
    if (it == locals.end()) continue;
    ++probed;
    Result<std::vector<TaskId>> completed = routers_[s]->try_query_completed(
        it->second, n - static_cast<int>(found.size()));
    if (!completed.ok()) {
      if (!config_.tolerate_partial) return completed.error();
      ++failed;
      ++partial_failures_;
      if (obs::enabled()) shard_obs().partial_failures.inc();
      last_error = completed.error();
      continue;
    }
    for (TaskId local : completed.value()) {
      const TaskId global = global_task_id(local, s);
      if (!seen.insert(global).second) {
        ++merge_duplicates_;
        if (obs::enabled()) shard_obs().merge_duplicates.inc();
        continue;
      }
      found.push_back(global);
    }
  }
  if (probed > 0 && failed == probed) return last_error;
  ++scatter_ops_;
  if (obs::enabled()) {
    ShardObs& o = shard_obs();
    o.scatter_ops.inc();
    o.scatter_fanout.observe(static_cast<double>(probed));
    o.merge_batch.observe(static_cast<double>(found.size()));
    obs::observe_latency(o.scatter_latency, latency);
  }
  return found;
}

Result<std::vector<TaskId>> ShardRouter::as_completed(
    const std::vector<TaskId>& global_ids, std::size_t n,
    eqsql::WaitSpec wait) {
  if (n == 0) return std::vector<TaskId>{};
  if (n > global_ids.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "waiting for " + std::to_string(n) + " of " +
                     std::to_string(global_ids.size()) + " tasks");
  }
  const Clock& clock = cluster_.clock();
  const TimePoint deadline = clock.now() + wait.timeout;
  RetryState waiter = poll_waiter(wait);

  // The union wait covers the result channels of exactly the owning shards:
  // a completion on any of them wakes the waiter; shards holding none of
  // the ids are neither probed nor subscribed.
  std::vector<eqsql::Notifier*> notifiers;
  bool all_notify = true;
  {
    std::unordered_set<ShardId> owners;
    for (TaskId id : global_ids) owners.insert(shard_of_task(id));
    for (ShardId s : owners) {
      eqsql::Notifier* notifier =
          s < shard_count() ? cluster_.notifier(s) : nullptr;
      if (notifier == nullptr) all_notify = false;
      notifiers.push_back(notifier);
    }
  }
  const bool use_notify =
      wait.strategy != eqsql::WaitStrategy::kPoll && all_notify;
  std::unique_ptr<UnionWaiter> channel;
  if (use_notify) channel = std::make_unique<UnionWaiter>(notifiers);

  std::vector<TaskId> pending = global_ids;
  std::vector<TaskId> done;
  done.reserve(n);
  while (true) {
    const std::uint64_t seen = channel ? channel->version() : 0;
    Result<std::vector<TaskId>> completed =
        try_query_completed(pending, static_cast<int>(n - done.size()));
    if (!completed.ok() && !retryable(completed.code())) return completed;
    if (completed.ok()) {
      for (TaskId id : completed.value()) {
        done.push_back(id);
        pending.erase(std::remove(pending.begin(), pending.end(), id),
                      pending.end());
      }
      if (done.size() >= n) return done;
    }
    Duration delay = wait.poll_delay;
    waiter.next_delay(&delay);
    if (channel) {
      const Duration remaining = deadline - clock.now();
      if (remaining <= 0.0) {
        return Error(ErrorCode::kTimeout,
                     std::to_string(done.size()) + " of " + std::to_string(n) +
                         " tasks complete within " +
                         std::to_string(wait.timeout) + "s");
      }
      const Duration slice =
          delay > 0.0 ? std::min(delay, remaining) : remaining;
      channel->wait_past(seen, slice);
    } else {
      if (clock.now() + delay > deadline) {
        return Error(ErrorCode::kTimeout,
                     std::to_string(done.size()) + " of " + std::to_string(n) +
                         " tasks complete within " +
                         std::to_string(wait.timeout) + "s");
      }
      config_.sleeper(delay);
    }
  }
}

Result<TaskId> ShardRouter::pop_completed(std::vector<TaskId>& global_ids,
                                          eqsql::WaitSpec wait) {
  Result<std::vector<TaskId>> done = as_completed(global_ids, 1, wait);
  if (!done.ok()) return done.error();
  const TaskId id = done.value().front();
  global_ids.erase(std::remove(global_ids.begin(), global_ids.end(), id),
                   global_ids.end());
  return id;
}

std::uint64_t ShardRouter::fenced_writes() const {
  std::uint64_t total = 0;
  for (const auto& router : routers_) total += router->fenced_writes();
  return total;
}

}  // namespace osprey::shard

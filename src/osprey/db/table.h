// A single relational table: typed rows, primary-key uniqueness, secondary
// indexes, predicate scans with ORDER BY / LIMIT, and an undo journal hook
// used by Database transactions.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "osprey/db/expr.h"
#include "osprey/db/value.h"
#include "osprey/storage/row_store.h"

namespace osprey::db {

/// ORDER BY term: column plus direction.
struct OrderTerm {
  std::string column;
  bool ascending = true;
};

/// Scan options: WHERE + ORDER BY + LIMIT.
struct ScanOptions {
  ExprPtr where;                    // null => all rows
  std::vector<Value> params;        // bind parameters for `where`
  std::vector<OrderTerm> order_by;  // empty => row-id order (deterministic)
  std::int64_t limit = -1;          // -1 => unlimited
};

/// Mutation record for transaction rollback.
struct UndoRecord {
  enum class Kind { kInsert, kUpdate, kDelete } kind;
  std::string table;
  RowId row_id;
  Row old_row;  // valid for kUpdate / kDelete
};

class Table {
 public:
  /// `store` is the row storage engine; nullptr selects the default
  /// all-in-memory MemStore (the historical behaviour). Database installs an
  /// engine-backed store via its store factory (storage/engine.h).
  Table(std::string name, Schema schema,
        std::unique_ptr<storage::RowStore> store = nullptr);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  std::size_t row_count() const { return store_->size(); }

  /// Create a secondary index on `column`. Existing rows are indexed.
  /// When an index hook is installed (by the owning Database, so DDL reaches
  /// its CommitObserver) a hook failure aborts the creation.
  Status create_index(const std::string& column);

  /// Installed by Database::create_table to route index DDL to the commit
  /// observer. Standalone tables have no hook.
  using IndexHook = std::function<Status(const std::string& column)>;
  void set_index_hook(IndexHook hook) { index_hook_ = std::move(hook); }
  bool has_index(const std::string& column) const;
  std::vector<std::string> indexed_columns() const;

  /// Insert a row. Enforces schema validation and primary-key uniqueness.
  Result<RowId> insert(Row row);

  /// Fetch a row by id.
  std::optional<Row> get(RowId id) const;

  /// Find row ids matching the scan options, in the requested order.
  /// Uses a secondary or primary-key index when the WHERE clause contains an
  /// equality constraint on an indexed column; otherwise scans all rows.
  Result<std::vector<RowId>> select(const ScanOptions& options) const;

  /// Single-row convenience: first match or nullopt.
  Result<std::optional<RowId>> select_one(const ScanOptions& options) const;

  /// Find a row by primary key (requires a PRIMARY KEY column).
  std::optional<RowId> find_pk(const Value& key) const;

  /// Apply `assignments` (column -> expression) to all rows matching
  /// `options.where`. Returns number of rows updated.
  Result<std::size_t> update(
      const ScanOptions& options,
      const std::vector<std::pair<std::string, ExprPtr>>& assignments);

  /// Overwrite one row wholesale (validated). Used by rollback.
  Status update_row(RowId id, Row row);

  /// Delete rows matching `options.where`. Returns number deleted.
  Result<std::size_t> erase(const ScanOptions& options);

  /// Delete one row by id. Returns false when absent.
  bool erase_row(RowId id);

  /// Remove every row (keeps schema and index definitions). Fails without
  /// touching the store when a spilled row cannot be read for the undo
  /// journal (the rollback would otherwise lose rows silently).
  Status clear();

  /// All row ids in insertion (row-id) order.
  std::vector<RowId> all_row_ids() const;

  /// Transactions: when a journal is attached, every mutation appends an
  /// UndoRecord describing how to reverse it.
  void attach_journal(std::vector<UndoRecord>* journal) { journal_ = journal; }
  void detach_journal() { journal_ = nullptr; }

  /// Re-insert a row under a specific id (rollback of a delete, WAL replay,
  /// snapshot restore with preserved ids).
  Status restore_row(RowId id, Row row);

  /// Manifest support (storage/manifest.*): enumerate one index's (value,
  /// row id) pairs in index order, and re-insert a single index entry for a
  /// row whose data lives in a spilled run — checkpoint manifests persist
  /// index entries of non-resident rows so recovery never reads the runs.
  void for_each_index_entry(
      const std::string& column,
      const std::function<void(const Value&, RowId)>& fn) const;
  Status restore_index_entry(const std::string& column, const Value& value,
                             RowId id);

  /// The row storage engine behind this table.
  storage::RowStore& store() { return *store_; }
  const storage::RowStore& store() const { return *store_; }

  /// Never assign ids below `next` (snapshot restore of a table whose
  /// highest-id rows were deleted before the dump).
  void reserve_next_row_id(RowId next) {
    if (next > next_row_id_) next_row_id_ = next;
  }
  RowId next_row_id() const { return next_row_id_; }

  /// Un-burn the id of an undone insert (rollback runs the journal in
  /// reverse, so a transaction's allocations unwind completely). Keeps a
  /// rolled-back transaction fully invisible — snapshots record next_row_id.
  void release_row_id(RowId id) {
    if (id + 1 == next_row_id_) next_row_id_ = id;
  }

  /// Cumulative scan statistics — exposed so benches can verify that indexed
  /// queries do not degrade into full scans.
  std::uint64_t full_scans() const { return full_scans_; }
  std::uint64_t index_lookups() const { return index_lookups_; }

 private:
  using IndexMap = std::multimap<Value, RowId>;

  void index_insert(const Row& row, RowId id);
  void index_erase(const Row& row, RowId id);
  Status check_pk_unique(const Row& row, std::optional<RowId> ignore) const;
  Result<std::vector<RowId>> candidates(const ScanOptions& options) const;
  Status order_rows(std::vector<RowId>& ids,
                    const std::vector<OrderTerm>& order_by) const;
  /// Top-N via ordered index walk: used when ORDER BY's first term is an
  /// indexed column and a LIMIT is present, so the priority pop of §IV-C is
  /// O(result) instead of O(table log table).
  Result<std::vector<RowId>> select_ordered_via_index(
      const ScanOptions& options, const IndexMap& index) const;

  /// Borrow the row under `id` without copying when it is memory-resident;
  /// spilled rows are materialized into `*scratch`. Returns nullptr when a
  /// spilled row cannot be read (device error) — callers surface
  /// row_unavailable() instead of proceeding with a garbage row. The caller
  /// must not mutate the store while the pointer is live.
  const Row* fetch_row(RowId id, Row* scratch) const;

  /// kUnavailable for a live row whose backing run could not be read.
  Status row_unavailable(RowId id) const;

  std::string name_;
  Schema schema_;
  std::unique_ptr<storage::RowStore> store_;  // ascending-id => deterministic
  RowId next_row_id_ = 1;
  std::map<std::string, IndexMap> indexes_;  // column name -> index
  std::vector<UndoRecord>* journal_ = nullptr;
  IndexHook index_hook_;
  mutable std::uint64_t full_scans_ = 0;
  mutable std::uint64_t index_lookups_ = 0;
};

}  // namespace osprey::db

file(REMOVE_RECURSE
  "CMakeFiles/example_data_driven_calibration.dir/data_driven_calibration.cpp.o"
  "CMakeFiles/example_data_driven_calibration.dir/data_driven_calibration.cpp.o.d"
  "example_data_driven_calibration"
  "example_data_driven_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_data_driven_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Proxy<T>: the lazy pass-by-reference object of ProxyStore (§IV-E).
//
// "It passes 'Proxy' object references between participating entities ...
// and implements a lazy evaluation approach in which Proxies are resolved
// only when needed." A Proxy carries (store, key, codec); resolve() fetches
// and decodes on first use and caches. Copies share the resolution cache, so
// handing a proxy to a remote function and resolving it there (as the GPR is
// resolved inside the remote retraining call in §VI) decodes exactly once.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "osprey/json/json.h"
#include "osprey/proxystore/store.h"

namespace osprey::proxystore {

/// Encoding of T to/from the store's byte blobs.
template <typename T>
struct Codec {
  std::function<std::string(const T&)> encode;
  std::function<Result<T>(const std::string&)> decode;
};

template <typename T>
class Proxy {
 public:
  Proxy() = default;

  /// Wrap an existing stored object.
  Proxy(Store& store, Key key, Codec<T> codec)
      : state_(std::make_shared<State>(
            State{&store, std::move(key), std::move(codec), {}, 0})) {}

  /// Store `value` under `key` and return its proxy.
  static Result<Proxy> create(Store& store, Key key, const T& value,
                              Codec<T> codec) {
    std::string bytes = codec.encode(value);
    Bytes size = bytes.size();
    Status s = store.put(key, std::move(bytes));
    if (!s.is_ok()) return s.error();
    Proxy proxy(store, std::move(key), std::move(codec));
    proxy.state_->stored_bytes = size;
    return proxy;
  }

  bool valid() const { return state_ != nullptr; }
  const Key& key() const { return state_->key; }
  bool resolved() const { return state_ && state_->cached.has_value(); }

  /// Size of the stored encoding (0 until known).
  Bytes stored_bytes() const { return state_ ? state_->stored_bytes : 0; }

  /// Fetch + decode on first use; cached afterwards.
  Result<std::reference_wrapper<const T>> resolve() {
    if (!state_) {
      return Error(ErrorCode::kInvalidArgument, "invalid proxy");
    }
    if (!state_->cached) {
      Result<std::string> bytes = state_->store->get(state_->key);
      if (!bytes.ok()) return bytes.error();
      state_->stored_bytes = bytes.value().size();
      Result<T> value = state_->codec.decode(bytes.value());
      if (!value.ok()) return value.error();
      state_->cached = std::move(value).take();
    }
    return std::cref(*state_->cached);
  }

  /// Simulated time resolving from `site` would cost (0 once cached —
  /// lazy resolution means you pay the WAN exactly once).
  Duration resolve_cost(const net::SiteName& site) const {
    if (!state_ || state_->cached) return 0.0;
    return state_->store->access_cost(state_->key, site);
  }

  /// Drop the stored blob (the cache, if any, survives).
  Status evict() {
    if (!state_) return Status(ErrorCode::kInvalidArgument, "invalid proxy");
    return state_->store->evict(state_->key);
  }

 private:
  struct State {
    Store* store = nullptr;
    Key key;
    Codec<T> codec;
    std::optional<T> cached;
    Bytes stored_bytes = 0;
  };
  std::shared_ptr<State> state_;
};

/// Codec for JSON documents — the common artifact encoding.
Codec<json::Value> json_codec();

/// Codec for raw byte strings.
Codec<std::string> bytes_codec();

/// Codec for double vectors (model weights, sample batches).
Codec<std::vector<double>> doubles_codec();

}  // namespace osprey::proxystore

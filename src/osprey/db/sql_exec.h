// SQL execution against a Database: the "connection" layer the EQSQL API
// speaks, standing in for the paper's Postgres client library.
//
// Connection::execute parses, plans, and runs one statement under the
// database lock. Statements may carry '?' bind parameters. Parsed statements
// are cached by SQL text, so the hot EMEWS queries (§IV-C) parse once.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "osprey/db/database.h"
#include "osprey/db/sql_ast.h"

namespace osprey::db::sql {

/// Result of executing one statement.
struct ExecResult {
  /// SELECT: selected rows (projected columns in query order).
  std::vector<Row> rows;
  /// SELECT: names of the projected columns.
  std::vector<std::string> column_names;
  /// INSERT / UPDATE / DELETE: number of rows affected.
  std::size_t affected = 0;
  /// INSERT: engine row id of the inserted row.
  RowId last_insert_id = 0;
};

class Connection {
 public:
  explicit Connection(Database& db) : db_(db) {}

  /// Execute one SQL statement with optional bind parameters.
  /// When a Transaction created via begin() is open, statements join it;
  /// otherwise each statement is atomic on its own.
  Result<ExecResult> execute(const std::string& sql,
                             const std::vector<Value>& params = {});

  /// Open an explicit transaction (equivalent to executing "BEGIN").
  Status begin();
  /// Commit / roll back the open transaction.
  Status commit();
  Status rollback();
  bool in_transaction() const { return txn_ != nullptr; }

  Database& database() { return db_; }

 private:
  Result<ExecResult> run(const Statement& stmt, const std::vector<Value>& params);
  Result<ExecResult> run_select(const SelectStmt& stmt,
                                const std::vector<Value>& params);

  const Statement* cached_parse(const std::string& sql, Error* error);

  Database& db_;
  std::unique_ptr<Transaction> txn_;
  std::unordered_map<std::string, Statement> statement_cache_;
  std::mutex cache_mutex_;
};

}  // namespace osprey::db::sql

#include "osprey/epi/data.h"

#include <numeric>

namespace osprey::epi {

double Surveillance::total() const {
  return std::accumulate(reported_cases.begin(), reported_cases.end(), 0.0);
}

Surveillance synthesize_surveillance(const std::vector<double>& true_incidence,
                                     const ReportingModel& model) {
  Surveillance out;
  out.reported_cases.reserve(true_incidence.size());
  Rng rng(model.seed);
  for (std::size_t day = 0; day < true_incidence.size(); ++day) {
    double expected = true_incidence[day] * model.report_rate;
    if (model.weekend_effect && (day % 7 == 5 || day % 7 == 6)) {
      expected *= model.weekend_factor;
    }
    out.reported_cases.push_back(
        expected > 0 ? static_cast<double>(rng.poisson(expected)) : 0.0);
  }
  return out;
}

Result<Surveillance> synthesize_from_seir(const SeirParams& truth, int days,
                                          const ReportingModel& model) {
  Result<SeirSeries> series = run_seir(truth, days);
  if (!series.ok()) return series.error();
  return synthesize_surveillance(series.value().daily_incidence, model);
}

}  // namespace osprey::epi

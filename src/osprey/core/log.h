// Minimal leveled, thread-safe logger.
//
// OSPREY components log control-plane events (pool start/stop, retries,
// transfers). Logging defaults to kWarn so tests and benches stay quiet;
// examples raise it to kInfo to narrate the workflow.
#pragma once

#include <sstream>
#include <string>

namespace osprey {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Global log threshold. Messages below this level are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (thread-safe). Prefer the OSPREY_LOG macro.
void log_message(LogLevel level, const std::string& component,
                 const std::string& message);

namespace detail {
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { log_message(level_, component_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace osprey

/// Usage: OSPREY_LOG(kInfo, "pool") << "worker " << id << " started";
#define OSPREY_LOG(level, component)                                   \
  if (::osprey::LogLevel::level < ::osprey::log_level()) {             \
  } else                                                               \
    ::osprey::detail::LogStream(::osprey::LogLevel::level, (component))

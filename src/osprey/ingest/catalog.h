// Artifact catalog (§II-B2c): "Algorithm and model artifacts, such as model
// exploration state or calibrated model checkpoints, can be complex, large,
// and numerous and not local to a specific resource. OSPREY needs to manage
// these artifacts, and their associated metadata."
//
// The catalog stores versioned named artifacts: bytes go into any
// proxystore::Store (local / file / globus), metadata (type, creation time,
// lineage to parent artifacts, free-form JSON such as curation provenance)
// stays in the catalog. "Model checkpoints should be easily selected" —
// lookups by name/latest, by type, and by lineage.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/json/json.h"
#include "osprey/proxystore/store.h"

namespace osprey::ingest {

using ArtifactId = std::uint64_t;

struct ArtifactMeta {
  ArtifactId id = 0;
  std::string name;
  int version = 0;        // per-name, starting at 1
  std::string type;       // "dataset", "gpr_model", "checkpoint", ...
  Bytes size = 0;
  TimePoint created_at = 0;
  std::vector<ArtifactId> parents;  // lineage
  json::Value metadata;             // free-form (e.g. curation provenance)
};

class ArtifactCatalog {
 public:
  /// Artifact bytes live in `store`; metadata lives in the catalog.
  ArtifactCatalog(proxystore::Store& store, const Clock& clock)
      : store_(&store), clock_(&clock) {}

  /// Register a new version of `name` (versions auto-increment per name).
  /// Parents must already exist.
  Result<ArtifactId> put(const std::string& name, const std::string& type,
                         std::string bytes,
                         std::vector<ArtifactId> parents = {},
                         json::Value metadata = {});

  /// Metadata by id.
  Result<ArtifactMeta> info(ArtifactId id) const;

  /// Latest version of a name.
  Result<ArtifactMeta> latest(const std::string& name) const;

  /// A specific version of a name.
  Result<ArtifactMeta> version(const std::string& name, int version) const;

  /// Fetch an artifact's bytes from the store.
  Result<std::string> fetch(ArtifactId id) const;

  /// All artifacts of a type, oldest first.
  std::vector<ArtifactMeta> by_type(const std::string& type) const;

  /// Transitive ancestors of an artifact (nearest first).
  Result<std::vector<ArtifactMeta>> lineage(ArtifactId id) const;

  /// Drop an artifact (fails while other artifacts list it as a parent).
  Status evict(ArtifactId id);

  std::size_t size() const { return artifacts_.size(); }

 private:
  std::string storage_key(ArtifactId id) const {
    return "artifact/" + std::to_string(id);
  }

  proxystore::Store* store_;
  const Clock* clock_;
  std::map<ArtifactId, ArtifactMeta> artifacts_;
  std::map<std::string, std::vector<ArtifactId>> versions_by_name_;
  ArtifactId next_id_ = 1;
};

}  // namespace osprey::ingest

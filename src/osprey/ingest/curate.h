// Automated data curation (§II-B2b): "data analysis pipelines, such as for
// data de-biasing, data integration, uncertainty quantification, and more
// general metadata and provenance tracking".
//
// A CurationPipeline is an ordered list of named stages applied to a daily
// series. Each application emits a ProvenanceRecord per stage (stage name,
// parameters, input/output checksums, timestamp), so any curated series can
// be traced back to its raw input. The built-in stages target exactly the
// biases the epi surveillance model injects: missing days, weekday
// reporting artifacts, and noise spikes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/core/error.h"
#include "osprey/json/json.h"

namespace osprey::ingest {

using Series = std::vector<double>;

/// One stage's provenance entry.
struct ProvenanceRecord {
  std::string stage;
  json::Value parameters;
  std::uint64_t input_checksum = 0;
  std::uint64_t output_checksum = 0;
  TimePoint applied_at = 0;
};

/// A curation stage: pure series -> series transform plus its parameter
/// description for provenance.
struct Stage {
  std::string name;
  json::Value parameters;
  std::function<Result<Series>(const Series&)> apply;
};

/// Checksum of a series (order-sensitive), used by provenance records.
std::uint64_t series_checksum(const Series& series);

class CurationPipeline {
 public:
  explicit CurationPipeline(const Clock& clock) : clock_(&clock) {}

  void add_stage(Stage stage) { stages_.push_back(std::move(stage)); }
  std::size_t stage_count() const { return stages_.size(); }

  /// Run all stages in order; returns the curated series and appends one
  /// ProvenanceRecord per stage to `provenance`.
  Result<Series> run(const Series& input,
                     std::vector<ProvenanceRecord>* provenance) const;

  /// Serialize a provenance chain for artifact metadata.
  static json::Value provenance_to_json(
      const std::vector<ProvenanceRecord>& provenance);

 private:
  const Clock* clock_;
  std::vector<Stage> stages_;
};

// --- built-in stages ------------------------------------------------------------

/// Replace non-finite / negative entries by linear interpolation between the
/// nearest valid neighbors (ends extend flat).
Stage fill_missing_stage();

/// Estimate multiplicative day-of-week reporting factors (mean of each
/// weekday relative to the 7-day local level) and divide them out — the
/// de-biasing counterpart to the surveillance weekend effect.
Stage weekday_debias_stage();

/// Centered moving average of odd window `window`.
Stage smooth_stage(int window = 7);

/// Clip entries further than `k` median-absolute-deviations from a 7-day
/// rolling median to that bound (spike suppression).
Stage outlier_clip_stage(double k = 5.0);

/// The standard surveillance pipeline: fill -> debias -> clip -> smooth.
CurationPipeline standard_surveillance_pipeline(const Clock& clock);

}  // namespace osprey::ingest

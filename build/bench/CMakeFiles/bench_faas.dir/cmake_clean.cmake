file(REMOVE_RECURSE
  "CMakeFiles/bench_faas.dir/bench_faas.cpp.o"
  "CMakeFiles/bench_faas.dir/bench_faas.cpp.o.d"
  "bench_faas"
  "bench_faas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

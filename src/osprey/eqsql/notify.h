// The commit-driven notification plane (DESIGN.md §5.10).
//
// Every blocking wait in the EQSQL surface used to be a (delay, timeout)
// poll loop, flooring task-cycle latency at the poll delay and hammering the
// database with no-op claims at idle. The Notifier removes the floor at the
// source: it chains onto the database's CommitObserver — the same hook the
// WAL uses for durability — and scans each committed journal for the three
// events waiters care about:
//
//   - an insert into eq_output_queue (submit_task / requeue): work arrived
//     for that row's work type → bump that type's work channel;
//   - an insert into eq_input_queue (report_task): a result arrived → bump
//     the result channel and remember the task id;
//   - an eq_tasks update whose post-state is 'canceled' (cancel_tasks): a
//     result waiter must give up → also a result-channel event.
//
// Each channel is a monotonically increasing version counter. Waiters sample
// the version, probe the database, and only then block on "version changed"
// — so a wakeup between probe and block is never lost. Blocking comes in two
// flavors matching the two runtimes:
//
//   - wait_for_work / wait_for_result: condition-variable waits for threaded
//     callers (ThreadedWorkerPool, blocking query_task/query_result);
//   - on_work / on_result listeners: synchronous callbacks fired from the
//     commit path, which the simulation turns into zero-delay scheduled
//     events so chaos and replay runs stay bit-deterministic.
//
// Locking (kept acyclic — see the commit-path order below): channels_mutex_
// guards the channel map only; wait_mutex_ guards nothing but the cv sleep
// (versions are atomics); listener_mutex_ serializes listener invocation so
// remove_listener() returning guarantees no callback is in flight. The
// commit path runs under the database mutex and takes, in order:
// channels_mutex_ (briefly), wait_mutex_ (briefly), listener_mutex_ (for
// the callbacks, which may take a pool mutex). Waiters take only
// wait_mutex_; pools therefore must not hold their own mutex while calling
// Notifier registration methods or any database operation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "osprey/db/database.h"
#include "osprey/eqsql/wait.h"
#include "osprey/obs/telemetry.h"

namespace osprey::eqsql {

class Notifier : public db::CommitObserver {
 public:
  using ListenerId = std::uint64_t;

  Notifier();
  ~Notifier() override;

  Notifier(const Notifier&) = delete;
  Notifier& operator=(const Notifier&) = delete;

  /// Install onto `db`, wrapping any observer already there (the WAL): the
  /// inner observer keeps its veto — it runs first, and a veto suppresses
  /// both the commit and the notifications. Re-attach after swapping the
  /// inner observer (EmewsService does this when WAL is enabled later).
  void attach(db::Database& db);

  /// Restore the wrapped observer. Safe to call when not attached; a no-op
  /// if someone else replaced us (they own the slot now).
  void detach();

  bool attached() const { return db_ != nullptr; }

  // --- channels --------------------------------------------------------------

  /// The version counter for a work type's "tasks queued" channel. The
  /// returned reference is stable for the Notifier's lifetime (channels are
  /// never removed), so pools may cache it and read it lock-free while
  /// holding their own locks.
  const std::atomic<std::uint64_t>& work_channel(WorkType eq_type);

  /// The version counter for the global "result or cancellation landed"
  /// channel.
  const std::atomic<std::uint64_t>& result_channel() const {
    return result_version_;
  }

  std::uint64_t work_version(WorkType eq_type) {
    return work_channel(eq_type).load(std::memory_order_acquire);
  }

  std::uint64_t result_version() const {
    return result_version_.load(std::memory_order_acquire);
  }

  // --- blocking waits (threaded runtime) -------------------------------------

  /// Block until the work channel for `eq_type` moves past `seen` or
  /// `timeout` (real time) elapses. Returns true when the version moved.
  /// Protocol: sample the version, probe the database, then wait — the
  /// version predicate makes a signal between probe and wait a fast return,
  /// never a lost wakeup.
  bool wait_for_work(WorkType eq_type, std::uint64_t seen, Duration timeout);

  /// Same for the result channel.
  bool wait_for_result(std::uint64_t seen, Duration timeout);

  // --- listeners (simulation runtime and pools) ------------------------------

  /// Register a callback fired whenever work of `eq_type` is committed. The
  /// callback runs on the committing thread, under the database mutex and
  /// listener_mutex_: keep it O(1) — set a flag, notify a cv, or schedule a
  /// simulation event; never call back into the database.
  ListenerId on_work(WorkType eq_type, std::function<void()> fn);

  /// Register a callback fired once per committed result or cancellation,
  /// with the task id. Same execution context and rules as on_work.
  ListenerId on_result(std::function<void(TaskId)> fn);

  /// Unregister. On return the callback is not running and never will again
  /// (invocation is serialized under the same lock).
  void remove_listener(ListenerId id);

  // --- introspection ---------------------------------------------------------

  std::uint64_t commits_seen() const {
    return commits_seen_.load(std::memory_order_relaxed);
  }
  std::uint64_t work_signals() const {
    return work_signals_.load(std::memory_order_relaxed);
  }
  std::uint64_t result_signals() const {
    return result_signals_.load(std::memory_order_relaxed);
  }

  // --- CommitObserver --------------------------------------------------------

  Status on_commit(db::Database& db,
                   const std::vector<db::UndoRecord>& journal) override;
  Status on_create_table(const db::Table& table) override;
  Status on_drop_table(const std::string& name) override;
  Status on_create_index(const std::string& table,
                         const std::string& column) override;

 private:
  struct WorkChannel {
    std::atomic<std::uint64_t> version{0};
  };

  struct Listener {
    WorkType eq_type = 0;                // valid when work is set
    std::function<void()> work;          // exactly one of work/result is set
    std::function<void(TaskId)> result;
  };

  WorkChannel& channel(WorkType eq_type);

  db::Database* db_ = nullptr;
  db::CommitObserver* inner_ = nullptr;  // wrapped observer (the WAL), may be null

  mutable std::mutex channels_mutex_;
  std::unordered_map<WorkType, std::unique_ptr<WorkChannel>> channels_;
  std::atomic<std::uint64_t> result_version_{0};

  std::mutex wait_mutex_;
  std::condition_variable wait_cv_;

  std::mutex listener_mutex_;
  std::map<ListenerId, Listener> listeners_;  // ordered => deterministic firing
  ListenerId next_listener_id_ = 1;

  std::atomic<std::uint64_t> commits_seen_{0};
  std::atomic<std::uint64_t> work_signals_{0};
  std::atomic<std::uint64_t> result_signals_{0};

  obs::Counter& obs_commits_;
  obs::Counter& obs_work_signals_;
  obs::Counter& obs_result_signals_;
};

}  // namespace osprey::eqsql

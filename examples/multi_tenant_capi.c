/* Multi-tenant quickstart on the v2 C API (DESIGN.md §5.13).
 *
 * Two research groups share one EMEWS service: "epi-lab" runs the big
 * calibration campaign (weight 3), "methods" runs a small study (weight 1)
 * with a tight in-flight quota. The example shows the whole v2 surface:
 *
 *   1. enable tenants + register them with quotas and fair-share weights,
 *   2. submit through size-prefixed osprey_task_spec_t (admission control
 *      rejects over-quota submits with OSPREY_E_RESOURCE_EXHAUSTED at the
 *      front door — nothing is enqueued),
 *   3. claim through osprey_query_task_v2 (weighted-fair across tenants),
 *   4. read the unified osprey_stats_v2_t and the per-tenant accounting
 *      rows.
 *
 * Pure C11 — this file is also a living check that the C surface stays
 * usable without any C++ toolchain. */
#include <inttypes.h>
#include <stdio.h>
#include <string.h>

#include "osprey/capi/osprey_c.h"

#define CHECK(expr)                                                      \
  do {                                                                   \
    int rc_ = (expr);                                                    \
    if (rc_ != OSPREY_OK) {                                              \
      fprintf(stderr, "%s failed: %s\n", #expr, osprey_error_name(rc_)); \
      return 1;                                                          \
    }                                                                    \
  } while (0)

int main(void) {
  osprey_service* service = osprey_service_create();
  CHECK(osprey_service_start(service));

  /* The multi-tenant front door: identity, quotas, fair-share weights.
   * Enable before connecting clients — earlier handles bypass admission. */
  CHECK(osprey_service_enable_tenants(service));
  osprey_tenant_config_t big;
  osprey_tenant_config_init(&big);
  big.weight = 3.0;
  CHECK(osprey_tenant_register(service, "epi-lab", &big));
  osprey_tenant_config_t small;
  osprey_tenant_config_init(&small);
  small.submit_quota = 4; /* at most 4 in flight */
  small.weight = 1.0;
  CHECK(osprey_tenant_register(service, "methods", &small));

  osprey_client* client = osprey_client_connect(service);
  if (!client) return 1;

  /* Submit both campaigns through the v2 struct-based entry point. */
  osprey_task_spec_t spec;
  osprey_task_spec_init(&spec);
  spec.exp_id = "shared-cluster";
  spec.eq_type = 1;
  int64_t id;
  for (int i = 0; i < 9; ++i) {
    spec.tenant = "epi-lab";
    spec.payload = "{\"campaign\":\"calibration\"}";
    CHECK(osprey_submit_task_v2(client, &spec, &id));
  }
  int admitted = 0;
  for (int i = 0; i < 6; ++i) {
    spec.tenant = "methods";
    spec.payload = "{\"campaign\":\"ablation\"}";
    int rc = osprey_submit_task_v2(client, &spec, &id);
    if (rc == OSPREY_OK) {
      ++admitted;
    } else if (rc == OSPREY_E_RESOURCE_EXHAUSTED) {
      printf("methods submit %d bounced at the front door (over quota)\n",
             i + 1);
    } else {
      CHECK(rc);
    }
  }
  printf("methods: %d of 6 submits admitted (quota 4)\n", admitted);

  /* Claim the first 8 tasks: the stride scheduler interleaves tenants 3:1
   * instead of draining the bigger campaign first. */
  osprey_claim_spec_t claim;
  osprey_claim_spec_init(&claim);
  claim.eq_type = 1;
  claim.worker_pool = "fleet";
  claim.wait.strategy = OSPREY_WAIT_POLL;
  claim.wait.timeout = 2.0;
  claim.wait.poll_delay = 0.01;
  for (int i = 0; i < 8; ++i) {
    char payload[128];
    CHECK(osprey_query_task_v2(client, &claim, &id, payload,
                               sizeof(payload)));
    printf("claim %d -> task %" PRId64 " %s\n", i + 1, id, payload);
    CHECK(osprey_report_task(client, id, 1, "{\"loss\":0.1}"));
  }

  /* One unified snapshot (queue + storage counters)... */
  osprey_stats_v2_t stats;
  osprey_stats_v2_init(&stats);
  CHECK(osprey_stats_v2(client, -1, &stats));
  printf("service: %" PRId64 " queued, %" PRId64 " running, %" PRId64
         " complete\n",
         stats.queued, stats.running, stats.complete);

  /* ...and the per-tenant accounting rows. */
  osprey_tenant_stats_row_t rows[8];
  memset(rows, 0, sizeof(rows));
  rows[0].struct_size = sizeof(rows[0]);
  size_t count = 0;
  CHECK(osprey_tenant_stats_v2(client, rows, 8, &count));
  for (size_t i = 0; i < count && i < 8; ++i) {
    printf("tenant %-8s weight %.0f  queued %" PRId64 "  claimed %" PRIu64
           "  rejected %" PRIu64 "\n",
           rows[i].tenant, rows[i].weight, rows[i].queued, rows[i].claimed,
           rows[i].rejected);
  }

  osprey_client_destroy(client);
  CHECK(osprey_service_stop(service));
  osprey_service_destroy(service);
  printf("multi-tenant quickstart done\n");
  return 0;
}

// A FaaS endpoint: the per-resource agent users deploy "to make it
// accessible for remote computation" (§IV-B).
//
// The endpoint owns a function registry (the code available at that site)
// and an online/offline state (resources go down; the cloud service
// retries). Failure injection runs through the process-wide fault plane
// (core/fault.h): attach a FaultRegistry and the endpoint consults its
// fault_point::endpoint / fault_point::endpoint_offline points, so chaos
// scenarios coordinate endpoint crashes with link partitions and worker
// stalls under one seed. The legacy per-endpoint injector knobs
// (set_failure_probability / fail_next) remain as convenience wrappers.
#pragma once

#include <string>

#include "osprey/core/fault.h"
#include "osprey/core/rng.h"
#include "osprey/faas/registry.h"
#include "osprey/net/network.h"

namespace osprey::faas {

class Endpoint {
 public:
  /// `name` identifies the endpoint to the cloud service; `site` locates it
  /// in the network model.
  Endpoint(std::string name, net::SiteName site, std::uint64_t seed = 1);

  const std::string& name() const { return name_; }
  const net::SiteName& site() const { return site_; }

  FunctionRegistry& registry() { return registry_; }
  const FunctionRegistry& registry() const { return registry_; }

  /// Reachable right now: online, and no fault_point::endpoint_offline
  /// window/latch active in the attached registry.
  bool online() const;
  void set_online(bool online) { online_ = online; }

  /// Attach the coordinated fault plane. The endpoint fires its
  /// fault_point::endpoint(name) point per execution (transient failure)
  /// and honors fault_point::endpoint_offline(name) windows (§IV-B offline
  /// hold). nullptr detaches.
  void set_fault_registry(FaultRegistry* faults) { faults_ = faults; }

  /// Failure injection: each execution fails with probability `p`
  /// (UNAVAILABLE, retryable). Deterministic given the endpoint seed.
  void set_failure_probability(double p) { failure_probability_ = p; }
  /// Force exactly the next `n` executions to fail.
  void fail_next(int n) { forced_failures_ = n; }

  /// Execute a function body at this endpoint. Returns UNAVAILABLE when the
  /// endpoint is offline or an injected failure fires.
  Result<json::Value> execute(const std::string& function,
                              const json::Value& payload);

  /// Statistics.
  std::uint64_t executions() const { return executions_; }
  std::uint64_t failures() const { return failures_; }

 private:
  std::string name_;
  net::SiteName site_;
  FunctionRegistry registry_;
  bool online_ = true;
  FaultRegistry* faults_ = nullptr;
  double failure_probability_ = 0.0;
  int forced_failures_ = 0;
  Rng rng_;
  std::uint64_t executions_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace osprey::faas

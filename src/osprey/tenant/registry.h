// Multi-tenant front door (ROADMAP item 4, DESIGN.md §5.13).
//
// "Millions of users" means many principals sharing one task database. funcX
// puts identity, quotas, and fair scheduling at the front door of its
// federated FaaS fabric; this registry is OSPREY's equivalent, shared by
// every EQSQL handle (and, per shard, every router) of one service:
//
//  - Identity: a tenant must be registered before it may submit. Submits by
//    an unknown tenant fail kPermissionDenied; the empty tenant is the
//    untenanted legacy principal, admitted unconditionally so single-tenant
//    deployments stay byte-compatible.
//  - Admission control: each tenant has an in-flight quota (queued + running
//    tasks) and a queue-depth bound. A submit that would cross either is
//    rejected at the front door with kResourceExhausted *before* touching
//    the database — backpressure surfaced to the client instead of silent
//    queue collapse. Quotas may shrink below the current depth; existing
//    tasks are untouched and new submits are refused until the drain.
//  - Weighted-fair scheduling: claims draw tasks across tenants by stride
//    scheduling — each tenant carries a virtual pass advanced by
//    stride = kStrideScale / weight per claimed task, and the backlogged
//    tenant with the smallest pass is served next. Over any backlogged
//    window, tenant shares converge to their weights, so one huge campaign
//    cannot starve another. A tenant going idle and returning is capped at
//    the global virtual time, so it gets at most one catch-up claim, not a
//    monopolizing debt.
//  - Accounting: per-tenant admit/reject/claim/complete counters, queue
//    depth gauges, a task-cycle (submit -> complete) latency histogram, and
//    task-runtime cost accumulation — all exported through osprey::obs with
//    a tenant label.
//
// The registry tracks live traffic; it is in-memory state beside the
// database, rebuilt empty on crash recovery (a recovering service re-admits
// its restored backlog via sync_depths).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "osprey/core/error.h"
#include "osprey/core/types.h"
#include "osprey/obs/telemetry.h"

namespace osprey::tenant {

/// "No bound" sentinel for quota fields.
inline constexpr std::uint64_t kUnlimited = ~std::uint64_t{0};

/// Per-tenant admission and scheduling policy.
struct TenantConfig {
  /// Max in-flight (queued + running) tasks; 0 admits nothing.
  std::uint64_t submit_quota = kUnlimited;
  /// Max queued (output-queue) tasks; 0 admits nothing.
  std::uint64_t max_queue_depth = kUnlimited;
  /// Weighted-fair claim share relative to other tenants (must be > 0).
  double weight = 1.0;
};

/// One tenant's accounting snapshot.
struct TenantStats {
  TenantId tenant;
  TenantConfig config;
  std::int64_t queued = 0;     // admitted, not yet claimed
  std::int64_t running = 0;    // claimed, not yet finished
  std::uint64_t admitted = 0;  // tasks past admission control, lifetime
  std::uint64_t rejected = 0;  // submits refused at the front door
  std::uint64_t claimed = 0;   // tasks handed to pools
  std::uint64_t completed = 0; // tasks finished (reported or canceled)
  double cost_task_seconds = 0.0;  // accumulated task runtime (cost unit)
};

class TenantRegistry {
 public:
  TenantRegistry() = default;
  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  // --- identity --------------------------------------------------------------

  /// Register a tenant principal. kInvalidArgument for an empty id or a
  /// non-positive weight; kConflict if already registered.
  Status register_tenant(const TenantId& tenant, TenantConfig config = {});

  /// Replace a registered tenant's policy. Shrinking a quota below the
  /// current depth is allowed: live tasks are untouched, new submits are
  /// refused until the backlog drains under the new bound.
  Status set_config(const TenantId& tenant, TenantConfig config);

  bool registered(const TenantId& tenant) const;
  Result<TenantConfig> config(const TenantId& tenant) const;

  // --- admission control -----------------------------------------------------

  /// Admit `n` submits for `tenant`, atomically against concurrent claims
  /// and releases: kPermissionDenied for an unknown tenant,
  /// kResourceExhausted when the quota or queue-depth bound would be
  /// crossed; on success the tenant's depth is charged immediately. The
  /// empty tenant is always admitted (legacy single-tenant traffic).
  Status admit(const TenantId& tenant, std::size_t n);

  /// Compensate an admit whose submit transaction failed to commit.
  void unadmit(const TenantId& tenant, std::size_t n);

  // --- lifecycle accounting (queued <-> running <-> done) --------------------

  /// Tasks moved queued -> running by a claim.
  void on_claimed(const TenantId& tenant, std::size_t n);
  /// Tasks moved running -> queued (lease expiry, pool stop).
  void on_requeued(const TenantId& tenant, std::size_t n);
  /// A task left the system: releases its in-flight slot. `from_queue` says
  /// it was canceled while still queued; `cycle_seconds` (>= 0) feeds the
  /// per-tenant task-cycle histogram; `run_seconds` accumulates cost.
  void on_finished(const TenantId& tenant, std::size_t n, bool from_queue,
                   double cycle_seconds, double run_seconds);

  /// Re-seed a tenant's depth counters from restored database state (crash
  /// recovery: the registry is in-memory and restarts empty).
  void sync_depths(const TenantId& tenant, std::int64_t queued,
                   std::int64_t running);

  // --- weighted-fair scheduling ----------------------------------------------

  /// Of the backlogged `candidates`, the tenant to serve next: minimum
  /// virtual pass, ties broken by id. Unknown / untenanted candidates
  /// participate at the default weight. Empty input returns "".
  TenantId pick_next(const std::vector<TenantId>& candidates);

  /// Advance `tenant`'s virtual pass by `n` claimed tasks (stride
  /// scheduling: pass += n * kStrideScale / weight, floored at the global
  /// virtual time so returning-from-idle tenants cannot bank service).
  void charge(const TenantId& tenant, std::size_t n);

  // --- introspection ---------------------------------------------------------

  /// Every registered tenant's snapshot plus, when it carries traffic, the
  /// untenanted principal (id ""), sorted by tenant id.
  std::vector<TenantStats> stats() const;
  Result<TenantStats> stats_for(const TenantId& tenant) const;
  std::size_t tenant_count() const;

 private:
  struct State {
    TenantConfig config;
    bool is_registered = false;
    std::int64_t queued = 0;
    std::int64_t running = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t claimed = 0;
    std::uint64_t completed = 0;
    double cost_task_seconds = 0.0;
    double pass = 0.0;  // stride-scheduling virtual finish time
    // Telemetry handles, acquired once per tenant (obs handles are stable).
    obs::Counter* obs_admitted = nullptr;
    obs::Counter* obs_rejected = nullptr;
    obs::Counter* obs_claimed = nullptr;
    obs::Counter* obs_completed = nullptr;
    obs::Gauge* obs_queued = nullptr;
    obs::Gauge* obs_running = nullptr;
    obs::Gauge* obs_cost = nullptr;
    obs::Histogram* obs_cycle = nullptr;
  };

  /// Find-or-create (unregistered entries track the untenanted principal
  /// and unknown claim-side tenants at default policy). Caller holds mutex_.
  State& state_locked(const TenantId& tenant);
  TenantStats snapshot_locked(const TenantId& tenant, const State& s) const;

  mutable std::mutex mutex_;
  std::map<TenantId, State> tenants_;
  double vtime_ = 0.0;  // max pass ever served; the returning-tenant floor
};

}  // namespace osprey::tenant

// The §VI optimization workflow, written against the futures API the way
// Listing 2 of the paper writes it in Python:
//
//   submit initial samples -> futures
//   while tasks remain:
//     ft = pop_completed(futures)
//     tasks, new_priority = update(ft.result())   # retrain GPR, re-rank
//     update_priority(futures, new_priority)
//
// Scaled down from the paper's 750 tasks / 33-worker Bebop node to
// 120 tasks / 8 threads so it runs in a few seconds on a laptop. The
// reprioritization math (GPR on completed results, promising-first ranks)
// is identical to the paper's.
#include <cstdio>

#include "osprey/core/clock.h"
#include "osprey/eqsql/future.h"
#include "osprey/eqsql/service.h"
#include "osprey/json/json.h"
#include "osprey/me/gpr.h"
#include "osprey/me/sampler.h"
#include "osprey/me/task_runners.h"
#include "osprey/pool/threaded_pool.h"

using namespace osprey;

int main() {
  constexpr WorkType kSimWork = 1;
  constexpr int kSamples = 120;
  constexpr int kDim = 4;
  constexpr int kRetrainEvery = 20;

  RealClock clock;
  eqsql::EmewsService service(clock);
  if (!service.start().is_ok()) return 1;
  // Waits below ride commit-driven wakeups (DESIGN.md Â§5.10) instead of the
  // Listing-1 poll cadence; WaitSpec's kAuto default picks them up.
  if (!service.enable_notifications().is_ok()) return 1;
  auto api = service.connect().take();

  // Initial sample set (the paper uses 750 uniform 4-D points).
  Rng rng(2023);
  auto samples = me::uniform_samples(rng, kSamples, kDim, -32.768, 32.768);
  std::vector<std::string> payloads;
  payloads.reserve(samples.size());
  for (const auto& p : samples) payloads.push_back(json::array_of(p).dump());
  auto futures =
      eqsql::submit_task_futures(*api, "ackley_gpr", kSimWork, payloads)
          .take();
  // Remember each task's point for GPR training.
  std::map<TaskId, me::Point> points;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    points[futures[i].task_id()] = samples[i];
  }
  std::printf("submitted %d 4-D Ackley tasks\n", kSamples);

  // Worker pool (threaded, millisecond-scale lognormal runtimes).
  pool::PoolConfig config;
  config.name = "ackley_pool";
  config.work_type = kSimWork;
  config.num_workers = 8;
  config.batch_size = 8;
  config.threshold = 1;
  config.poll_interval = 0.005;
  config.idle_shutdown = 0.5;
  pool::ThreadedWorkerPool pool(*api, config,
                                me::ackley_threaded_runner(0.03, 0.5, 11));
  if (!pool.start().is_ok()) return 1;

  me::GprConfig gpr_config;
  gpr_config.lengthscale = 10.0;
  gpr_config.noise = 1e-4;

  std::vector<me::Point> train_x;
  std::vector<double> train_y;
  double best = 1e300;
  int completed = 0;
  int retrains = 0;

  while (!futures.empty()) {
    // Listing 2, line 13: pop the next completed future.
    auto done = eqsql::pop_completed(futures, eqsql::WaitSpec::notify(30.0));
    if (!done.ok()) {
      std::fprintf(stderr, "pop_completed: %s\n",
                   done.error().to_string().c_str());
      return 1;
    }
    auto result = json::parse(done.value().try_result().value()).value();
    double y = result["y"].as_double();
    train_x.push_back(points.at(done.value().task_id()));
    train_y.push_back(y);
    ++completed;
    if (y < best) {
      best = y;
      std::printf("[%3d done] new best %.4f\n", completed, best);
    }

    // Every kRetrainEvery completions: retrain the GPR and reprioritize the
    // remaining tasks (Listing 2, lines 15-16).
    if (completed % kRetrainEvery == 0 && !futures.empty()) {
      me::GPR model(gpr_config);
      if (model.fit(train_x, train_y).is_ok()) {
        std::vector<me::Point> remaining;
        remaining.reserve(futures.size());
        for (const auto& ft : futures) {
          remaining.push_back(points.at(ft.task_id()));
        }
        auto priorities = me::promising_first_priorities(model, remaining);
        auto updated = eqsql::update_priority(futures, priorities);
        ++retrains;
        std::printf("[%3d done] retrain #%d on %zu results; reprioritized "
                    "%zu of %zu remaining tasks\n",
                    completed, retrains, train_x.size(),
                    updated.ok() ? updated.value() : 0, futures.size());
      }
    }
  }

  pool.wait_until_shutdown(5.0);
  service.stop();
  std::printf("\nfinished %d evaluations, %d reprioritizations\n", completed,
              retrains);
  std::printf("best Ackley value: %.4f (global minimum is 0; random 4-D "
              "points average ~21)\n", best);
  return best < 21.0 ? 0 : 1;
}

#include "osprey/proxystore/store.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace osprey::proxystore {

// --- LocalStore --------------------------------------------------------------

Status LocalStore::put(const Key& key, std::string bytes) {
  blobs_[key] = std::move(bytes);
  return Status::ok();
}

Result<std::string> LocalStore::get(const Key& key) {
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return Error(ErrorCode::kNotFound, "no proxy blob '" + key + "'");
  }
  return it->second;
}

bool LocalStore::exists(const Key& key) const { return blobs_.count(key) > 0; }

Status LocalStore::evict(const Key& key) {
  if (blobs_.erase(key) == 0) {
    return Status(ErrorCode::kNotFound, "no proxy blob '" + key + "'");
  }
  return Status::ok();
}

// --- FileStore ---------------------------------------------------------------

FileStore::FileStore(std::string directory) : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
}

std::string FileStore::path_for(const Key& key) const {
  // Keys may contain path-hostile characters; hex-encode them.
  static constexpr char kHex[] = "0123456789abcdef";
  std::string name;
  name.reserve(key.size() * 2);
  for (unsigned char c : key) {
    name += kHex[c >> 4];
    name += kHex[c & 0xF];
  }
  return directory_ + "/" + name + ".blob";
}

Status FileStore::put(const Key& key, std::string bytes) {
  std::ofstream out(path_for(key), std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status(ErrorCode::kUnavailable,
                  "cannot write blob file for '" + key + "'");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return Status(ErrorCode::kUnavailable, "short write for '" + key + "'");
  }
  return Status::ok();
}

Result<std::string> FileStore::get(const Key& key) {
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in) {
    return Error(ErrorCode::kNotFound, "no proxy blob '" + key + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool FileStore::exists(const Key& key) const {
  std::error_code ec;
  return std::filesystem::exists(path_for(key), ec);
}

Status FileStore::evict(const Key& key) {
  std::error_code ec;
  if (!std::filesystem::remove(path_for(key), ec) || ec) {
    return Status(ErrorCode::kNotFound, "no proxy blob '" + key + "'");
  }
  return Status::ok();
}

// --- RedisStore --------------------------------------------------------------

RedisStore::RedisStore(const net::Network& network, net::SiteName host_site)
    : network_(network), host_site_(std::move(host_site)) {}

Status RedisStore::put(const Key& key, std::string bytes) {
  blobs_[key] = std::move(bytes);
  return Status::ok();
}

Result<std::string> RedisStore::get(const Key& key) {
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return Error(ErrorCode::kNotFound, "no proxy blob '" + key + "'");
  }
  return it->second;
}

bool RedisStore::exists(const Key& key) const { return blobs_.count(key) > 0; }

Status RedisStore::evict(const Key& key) {
  if (blobs_.erase(key) == 0) {
    return Status(ErrorCode::kNotFound, "no proxy blob '" + key + "'");
  }
  return Status::ok();
}

Duration RedisStore::access_cost(const Key& key,
                                 const net::SiteName& site) const {
  auto it = blobs_.find(key);
  Bytes bytes = it == blobs_.end() ? 0 : it->second.size();
  // One request latency to the Redis host plus payload movement back.
  return network_.latency(site, host_site_) +
         network_.transfer_duration(host_site_, site, bytes);
}

// --- GlobusStore -------------------------------------------------------------

GlobusStore::GlobusStore(transfer::TransferService& transfers,
                         net::SiteName home_site)
    : transfers_(transfers), home_site_(std::move(home_site)) {}

Status GlobusStore::put(const Key& key, std::string bytes) {
  return transfers_.store().put(home_site_, key, std::move(bytes));
}

Result<std::string> GlobusStore::get(const Key& key) {
  return transfers_.store().get(home_site_, key);
}

bool GlobusStore::exists(const Key& key) const {
  return transfers_.store().exists(home_site_, key);
}

Status GlobusStore::evict(const Key& key) {
  return transfers_.store().erase(home_site_, key);
}

Duration GlobusStore::access_cost(const Key& key,
                                  const net::SiteName& site) const {
  Result<Bytes> bytes = transfers_.store().size(home_site_, key);
  if (!bytes.ok()) return 0.0;
  return transfers_.estimate(home_site_, site, bytes.value());
}

}  // namespace osprey::proxystore

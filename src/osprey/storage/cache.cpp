#include "osprey/storage/cache.h"

#include <utility>

namespace osprey::storage {

BlockCache::Block BlockCache::get(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->block;
}

void BlockCache::put(const std::string& key, Block block) {
  if (capacity_ == 0) return;
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->block = std::move(block);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(block)});
  map_[key] = lru_.begin();
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void BlockCache::erase_segment(const std::string& segment) {
  const std::string prefix = segment + ":";
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.compare(0, prefix.size(), prefix) == 0) {
      map_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void BlockCache::clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace osprey::storage

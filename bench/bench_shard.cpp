// Sharded task-database scaling (DESIGN.md §5.11): aggregate submit/claim
// throughput as shards are added, 1 -> 2 -> 4.
//
// Shards share nothing — no common WAL, no cross-shard transactions — so a
// deployment runs each shard's database on its own resource and the
// campaign's ops proceed on all shards concurrently. This harness drives
// the real ShardRouter against real shard databases and *measures* every
// operation's service time, but charges it to the owning shard's lane; the
// modeled campaign makespan is the busiest lane (the parallel completion
// time on a one-resource-per-shard deployment), which makes the scaling
// claim honest on a single-core CI box where the shards cannot actually
// run concurrently. The serial total (sum of lanes) is reported alongside
// so the model is auditable: speedup = serial / makespan, bounded by the
// shard count and by key skew.
//
// Workload: 1536 tasks over 16 work types under kRange/width-1 keying
// (type t owns shard t % N — a uniform split), submit -> batched claim ->
// report, the three-transaction shape a real campaign writes per task.
//
// Prints the table, emits BENCH_shard.json, and enforces the shape checks
// (>= 1.7x at 2 shards, >= 3x at 4); exits nonzero on FAIL.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "osprey/core/clock.h"
#include "osprey/core/log.h"
#include "osprey/net/network.h"
#include "osprey/shard/cluster.h"
#include "osprey/shard/key.h"
#include "osprey/shard/router.h"

using namespace osprey;
using namespace osprey::shard;

namespace {

constexpr int kTasks = 1536;
constexpr int kWorkTypes = 16;
constexpr int kClaimBatch = 16;
constexpr int kReps = 3;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ScalingResult {
  double makespan_s = 0;  // busiest shard lane: modeled parallel completion
  double serial_s = 0;    // sum of lanes: the one-resource cost
  double stats_scatter_s = 0;  // one cross-shard stats() fan-out
};

ScalingResult run_campaign(std::uint32_t shards) {
  ManualClock clock;
  net::Network network = net::Network::testbed();
  ShardClusterConfig config;
  config.spec.shard_count = shards;
  config.spec.scheme = ShardScheme::kRange;
  config.spec.range_width = 1;
  ShardCluster cluster(clock, network, config);
  const char* sites[] = {"bebop", "theta", "midway2", "cloud"};
  for (ShardId s = 0; s < shards; ++s) {
    if (!cluster.create_leader(s, "lead" + std::to_string(s), sites[s % 4])
             .ok()) {
      std::abort();
    }
  }
  ShardRouter router(cluster);

  // Service-time lanes: every op's measured cost lands on its owning shard.
  std::vector<double> lanes(shards, 0.0);
  auto timed = [&](ShardId shard, auto&& op) {
    const double t0 = now_s();
    op();
    lanes[shard] += now_s() - t0;
  };

  for (int i = 0; i < kTasks; ++i) {
    const WorkType type = i % kWorkTypes;
    timed(router.shard_of(type), [&] {
      if (!router.submit_task("bench", type, "{\"x\":1}").ok()) std::abort();
    });
  }
  for (WorkType type = 0; type < kWorkTypes; ++type) {
    const ShardId shard = router.shard_of(type);
    bool drained = false;
    while (!drained) {
      timed(shard, [&] {
        auto claimed = router.try_query_tasks(type, kClaimBatch, "bench");
        if (!claimed.ok()) std::abort();
        drained = claimed.value().empty();
        for (const auto& handle : claimed.value()) {
          if (!router.report_task(handle.eq_task_id, type, "{\"y\":1}")
                   .is_ok()) {
            std::abort();
          }
        }
      });
    }
  }

  ScalingResult result;
  result.makespan_s = *std::max_element(lanes.begin(), lanes.end());
  for (double lane : lanes) result.serial_s += lane;
  const double t0 = now_s();
  auto stats = router.stats();
  result.stats_scatter_s = now_s() - t0;
  if (!stats.ok() || stats.value().complete != kTasks) std::abort();
  return result;
}

/// Median-of-kReps to keep one scheduler hiccup from skewing a lane.
ScalingResult measure(std::uint32_t shards) {
  std::vector<ScalingResult> reps;
  for (int r = 0; r < kReps; ++r) reps.push_back(run_campaign(shards));
  std::sort(reps.begin(), reps.end(),
            [](const ScalingResult& a, const ScalingResult& b) {
              return a.makespan_s < b.makespan_s;
            });
  return reps[kReps / 2];
}

}  // namespace

int main() {
  osprey::set_log_level(osprey::LogLevel::kError);
  std::printf("=== sharded task database: submit/claim scaling ===\n");
  std::printf("%d tasks, %d work types, claim batch %d, median of %d runs\n\n",
              kTasks, kWorkTypes, kClaimBatch, kReps);

  bench::JsonWriter out("shard");
  const std::uint32_t shard_counts[] = {1, 2, 4};
  double speedups[3] = {0, 0, 0};
  double base_makespan = 0;
  std::printf("  shards  makespan(ms)  serial(ms)  tasks/s   speedup\n");
  for (int i = 0; i < 3; ++i) {
    const std::uint32_t n = shard_counts[i];
    const ScalingResult r = measure(n);
    if (i == 0) base_makespan = r.makespan_s;
    speedups[i] = base_makespan / r.makespan_s;
    const double tasks_per_sec = kTasks / r.makespan_s;
    std::printf("  %6u  %12.2f  %10.2f  %8.0f  %6.2fx\n", n,
                r.makespan_s * 1e3, r.serial_s * 1e3, tasks_per_sec,
                speedups[i]);
    json::Object row;
    row["name"] = "submit_claim";
    row["shards"] = static_cast<std::int64_t>(n);
    row["tasks"] = kTasks;
    row["modeled_makespan_s"] = r.makespan_s;
    row["serial_s"] = r.serial_s;
    row["tasks_per_sec"] = tasks_per_sec;
    row["speedup_vs_1"] = speedups[i];
    row["stats_scatter_s"] = r.stats_scatter_s;
    out.add(std::move(row));
  }
  out.write();

  std::printf("\n--- shape checks ---\n");
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok) ++failures;
  };
  check(speedups[1] >= 1.7,
        "2 shards: >= 1.7x aggregate submit/claim throughput vs 1");
  check(speedups[2] >= 3.0,
        "4 shards: >= 3x aggregate submit/claim throughput vs 1 "
        "(near-linear)");
  return failures == 0 ? 0 : 1;
}

#include "osprey/db/database.h"

#include <cassert>

namespace osprey::db {

Transaction::Transaction(Database& db) : db_(db), lock_(db.mutex()) {
  db_.attach_journal(&journal_);
}

Transaction::~Transaction() {
  if (!finished_) rollback();
}

Status Transaction::commit() {
  assert(!finished_ && "commit on finished transaction");
  if (finished_) {
    return Status(ErrorCode::kConflict, "commit on finished transaction");
  }
  if (db_.observer_ && !journal_.empty()) {
    // Durability gate: the observer (WAL) must persist the mutations before
    // they are acknowledged. On failure the transaction rolls back so memory
    // never gets ahead of the log.
    Status logged = db_.observer_->on_commit(db_, journal_);
    if (!logged.is_ok()) {
      rollback();
      return logged;
    }
  }
  db_.detach_journal();
  journal_.clear();
  committed_ = true;
  finished_ = true;
  return Status::ok();
}

void Transaction::rollback() {
  if (finished_) return;
  db_.detach_journal();
  db_.apply_undo(journal_);
  journal_.clear();
  finished_ = true;
}

Result<Table*> Database::create_table(const std::string& name, Schema schema) {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  if (tables_.count(name)) {
    return Error(ErrorCode::kConflict, "table '" + name + "' already exists");
  }
  auto table = std::make_unique<Table>(
      name, std::move(schema), store_factory_ ? store_factory_(name) : nullptr);
  if (observer_) {
    Status logged = observer_->on_create_table(*table);
    if (!logged.is_ok()) return logged.error();
  }
  // Index creations on this table report back here so the observer sees
  // them (the implicit primary-key index is part of create_table itself).
  table->set_index_hook([this, name](const std::string& column) {
    return observer_ ? observer_->on_create_index(name, column) : Status::ok();
  });
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  return ptr;
}

Status Database::drop_table(const std::string& name) {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status(ErrorCode::kNotFound, "no table '" + name + "'");
  }
  if (observer_) {
    Status logged = observer_->on_drop_table(name);
    if (!logged.is_ok()) return logged;
  }
  tables_.erase(it);
  return Status::ok();
}

void Database::set_commit_observer(CommitObserver* observer) {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  observer_ = observer;
}

void Database::set_store_factory(StoreFactory factory) {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  store_factory_ = std::move(factory);
}

bool Database::in_transaction() const {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  return journal_attached_;
}

Table* Database::table(const std::string& name) {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::table(const std::string& name) const {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::table_names() const {
  std::lock_guard<std::recursive_mutex> guard(mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

void Database::attach_journal(std::vector<UndoRecord>* journal) {
  for (auto& [_, table] : tables_) table->attach_journal(journal);
  journal_attached_ = true;
}

void Database::detach_journal() {
  for (auto& [_, table] : tables_) table->detach_journal();
  journal_attached_ = false;
}

void Database::apply_undo(const std::vector<UndoRecord>& journal) {
  // Reverse order: later mutations are undone first.
  for (auto it = journal.rbegin(); it != journal.rend(); ++it) {
    Table* t = table(it->table);
    assert(t && "journaled table disappeared");
    if (!t) continue;
    switch (it->kind) {
      case UndoRecord::Kind::kInsert:
        t->erase_row(it->row_id);
        t->release_row_id(it->row_id);
        break;
      case UndoRecord::Kind::kUpdate: {
        Status s = t->update_row(it->row_id, it->old_row);
        assert(s.is_ok());
        (void)s;
        break;
      }
      case UndoRecord::Kind::kDelete: {
        Status s = t->restore_row(it->row_id, it->old_row);
        assert(s.is_ok());
        (void)s;
        break;
      }
    }
  }
}

}  // namespace osprey::db

// Tests for the C API (§II-B1e multi-language boundary). Everything here
// goes through the extern "C" surface only — the way a Python/R/Julia FFI
// binding would.
#include <gtest/gtest.h>

#include <thread>

#include "osprey/capi/osprey_c.h"

namespace {

class CApiTest : public ::testing::Test {
 protected:
  CApiTest() {
    service_ = osprey_service_create();
    EXPECT_EQ(osprey_service_start(service_), OSPREY_OK);
    client_ = osprey_client_connect(service_);
    EXPECT_NE(client_, nullptr);
  }
  ~CApiTest() override {
    osprey_client_destroy(client_);
    osprey_service_destroy(service_);
  }

  osprey_service* service_ = nullptr;
  osprey_client* client_ = nullptr;
};

TEST_F(CApiTest, ErrorNamesMatchProtocolStrings) {
  EXPECT_STREQ(osprey_error_name(OSPREY_OK), "OK");
  EXPECT_STREQ(osprey_error_name(OSPREY_E_TIMEOUT), "TIMEOUT");
  EXPECT_STREQ(osprey_error_name(OSPREY_E_PERMISSION_DENIED),
               "PERMISSION_DENIED");
}

TEST_F(CApiTest, ServiceLifecycle) {
  EXPECT_EQ(osprey_service_start(service_), OSPREY_E_CONFLICT);  // running
  EXPECT_EQ(osprey_service_stop(service_), OSPREY_OK);
  EXPECT_EQ(osprey_service_stop(service_), OSPREY_E_CONFLICT);
  EXPECT_EQ(osprey_service_start(service_), OSPREY_OK);
  EXPECT_EQ(osprey_service_start(nullptr), OSPREY_E_INVALID_ARGUMENT);
}

TEST_F(CApiTest, FullTaskCycleThroughCApi) {
  int64_t task_id = 0;
  ASSERT_EQ(osprey_submit_task(client_, "exp_c", 1, "[1.5, 2.5]", 3, "tag0",
                               &task_id),
            OSPREY_OK);
  EXPECT_GT(task_id, 0);

  int status = -1;
  ASSERT_EQ(osprey_task_status(client_, task_id, &status), OSPREY_OK);
  EXPECT_EQ(status, OSPREY_TASK_QUEUED);

  int64_t queued = 0;
  ASSERT_EQ(osprey_queued_count(client_, 1, &queued), OSPREY_OK);
  EXPECT_EQ(queued, 1);

  // Worker side: claim, execute, report.
  int64_t claimed_id = 0;
  char payload[256];
  ASSERT_EQ(osprey_query_task(client_, 1, "c_pool", 0.01, 1.0, &claimed_id,
                              payload, sizeof(payload)),
            OSPREY_OK);
  EXPECT_EQ(claimed_id, task_id);
  EXPECT_STREQ(payload, "[1.5, 2.5]");
  ASSERT_EQ(osprey_task_status(client_, task_id, &status), OSPREY_OK);
  EXPECT_EQ(status, OSPREY_TASK_RUNNING);

  ASSERT_EQ(osprey_report_task(client_, claimed_id, 1, "{\"y\": 4.25}"),
            OSPREY_OK);

  // ME side: retrieve the result.
  char result[256];
  ASSERT_EQ(osprey_query_result(client_, task_id, 0.01, 1.0, result,
                                sizeof(result)),
            OSPREY_OK);
  EXPECT_STREQ(result, "{\"y\": 4.25}");
  ASSERT_EQ(osprey_task_status(client_, task_id, &status), OSPREY_OK);
  EXPECT_EQ(status, OSPREY_TASK_COMPLETE);
}

TEST_F(CApiTest, QueryTaskTimesOut) {
  int64_t id = 0;
  char payload[64];
  EXPECT_EQ(osprey_query_task(client_, 1, "p", 0.005, 0.02, &id, payload,
                              sizeof(payload)),
            OSPREY_E_TIMEOUT);
}

TEST_F(CApiTest, BufferTooSmallFailsWithoutOverflow) {
  int64_t task_id = 0;
  ASSERT_EQ(osprey_submit_task(client_, "exp", 1,
                               "[1234567890, 1234567890, 1234567890]", 0,
                               nullptr, &task_id),
            OSPREY_OK);
  int64_t claimed = 0;
  char tiny[4];
  EXPECT_EQ(osprey_query_task(client_, 1, "p", 0.005, 0.05, &claimed, tiny,
                              sizeof(tiny)),
            OSPREY_E_INVALID_ARGUMENT);
}

TEST_F(CApiTest, CancelAndReprioritizeBatches) {
  int64_t ids[3];
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(osprey_submit_task(client_, "exp", 1, "[1]", 0, nullptr,
                                 &ids[i]),
              OSPREY_OK);
  }
  // Element-wise priorities: invert the order.
  int priorities[3] = {1, 2, 3};
  size_t updated = 0;
  ASSERT_EQ(osprey_update_priorities(client_, ids, 3, priorities, 3, &updated),
            OSPREY_OK);
  EXPECT_EQ(updated, 3u);
  // Highest priority pops first.
  int64_t claimed = 0;
  char payload[32];
  ASSERT_EQ(osprey_query_task(client_, 1, "p", 0.005, 0.5, &claimed, payload,
                              sizeof(payload)),
            OSPREY_OK);
  EXPECT_EQ(claimed, ids[2]);

  size_t canceled = 0;
  ASSERT_EQ(osprey_cancel_tasks(client_, ids, 3, &canceled), OSPREY_OK);
  // cancel covers both queued tasks and the running (claimed) one.
  EXPECT_EQ(canceled, 3u);
  int status = -1;
  ASSERT_EQ(osprey_task_status(client_, ids[2], &status), OSPREY_OK);
  EXPECT_EQ(status, OSPREY_TASK_CANCELED);
}

TEST_F(CApiTest, NullArgumentsRejected) {
  int64_t id = 0;
  EXPECT_EQ(osprey_submit_task(nullptr, "e", 1, "[1]", 0, nullptr, &id),
            OSPREY_E_INVALID_ARGUMENT);
  EXPECT_EQ(osprey_submit_task(client_, nullptr, 1, "[1]", 0, nullptr, &id),
            OSPREY_E_INVALID_ARGUMENT);
  EXPECT_EQ(osprey_submit_task(client_, "e", 1, "[1]", 0, nullptr, nullptr),
            OSPREY_E_INVALID_ARGUMENT);
  EXPECT_EQ(osprey_report_task(client_, 1, 1, nullptr),
            OSPREY_E_INVALID_ARGUMENT);
  EXPECT_EQ(osprey_client_connect(nullptr), nullptr);
}

TEST_F(CApiTest, TwoClientsShareTheQueue) {
  // A producer client and a consumer client, as two language runtimes
  // sharing one EMEWS service would.
  osprey_client* producer = osprey_client_connect(service_);
  osprey_client* consumer = osprey_client_connect(service_);
  ASSERT_NE(producer, nullptr);
  ASSERT_NE(consumer, nullptr);
  int64_t task_id = 0;
  ASSERT_EQ(osprey_submit_task(producer, "x", 7, "[9]", 0, nullptr, &task_id),
            OSPREY_OK);
  int64_t claimed = 0;
  char payload[32];
  ASSERT_EQ(osprey_query_task(consumer, 7, "w", 0.005, 0.5, &claimed, payload,
                              sizeof(payload)),
            OSPREY_OK);
  EXPECT_EQ(claimed, task_id);
  osprey_client_destroy(producer);
  osprey_client_destroy(consumer);
}

}  // namespace

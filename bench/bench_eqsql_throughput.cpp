// EQSQL task-queue throughput: the §IV-C submit/claim/report cycle under
// various batch sizes, plus batch submission. The claim batch size is the
// worker pool's query batch (§IV-D) — larger claims amortize the per-query
// transaction cost, which is the quantitative basis of Fig 3's cache effect.
#include <benchmark/benchmark.h>

#include "osprey/core/clock.h"
#include "osprey/eqsql/db_api.h"
#include "osprey/eqsql/schema.h"

using namespace osprey;
using namespace osprey::eqsql;

namespace {

constexpr WorkType kWork = 1;

struct Fixture {
  Fixture() : conn(db) {
    (void)create_schema(conn);
    api = std::make_unique<EQSQL>(db, clock);
  }
  db::Database db;
  db::sql::Connection conn;
  ManualClock clock;
  std::unique_ptr<EQSQL> api;
};

void BM_SubmitTask(benchmark::State& state) {
  Fixture fx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.api->submit_task("bench", kWork, "[1.0, 2.0, 3.0, 4.0]"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubmitTask);

void BM_SubmitBatch(benchmark::State& state) {
  Fixture fx;
  std::vector<std::string> payloads(static_cast<std::size_t>(state.range(0)),
                                    "[1.0, 2.0, 3.0, 4.0]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.api->submit_tasks("bench", kWork, payloads));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SubmitBatch)->Arg(50)->Arg(750);

void BM_ClaimBatch(benchmark::State& state) {
  Fixture fx;
  const int batch = static_cast<int>(state.range(0));
  // Pre-fill enough tasks that claims never run dry mid-iteration.
  std::vector<std::string> payloads(4096, "[1]");
  (void)fx.api->submit_tasks("bench", kWork, payloads);
  std::vector<TaskHandle> claimed;
  for (auto _ : state) {
    auto handles = fx.api->try_query_tasks(kWork, batch, "pool");
    benchmark::DoNotOptimize(handles);
    if (handles.ok() && handles.value().size() < static_cast<std::size_t>(batch)) {
      state.PauseTiming();
      (void)fx.api->submit_tasks("bench", kWork, payloads);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ClaimBatch)->Arg(1)->Arg(8)->Arg(33)->Arg(50);

void BM_FullTaskCycle(benchmark::State& state) {
  // submit -> claim -> report -> query_result, the complete §IV-C loop.
  Fixture fx;
  for (auto _ : state) {
    TaskId id = fx.api->submit_task("bench", kWork, "[1]").value();
    auto handles = fx.api->try_query_tasks(kWork, 1, "pool");
    (void)fx.api->report_task(handles.value()[0].eq_task_id, kWork, "{\"y\":1}");
    benchmark::DoNotOptimize(fx.api->try_query_result(id));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullTaskCycle);

void BM_RequeuePoolTasks(benchmark::State& state) {
  // Crash-recovery path: requeue all of a failed pool's running tasks.
  Fixture fx;
  std::vector<std::string> payloads(static_cast<std::size_t>(state.range(0)),
                                    "[1]");
  for (auto _ : state) {
    state.PauseTiming();
    (void)fx.api->submit_tasks("bench", kWork, payloads);
    (void)fx.api->try_query_tasks(kWork, static_cast<int>(state.range(0)),
                                  "doomed");
    state.ResumeTiming();
    benchmark::DoNotOptimize(fx.api->requeue_pool_tasks("doomed"));
    state.PauseTiming();
    // Drain the requeued tasks so the next iteration starts clean.
    auto handles = fx.api->try_query_tasks(
        kWork, static_cast<int>(state.range(0)), "drain");
    for (const auto& h : handles.value()) {
      (void)fx.api->report_task(h.eq_task_id, kWork, "{}");
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RequeuePoolTasks)->Arg(33);

void BM_StatusBatch(benchmark::State& state) {
  Fixture fx;
  std::vector<std::string> payloads(static_cast<std::size_t>(state.range(0)),
                                    "[1]");
  auto ids = fx.api->submit_tasks("bench", kWork, payloads).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.api->task_statuses(ids));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StatusBatch)->Arg(100)->Arg(750);

}  // namespace

BENCHMARK_MAIN();

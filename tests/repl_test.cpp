// The replication plane (osprey/repl): WAL shipping, read replicas, and
// leader failover over the EMEWS task database.
//
// The matrix mirrors DESIGN.md §"Replication & failover":
//  - WalCursor streams whole committed units, survives checkpoint
//    truncation by demanding a re-bootstrap, and replays bit-identically;
//  - apply_batch is idempotent by LSN (duplicates no-op, gaps reject,
//    stale epochs fence);
//  - followers bootstrap from a consistent leader snapshot and catch up;
//  - the shipping channel shrugs off dropped / duplicated / reordered
//    batches and partitions (fault plane + retry plane);
//  - a follower killed mid-catch-up restarts from its own log;
//  - leader death promotes the most-caught-up follower deterministically,
//    under an epoch that fences every straggler, preserving exactly-once
//    report_task;
//  - ReplRouter serves bounded-staleness reads off replicas and keeps
//    every write on the leader;
//  - the whole plane is observable (osprey_repl_* metrics, epoch logs);
//  - shipper and writers run concurrently (the TSan test).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/core/fault.h"
#include "osprey/core/log.h"
#include "osprey/db/dump.h"
#include "osprey/db/wal.h"
#include "osprey/eqsql/service.h"
#include "osprey/faas/endpoint.h"
#include "osprey/json/json.h"
#include "osprey/obs/telemetry.h"
#include "osprey/repl/group.h"
#include "osprey/repl/node.h"
#include "osprey/repl/remote.h"
#include "osprey/repl/router.h"

namespace osprey::repl {
namespace {

namespace wal = db::wal;

constexpr WorkType kWork = 7;

/// Everything a single-process replication test needs, wired together.
struct Cluster {
  ManualClock clock;
  net::Network network = net::Network::testbed();
  FaultRegistry faults{clock, 0x5e91};
  ReplicationGroup group;

  explicit Cluster(ReplConfig config = {}) : group(clock, network, config) {
    network.set_fault_registry(&faults);
    group.set_fault_registry(&faults);
  }
};

std::unique_ptr<eqsql::EQSQL> api_for(ReplicaNode* node) {
  Result<std::unique_ptr<eqsql::EQSQL>> api = node->connect();
  EXPECT_TRUE(api.ok());
  return std::move(api).take();
}

/// Submit `n` tasks on the leader; claim-and-complete the first `complete_n`.
std::vector<TaskId> run_tasks(ReplicaNode* leader, int n, int complete_n,
                              const std::string& exp = "repl") {
  std::unique_ptr<eqsql::EQSQL> api = api_for(leader);
  std::vector<TaskId> ids;
  for (int i = 0; i < n; ++i) {
    Result<TaskId> id = api->submit_task(
        exp, kWork, "{\"x\":" + std::to_string(i) + "}");
    EXPECT_TRUE(id.ok());
    if (id.ok()) ids.push_back(id.value());
  }
  for (int i = 0; i < complete_n; ++i) {
    Result<std::vector<eqsql::TaskHandle>> claimed =
        api->try_query_tasks(kWork, 1);
    EXPECT_TRUE(claimed.ok());
    if (!claimed.ok() || claimed.value().empty()) break;
    EXPECT_TRUE(api->report_task(claimed.value().front().eq_task_id, kWork,
                                 "{\"y\":" + std::to_string(i) + "}")
                    .is_ok());
  }
  return ids;
}

std::string dump_of(ReplicaNode* node) {
  return db::dump_database(node->database()).dump();
}

// --- WalCursor ---------------------------------------------------------------

TEST(WalCursorTest, StreamsCommittedUnitsInOrderAndReplaysExactly) {
  Cluster c;
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  run_tasks(leader, 12, 6);

  wal::WalCursor cursor(leader->device(), 1);
  std::vector<wal::Record> all;
  wal::Lsn expect_next = 1;
  while (true) {
    Result<wal::CursorBatch> batch = cursor.next(8);
    ASSERT_TRUE(batch.ok());
    if (batch.value().empty()) break;
    // Batches are contiguous and internally dense.
    EXPECT_EQ(batch.value().first_lsn, expect_next);
    EXPECT_GE(batch.value().transactions, 1u);
    for (const wal::Record& r : batch.value().records) {
      EXPECT_EQ(r.lsn, expect_next);
      ++expect_next;
      all.push_back(r);
    }
    EXPECT_EQ(batch.value().last_lsn, expect_next - 1);
    EXPECT_EQ(cursor.position(), expect_next);
  }
  EXPECT_EQ(expect_next, leader->applied_lsn() + 1);

  // Redo-applying the stream rebuilds the leader database bit-identically.
  db::Database replayed;
  for (const wal::Record& r : all) {
    ASSERT_TRUE(wal::apply_record(replayed, r).is_ok());
  }
  EXPECT_EQ(db::dump_database(replayed).dump(), dump_of(leader));
}

TEST(WalCursorTest, NeverSplitsATransactionAcrossBatches) {
  Cluster c;
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  // submit_tasks writes several inserts in one transaction: a committed unit
  // wider than max_records must still arrive whole.
  std::unique_ptr<eqsql::EQSQL> api = api_for(leader);
  const wal::Lsn before = leader->applied_lsn();
  std::vector<std::string> payloads(10, "{}");
  ASSERT_TRUE(api->submit_tasks("wide", kWork, payloads).ok());

  // A cursor positioned at the transaction's first record must hand it over
  // whole: the record budget of 1 is exceeded rather than torn.
  wal::WalCursor cursor(leader->device(), before + 1);
  Result<wal::CursorBatch> wide = cursor.next(1);
  ASSERT_TRUE(wide.ok());
  ASSERT_FALSE(wide.value().empty());
  EXPECT_GT(wide.value().records.size(), 1u);
  EXPECT_EQ(wide.value().transactions, 1u);
  EXPECT_EQ(wide.value().last_lsn, leader->applied_lsn());
}

TEST(WalCursorTest, CheckpointTruncationPastCursorDemandsRebootstrap) {
  Cluster c;
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  run_tasks(leader, 8, 8);
  ASSERT_TRUE(leader->wal()->checkpoint(leader->database()).ok());
  run_tasks(leader, 2, 0);

  // A cursor behind the checkpoint cannot be served from the log anymore.
  wal::WalCursor stale(leader->device(), 2);
  Result<wal::CursorBatch> batch = stale.next(64);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.code(), ErrorCode::kNotFound);

  // A cursor past it still streams the tail.
  wal::WalCursor fresh(leader->device(), leader->applied_lsn());
  Result<wal::CursorBatch> tail = fresh.next(64);
  ASSERT_TRUE(tail.ok());
  EXPECT_FALSE(tail.value().empty());
}

// --- apply_batch discipline --------------------------------------------------

TEST(ReplicaNodeTest, ApplyBatchDuplicateGapAndFenceDiscipline) {
  Cluster c;
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  ReplicaNode* follower = c.group.add_follower("f1", "theta").value();
  run_tasks(leader, 5, 2);
  ASSERT_TRUE(c.group.pump().ok());
  const wal::Lsn applied = follower->applied_lsn();
  EXPECT_EQ(applied, leader->applied_lsn());

  // Duplicate redelivery: acknowledged as a no-op, state unchanged.
  wal::WalCursor redo(leader->device(), 2);
  Result<wal::CursorBatch> old = redo.next(4);
  ASSERT_TRUE(old.ok());
  ASSERT_FALSE(old.value().empty());
  ShipBatch dup;
  dup.epoch = c.group.epoch();
  dup.first_lsn = old.value().first_lsn;
  dup.last_lsn = old.value().last_lsn;
  dup.records = old.value().records;
  const std::string before = dump_of(follower);
  Result<wal::Lsn> redelivered = follower->apply_batch(dup);
  ASSERT_TRUE(redelivered.ok());
  EXPECT_EQ(redelivered.value(), applied);
  EXPECT_EQ(dump_of(follower), before);

  // LSN gap: rejected so the shipper resyncs.
  ShipBatch gap;
  gap.epoch = c.group.epoch();
  gap.first_lsn = applied + 5;
  gap.last_lsn = applied + 5;
  gap.records.push_back(wal::Record{});
  Result<wal::Lsn> gapped = follower->apply_batch(gap);
  ASSERT_FALSE(gapped.ok());
  EXPECT_EQ(gapped.code(), ErrorCode::kInvalidArgument);

  // Stale epoch: fenced before any LSN logic runs.
  ShipBatch stale;
  stale.epoch = 0;
  stale.first_lsn = applied + 1;
  stale.last_lsn = applied + 1;
  stale.records.push_back(wal::Record{});
  Result<wal::Lsn> fenced = follower->apply_batch(stale);
  ASSERT_FALSE(fenced.ok());
  EXPECT_EQ(fenced.code(), ErrorCode::kConflict);

  // Dead node: unavailable.
  ASSERT_TRUE(c.group.kill("f1").is_ok());
  Result<wal::Lsn> dead = follower->apply_batch(dup);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.code(), ErrorCode::kUnavailable);
}

// --- bootstrap + catch-up ----------------------------------------------------

TEST(ReplicationGroupTest, FollowerBootstrapsMidHistoryAndCatchesUp) {
  Cluster c;
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  run_tasks(leader, 20, 10);

  ReplicaNode* follower = c.group.add_follower("f1", "theta").value();
  // The bootstrap snapshot alone already reflects the first half...
  EXPECT_EQ(follower->applied_lsn(), leader->applied_lsn());
  EXPECT_EQ(dump_of(follower), dump_of(leader));
  EXPECT_GT(c.group.last_bootstrap_duration(), 0.0);

  // ...and shipping carries the second half.
  run_tasks(leader, 20, 20);
  EXPECT_LT(follower->applied_lsn(), leader->applied_lsn());
  Result<PumpStats> pumped = c.group.pump();
  ASSERT_TRUE(pumped.ok());
  EXPECT_GT(pumped.value().batches_shipped, 0u);
  EXPECT_GT(pumped.value().records_shipped, 0u);
  EXPECT_EQ(follower->applied_lsn(), leader->applied_lsn());
  EXPECT_EQ(dump_of(follower), dump_of(leader));

  // status() reports the converged group.
  json::Value status = c.group.status();
  EXPECT_EQ(status["epoch"].as_int(), 1);
  EXPECT_EQ(status["leader"]["id"].as_string(), "lead");
  EXPECT_EQ(status["followers"].as_array().size(), 1u);
  EXPECT_EQ(status["followers"].as_array()[0]["lag_lsns"].as_int(), 0);
}

TEST(ReplicationGroupTest, CheckpointTruncationRebootstrapsLaggingFollower) {
  Cluster c;
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  ASSERT_TRUE(c.group.add_follower("f1", "theta").ok());
  run_tasks(leader, 6, 6);
  // The follower never saw those transactions, and the leader's checkpoint
  // just truncated them out of the log: only a new snapshot can help.
  ASSERT_TRUE(leader->wal()->checkpoint(leader->database()).ok());

  Result<PumpStats> pumped = c.group.pump();
  ASSERT_TRUE(pumped.ok());
  EXPECT_EQ(pumped.value().rebootstraps, 1u);
  ReplicaNode* follower = c.group.node("f1");
  ASSERT_NE(follower, nullptr);
  EXPECT_EQ(follower->applied_lsn(), leader->applied_lsn());
  EXPECT_EQ(dump_of(follower), dump_of(leader));
}

// --- shipping channel misbehavior -------------------------------------------

TEST(ReplicationGroupTest, DroppedBatchesAreRetriedUnderThePolicy) {
  ReplConfig config;
  config.ship_retry = RetryPolicy::immediate(4);
  Cluster c(config);
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  ReplicaNode* follower = c.group.add_follower("f1", "theta").value();
  run_tasks(leader, 4, 4);

  c.faults.fail_next(fault_point::repl_ship_drop(), 2);
  Result<PumpStats> pumped = c.group.pump();
  ASSERT_TRUE(pumped.ok());
  EXPECT_EQ(pumped.value().drops, 2u);
  EXPECT_GT(pumped.value().batches_shipped, 0u);
  EXPECT_EQ(follower->applied_lsn(), leader->applied_lsn());
}

TEST(ReplicationGroupTest, DropBeyondRetryBudgetHealsOnNextPump) {
  ReplConfig config;
  config.ship_retry = RetryPolicy::none();
  Cluster c(config);
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  ReplicaNode* follower = c.group.add_follower("f1", "theta").value();
  run_tasks(leader, 3, 0);

  c.faults.fail_next(fault_point::repl_ship_drop(), 1);
  Result<PumpStats> first = c.group.pump();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().drops, 1u);
  EXPECT_LT(follower->applied_lsn(), leader->applied_lsn());

  Result<PumpStats> second = c.group.pump();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(follower->applied_lsn(), leader->applied_lsn());
}

TEST(ReplicationGroupTest, DuplicatedAndReorderedBatchesConvergeByLsn) {
  ReplConfig config;
  config.max_batch_records = 4;  // several batches in flight: reordering bites
  Cluster c(config);
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  ReplicaNode* follower = c.group.add_follower("f1", "theta").value();
  run_tasks(leader, 8, 4);

  c.faults.fail_next(fault_point::repl_ship_duplicate(), 1);
  c.faults.fail_next(fault_point::repl_ship_reorder(), 1);
  Result<PumpStats> pumped = c.group.pump();
  ASSERT_TRUE(pumped.ok());
  EXPECT_EQ(pumped.value().duplicates_delivered, 1u);
  EXPECT_GE(pumped.value().gap_rejects, 1u);  // the reordered batch bounced
  for (int i = 0; i < 64 && follower->applied_lsn() < leader->applied_lsn();
       ++i) {
    ASSERT_TRUE(c.group.pump().ok());
  }
  EXPECT_EQ(follower->applied_lsn(), leader->applied_lsn());
  EXPECT_EQ(dump_of(follower), dump_of(leader));
}

TEST(ReplicationGroupTest, PartitionedFollowerHealsWithoutDuplication) {
  Cluster c;
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  ReplicaNode* f1 = c.group.add_follower("f1", "theta").value();
  ReplicaNode* f2 = c.group.add_follower("f2", "cloud").value();
  run_tasks(leader, 10, 5);

  c.faults.add_window(fault_point::partition("bebop", "theta"), 0.0, 10.0);
  Result<PumpStats> during = c.group.pump();
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(during.value().partitioned_followers, 1u);
  EXPECT_LT(f1->applied_lsn(), leader->applied_lsn());
  EXPECT_EQ(f2->applied_lsn(), leader->applied_lsn());

  c.clock.advance(20.0);  // the partition heals
  run_tasks(leader, 5, 5);
  // Redeliver everything f1 missed plus a duplicated batch: idempotency by
  // LSN keeps the histories identical.
  c.faults.fail_next(fault_point::repl_ship_duplicate(), 1);
  Result<PumpStats> after = c.group.pump();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().partitioned_followers, 0u);
  EXPECT_EQ(f1->applied_lsn(), leader->applied_lsn());
  EXPECT_EQ(dump_of(f1), dump_of(leader));
  EXPECT_EQ(dump_of(f2), dump_of(leader));
}

// --- follower crash / restart ------------------------------------------------

TEST(ReplicationGroupTest, FollowerKilledMidCatchUpRestartsFromOwnLog) {
  ReplConfig config;
  config.max_batch_records = 4;
  config.max_batches_per_pump = 1;  // freeze the follower mid-catch-up
  Cluster c(config);
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  ReplicaNode* follower = c.group.add_follower("f1", "theta").value();
  run_tasks(leader, 16, 8);

  ASSERT_TRUE(c.group.pump().ok());  // one batch only
  const wal::Lsn mid = follower->applied_lsn();
  EXPECT_GT(mid, 0u);
  EXPECT_LT(mid, leader->applied_lsn());

  // Power loss mid-catch-up; the shipper skips the dead node.
  ASSERT_TRUE(c.group.kill("f1").is_ok());
  Result<PumpStats> skipped = c.group.pump();
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(skipped.value().batches_shipped, 0u);

  // Restart: the follower's own log (bootstrap checkpoint + acknowledged
  // frames) rebuilds exactly the acknowledged state — write-ahead on the
  // follower paid off.
  Result<wal::RecoveryInfo> info = follower->recover_from_disk();
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info.value().used_checkpoint);
  EXPECT_EQ(follower->applied_lsn(), mid);
  EXPECT_EQ(follower->epoch(), c.group.epoch());

  // And shipping resumes where the acknowledgments stopped.
  for (int i = 0; i < 64 && follower->applied_lsn() < leader->applied_lsn();
       ++i) {
    ASSERT_TRUE(c.group.pump().ok());
  }
  EXPECT_EQ(follower->applied_lsn(), leader->applied_lsn());
  EXPECT_EQ(dump_of(follower), dump_of(leader));
}

// --- failover ----------------------------------------------------------------

TEST(ReplicationGroupTest, LeaderDeathPromotesMostCaughtUpUnderNewEpoch) {
  Cluster c;
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  ReplicaNode* f1 = c.group.add_follower("f1", "theta").value();
  ReplicaNode* f2 = c.group.add_follower("f2", "cloud").value();
  run_tasks(leader, 6, 3);
  ASSERT_TRUE(c.group.pump().ok());

  // f1 partitions away; only f2 sees the next stretch of history.
  c.faults.add_window(fault_point::partition("bebop", "theta"), 0.0, 5.0);
  std::vector<TaskId> ids = run_tasks(leader, 6, 6);
  ASSERT_TRUE(c.group.pump().ok());
  EXPECT_LT(f1->applied_lsn(), f2->applied_lsn());
  const wal::Lsn f2_before = f2->applied_lsn();
  EXPECT_EQ(f2_before, leader->applied_lsn());

  // The leader dies mid-batch: more commits land after the last ship.
  run_tasks(leader, 2, 0);
  ASSERT_TRUE(c.group.kill("lead").is_ok());
  ASSERT_FALSE(c.group.pump().ok());  // no live leader

  CaptureSink capture;
  capture.install();
  Result<std::string> promoted = c.group.promote();
  capture.uninstall();
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(promoted.value(), "f2");  // most caught-up wins
  EXPECT_EQ(c.group.epoch(), 2u);
  EXPECT_TRUE(capture.contains("epoch transition: leader failover"));
  EXPECT_EQ(capture.field_value("new_leader"), "f2");

  // The promoted leader continues the same dense LSN sequence: its first own
  // record is the epoch mark right after everything it had applied.
  ReplicaNode* new_leader = c.group.leader();
  ASSERT_EQ(new_leader, f2);
  EXPECT_EQ(new_leader->role(), ReplicaNode::Role::kLeader);
  EXPECT_EQ(new_leader->applied_lsn(), f2_before + 1);
  EXPECT_EQ(new_leader->epoch(), 2u);

  c.clock.advance(10.0);  // heal the partition
  // The lagging follower catches up from the *new* leader and learns the
  // epoch from the replicated record.
  for (int i = 0; i < 64 && f1->applied_lsn() < new_leader->applied_lsn();
       ++i) {
    ASSERT_TRUE(c.group.pump().ok());
  }
  EXPECT_EQ(f1->applied_lsn(), new_leader->applied_lsn());
  EXPECT_EQ(f1->epoch(), 2u);
  EXPECT_EQ(dump_of(f1), dump_of(new_leader));

  // A straggler ship batch from the deposed leader is fenced...
  ShipBatch straggler;
  straggler.epoch = 1;
  straggler.first_lsn = f1->applied_lsn() + 1;
  straggler.last_lsn = straggler.first_lsn;
  straggler.records.push_back(wal::Record{});
  Result<wal::Lsn> fenced = f1->apply_batch(straggler);
  ASSERT_FALSE(fenced.ok());
  EXPECT_EQ(fenced.code(), ErrorCode::kConflict);

  // ...and so is a worker's stale-epoch report: exactly-once survives the
  // failover. The task it raced on stays reportable exactly once at the new
  // epoch.
  ReplRouter router(c.group);
  std::unique_ptr<eqsql::EQSQL> api = api_for(new_leader);
  Result<std::vector<eqsql::TaskHandle>> claimed = api->try_query_tasks(kWork);
  ASSERT_TRUE(claimed.ok());
  ASSERT_FALSE(claimed.value().empty());
  const TaskId task = claimed.value().front().eq_task_id;
  Status stale = router.report_task_at_epoch(1, task, kWork, "{\"y\":1}");
  EXPECT_EQ(stale.error().code, ErrorCode::kConflict);
  EXPECT_EQ(router.fenced_writes(), 1u);
  EXPECT_TRUE(router.report_task_at_epoch(2, task, kWork, "{\"y\":1}").is_ok());
  Status twice = router.report_task(task, kWork, "{\"y\":2}");
  EXPECT_EQ(twice.error().code, ErrorCode::kConflict);
}

TEST(ReplicationGroupTest, PromotionTieBreaksOnLowestIdDeterministically) {
  Cluster c;
  (void)c.group.create_leader("lead", "bebop").value();
  ASSERT_TRUE(c.group.add_follower("fb", "theta").ok());
  ASSERT_TRUE(c.group.add_follower("fa", "cloud").ok());
  run_tasks(c.group.leader(), 4, 2);
  ASSERT_TRUE(c.group.pump().ok());  // both equally caught up
  ASSERT_TRUE(c.group.kill("lead").is_ok());
  Result<std::string> promoted = c.group.promote();
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(promoted.value(), "fa");
}

// --- read routing ------------------------------------------------------------

TEST(ReplRouterTest, DefaultConfigKeepsEveryReadOnTheLeader) {
  Cluster c;
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  ASSERT_TRUE(c.group.add_follower("f1", "theta").ok());
  run_tasks(leader, 3, 0);
  ASSERT_TRUE(c.group.pump().ok());

  ReplRouter router(c.group);  // route_reads_to_replicas defaults to off
  Result<eqsql::QueueStats> stats = router.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().queued, 3);
  EXPECT_EQ(router.leader_reads(), 1u);
  EXPECT_EQ(router.replica_reads(), 0u);
  EXPECT_EQ(router.redirects(), 0u);
}

TEST(ReplRouterTest, BoundedStalenessRoutesToReplicaOrRedirects) {
  RouterConfig rc;
  rc.route_reads_to_replicas = true;
  rc.max_staleness_lsns = 0;  // replicas must be fully caught up
  Cluster c;
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  ASSERT_TRUE(c.group.add_follower("f1", "theta").ok());
  ReplRouter router(c.group, rc);

  std::vector<TaskId> ids = run_tasks(leader, 4, 4);
  // The follower is behind: the read redirects to the leader (and says so).
  Result<eqsql::TaskStatus> behind = router.task_status(ids[0]);
  ASSERT_TRUE(behind.ok());
  EXPECT_EQ(behind.value(), eqsql::TaskStatus::kComplete);
  EXPECT_EQ(router.redirects(), 1u);
  EXPECT_EQ(router.leader_reads(), 1u);

  // Caught up: the replica serves.
  ASSERT_TRUE(c.group.pump().ok());
  Result<eqsql::TaskStatus> replica = router.task_status(ids[0]);
  ASSERT_TRUE(replica.ok());
  EXPECT_EQ(replica.value(), eqsql::TaskStatus::kComplete);
  EXPECT_EQ(router.replica_reads(), 1u);
  EXPECT_EQ(router.redirects(), 1u);

  // A generous staleness bound keeps replica reads flowing mid-stream.
  run_tasks(leader, 1, 0);
  RouterConfig loose = rc;
  loose.max_staleness_lsns = 1000;
  ReplRouter relaxed(c.group, loose);
  ASSERT_TRUE(relaxed.stats().ok());
  EXPECT_EQ(relaxed.replica_reads(), 1u);

  // peek_result_at with an explicit watermark past the replica redirects.
  Result<std::string> watermarked =
      router.peek_result_at(ids[0], leader->applied_lsn() + 100);
  ASSERT_TRUE(watermarked.ok());
  EXPECT_EQ(router.redirects(), 2u);
}

TEST(ReplRouterTest, PeekResultReadsWithoutConsumingTheQueue) {
  Cluster c;
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  ReplRouter router(c.group);
  std::vector<TaskId> ids = run_tasks(leader, 2, 1);

  // Not complete yet: a probe, not an error state.
  Result<std::string> pending = router.peek_result(ids[1]);
  ASSERT_FALSE(pending.ok());
  EXPECT_EQ(pending.code(), ErrorCode::kNotFound);

  // Complete: peek returns the payload, repeatably — nothing is popped.
  Result<std::string> first = router.peek_result(ids[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), router.peek_result(ids[0]).value());

  // The authoritative pickup pops the input queue; the peeks did not.
  Result<eqsql::QueueStats> before_pop = router.stats();
  ASSERT_TRUE(before_pop.ok());
  EXPECT_EQ(before_pop.value().input_queue, 1);
  Result<std::string> popped = router.try_query_result(ids[0]);
  ASSERT_TRUE(popped.ok());
  EXPECT_EQ(popped.value(), first.value());
  Result<eqsql::QueueStats> after_pop = router.stats();
  ASSERT_TRUE(after_pop.ok());
  EXPECT_EQ(after_pop.value().input_queue, 0);

  // Canceled tasks peek as canceled.
  std::unique_ptr<eqsql::EQSQL> api = api_for(leader);
  ASSERT_TRUE(api->cancel_tasks({ids[1]}).ok());
  Result<std::string> canceled = router.peek_result(ids[1]);
  ASSERT_FALSE(canceled.ok());
  EXPECT_EQ(canceled.code(), ErrorCode::kCanceled);
}

TEST(ReplRouterTest, QueryResultPollsThroughThePeeker) {
  Cluster c;
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  ReplRouter router(c.group);

  std::unique_ptr<eqsql::EQSQL> api;
  {
    Result<std::unique_ptr<eqsql::EQSQL>> connected = leader->connect();
    ASSERT_TRUE(connected.ok());
    api = std::move(connected).take();
  }
  std::atomic<int> probes{0};
  eqsql::WaitRouting routing;
  routing.sleeper = [&](Duration d) { c.clock.advance(d); };
  routing.peeker = [&](TaskId id) {
    ++probes;
    return router.peek_result(id);
  };
  api->set_wait_routing(std::move(routing));

  Result<TaskId> id = api->submit_task("poll", kWork, "{}");
  ASSERT_TRUE(id.ok());
  // Nothing reports it: the poll probes through the router until timeout.
  eqsql::WaitSpec spec = eqsql::WaitSpec::poll(0.1, 0.5);
  Result<std::string> timed_out = api->query_result(id.value(), spec);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.code(), ErrorCode::kTimeout);
  EXPECT_GT(probes.load(), 1);

  // Completed: the probe sees it and the leader pop returns the result.
  Result<std::vector<eqsql::TaskHandle>> claimed = api->try_query_tasks(kWork);
  ASSERT_TRUE(claimed.ok());
  ASSERT_TRUE(api->report_task(id.value(), kWork, "{\"y\":9}").is_ok());
  Result<std::string> done = api->query_result(id.value(), spec);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done.value(), "{\"y\":9}");
}

// --- observability -----------------------------------------------------------

TEST(ReplObsTest, ReplicationPlaneIsVisibleFromTelemetryAlone) {
  obs::ScopedTelemetry scoped;
  Cluster c;
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  ASSERT_TRUE(c.group.add_follower("f1", "theta").ok());
  ASSERT_TRUE(c.group.add_follower("f2", "cloud").ok());
  run_tasks(leader, 10, 5);
  c.faults.fail_next(fault_point::repl_ship_drop(), 1);
  c.faults.fail_next(fault_point::repl_ship_duplicate(), 1);
  ASSERT_TRUE(c.group.pump().ok());
  ASSERT_TRUE(c.group.kill("lead").is_ok());
  ASSERT_TRUE(c.group.promote().ok());
  ASSERT_TRUE(c.group.pump().ok());

  obs::MetricsSnapshot snap = obs::telemetry().metrics.snapshot();
  EXPECT_GT(snap.counter_value("osprey_repl_batches_shipped_total"), 0u);
  EXPECT_GT(snap.counter_value("osprey_repl_records_shipped_total"), 0u);
  EXPECT_EQ(snap.counter_value("osprey_repl_ship_drops_total"), 1u);
  EXPECT_EQ(snap.counter_value("osprey_repl_ship_duplicates_total"), 1u);
  EXPECT_EQ(snap.counter_value("osprey_repl_failovers_total"), 1u);
  EXPECT_EQ(snap.gauge_value("osprey_repl_epoch"), 2.0);
  // Lag is exported per replica; after the final pump the survivor is even.
  EXPECT_EQ(snap.gauge_value("osprey_repl_lag_lsns", {{"replica", "f1"}}),
            0.0);
  const obs::HistogramSample* ship =
      snap.find_histogram("osprey_repl_ship_latency_seconds");
  ASSERT_NE(ship, nullptr);
  EXPECT_GT(ship->count, 0u);
  const obs::HistogramSample* failover =
      snap.find_histogram("osprey_repl_failover_duration_seconds");
  ASSERT_NE(failover, nullptr);
  EXPECT_EQ(failover->count, 1u);
}

// --- remote control ----------------------------------------------------------

TEST(ReplRemoteTest, ControlSurfaceDrivesTheGroupOverTheEndpoint) {
  Cluster c;
  ReplicaNode* leader = c.group.create_leader("lead", "bebop").value();
  faas::Endpoint endpoint("repl-ep", "cloud");
  ASSERT_TRUE(register_repl_functions(endpoint, c.group).is_ok());

  Result<json::Value> added =
      endpoint.execute("repl_add_follower",
                       json::parse("{\"id\":\"f1\",\"site\":\"theta\"}").value());
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(added.value()["id"].as_string(), "f1");

  run_tasks(leader, 4, 2);
  Result<json::Value> pumped = endpoint.execute("repl_pump", json::Value());
  ASSERT_TRUE(pumped.ok());
  EXPECT_GT(pumped.value()["batches_shipped"].as_int(), 0);

  Result<json::Value> status = endpoint.execute("repl_status", json::Value());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value()["epoch"].as_int(), 1);
  EXPECT_EQ(status.value()["followers"].as_array()[0]["lag_lsns"].as_int(), 0);

  ASSERT_TRUE(c.group.kill("lead").is_ok());
  Result<json::Value> promoted =
      endpoint.execute("repl_promote", json::Value());
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(promoted.value()["leader"].as_string(), "f1");
  EXPECT_EQ(promoted.value()["epoch"].as_int(), 2);

  Result<json::Value> removed = endpoint.execute(
      "repl_remove_follower", json::parse("{\"id\":\"ghost\"}").value());
  ASSERT_FALSE(removed.ok());
  EXPECT_EQ(removed.code(), ErrorCode::kNotFound);
  Result<json::Value> bad =
      endpoint.execute("repl_add_follower", json::Value());
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kInvalidArgument);
}

// --- service shutdown ordering ----------------------------------------------

TEST(EmewsServiceReplTest, StopFlushesGroupCommitTailBeforeGoingDown) {
  auto disk = std::make_shared<wal::SimDisk>();
  ManualClock clock;
  {
    eqsql::EmewsService service(clock);
    ASSERT_TRUE(service.start().is_ok());
    wal::SimLogDevice device(disk);
    wal::WalOptions lazy;
    lazy.group_commit_txns = 1000;  // nothing syncs on its own
    ASSERT_TRUE(service.enable_wal(device, lazy).is_ok());
    eqsql::EQSQL api(service.database(), clock);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(api.submit_task("flush", kWork, "{}").ok());
    }
    // A graceful stop must flush the group-commit tail before the service
    // stops serving — otherwise the power loss below eats acknowledged tasks.
    ASSERT_TRUE(service.stop().is_ok());
    device.crash();
  }
  eqsql::EmewsService recovered(clock);
  wal::SimLogDevice device(disk);
  Result<wal::RecoveryInfo> info = recovered.recover_from_wal(device);
  ASSERT_TRUE(info.ok());
  Result<eqsql::ServiceStats> stats = recovered.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().tasks_queued, 10);
}

// --- concurrency (TSan) ------------------------------------------------------

TEST(ReplThreadedTest, ConcurrentWritersAndShipperConverge) {
  RealClock clock;
  net::Network network = net::Network::testbed();
  ReplConfig config;
  config.max_batch_records = 32;
  ReplicationGroup group(clock, network, config);
  ReplicaNode* leader = group.create_leader("lead", "bebop").value();
  ReplicaNode* f1 = group.add_follower("f1", "theta").value();
  ReplicaNode* f2 = group.add_follower("f2", "cloud").value();

  // The shipper tails the live leader log while writers commit into it: the
  // cursor must only ever observe whole committed units.
  std::atomic<bool> done{false};
  std::thread shipper([&] {
    while (!done.load(std::memory_order_acquire)) {
      Result<PumpStats> pumped = group.pump();
      EXPECT_TRUE(pumped.ok());
      std::this_thread::yield();
    }
  });

  constexpr int kWriters = 3;
  constexpr int kPerWriter = 60;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Result<std::unique_ptr<eqsql::EQSQL>> connected = leader->connect();
      EXPECT_TRUE(connected.ok());
      if (!connected.ok()) return;
      std::unique_ptr<eqsql::EQSQL> api = std::move(connected).take();
      for (int i = 0; i < kPerWriter; ++i) {
        Result<TaskId> id = api->submit_task(
            "tsan", kWork, "{\"w\":" + std::to_string(w) + "}");
        EXPECT_TRUE(id.ok());
        Result<std::vector<eqsql::TaskHandle>> claimed =
            api->try_query_tasks(kWork, 1);
        EXPECT_TRUE(claimed.ok());
        if (claimed.ok() && !claimed.value().empty()) {
          EXPECT_TRUE(api->report_task(claimed.value().front().eq_task_id,
                                       kWork, "{\"y\":0}")
                          .is_ok());
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  shipper.join();

  // Quiesced: drain the tail and the three histories must be identical.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(group.pump().ok());
    if (f1->applied_lsn() == leader->applied_lsn() &&
        f2->applied_lsn() == leader->applied_lsn()) {
      break;
    }
  }
  EXPECT_EQ(f1->applied_lsn(), leader->applied_lsn());
  EXPECT_EQ(f2->applied_lsn(), leader->applied_lsn());
  EXPECT_EQ(dump_of(f1), dump_of(leader));
  EXPECT_EQ(dump_of(f2), dump_of(leader));
}

}  // namespace
}  // namespace osprey::repl

// The embedded database: a named collection of tables with coarse-grained
// thread safety and journaled transactions.
//
// This is the stand-in for the PostgreSQL instance the paper runs on the HPC
// login node (§IV-C). The fault-tolerance story of the EMEWS DB rests on all
// task state living here — not in the ME process — so multi-table operations
// (e.g. "pop output queue + mark task running") must be atomic. Transaction
// provides that atomicity via an undo journal under a single database mutex,
// the moral equivalent of Postgres's serialized transactions at our scale.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "osprey/db/table.h"

namespace osprey::db {

class Database;

/// Observer of committed mutations and DDL, installed via
/// Database::set_commit_observer. The write-ahead log (db/wal) implements
/// this to make committed state durable before it is acknowledged.
///
/// Every callback runs under the database mutex. on_commit is invoked from
/// Transaction::commit() while the transaction's mutations are still in
/// place (so the observer can read the post-state of every touched row) and
/// may veto the commit by returning an error, in which case the transaction
/// rolls back and commit() reports the error instead.
class CommitObserver {
 public:
  virtual ~CommitObserver() = default;

  /// A transaction with at least one mutation is about to commit. `journal`
  /// lists the mutations in execution order.
  virtual Status on_commit(Database& db,
                           const std::vector<UndoRecord>& journal) = 0;

  /// DDL notifications. These fire before the change takes effect; a non-OK
  /// return aborts the DDL operation. DDL is not transactional (as in most
  /// SQL engines), so these are logged immediately rather than at commit.
  virtual Status on_create_table(const Table& table) = 0;
  virtual Status on_drop_table(const std::string& name) = 0;
  virtual Status on_create_index(const std::string& table,
                                 const std::string& column) = 0;
};

/// RAII transaction guard. Holds the database lock for its lifetime; commit()
/// keeps the mutations, destruction without commit rolls them back.
class Transaction {
 public:
  explicit Transaction(Database& db);
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Keep all mutations made during this transaction. When a CommitObserver
  /// is installed it sees the journal first and may veto: on veto the
  /// mutations are rolled back and the observer's error is returned, so a
  /// write that cannot be made durable is never acknowledged.
  Status commit();

  /// Undo all mutations made so far (also done on destruction if not
  /// committed).
  void rollback();

  bool committed() const { return committed_; }

 private:
  Database& db_;
  std::unique_lock<std::recursive_mutex> lock_;
  std::vector<UndoRecord> journal_;
  bool committed_ = false;
  bool finished_ = false;
};

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Create a table. Fails with kConflict when the name is taken.
  Result<Table*> create_table(const std::string& name, Schema schema);

  /// Drop a table (kNotFound when absent). Not journaled: DDL is not
  /// transactional, as in most SQL engines.
  Status drop_table(const std::string& name);

  /// Look up a table; nullptr when absent.
  Table* table(const std::string& name);
  const Table* table(const std::string& name) const;

  std::vector<std::string> table_names() const;

  /// Install (or with nullptr remove) the commit/DDL observer — the hook the
  /// write-ahead log uses to see every committed mutation. The observer must
  /// outlive the database or be detached first.
  void set_commit_observer(CommitObserver* observer);
  CommitObserver* commit_observer() const { return observer_; }

  /// Row-store factory applied to tables created from here on (the storage
  /// engine seam, DESIGN.md §5.12). Returning nullptr from the factory — or
  /// never installing one — selects the default in-memory MemStore. The
  /// factory's backing engine must outlive every table it built a store for.
  using StoreFactory =
      std::function<std::unique_ptr<storage::RowStore>(const std::string&)>;
  void set_store_factory(StoreFactory factory);

  /// True while a Transaction is open (its undo journal is attached). Used
  /// by the SQL layer to decide whether a standalone DML statement must wrap
  /// itself in an implicit transaction.
  bool in_transaction() const;

  /// The database-wide lock. Public so single statements outside an explicit
  /// Transaction can serialize themselves (execute() does this).
  std::recursive_mutex& mutex() const { return mutex_; }

 private:
  friend class Transaction;

  void attach_journal(std::vector<UndoRecord>* journal);
  void detach_journal();
  void apply_undo(const std::vector<UndoRecord>& journal);

  std::map<std::string, std::unique_ptr<Table>> tables_;
  mutable std::recursive_mutex mutex_;
  CommitObserver* observer_ = nullptr;
  StoreFactory store_factory_;
  bool journal_attached_ = false;
};

}  // namespace osprey::db

// Tests for osprey/core: Result/Status, clocks, RNG, runtime model.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/core/error.h"
#include "osprey/core/log.h"
#include "osprey/core/rng.h"

namespace osprey {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.code(), ErrorCode::kOk);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(ErrorCode::kTimeout, "no task within 2.0s");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kTimeout);
  EXPECT_EQ(r.error().message, "no task within 2.0s");
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).take();
  EXPECT_EQ(s, "payload");
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorRendersProtocolStyleName) {
  // The paper's failure protocol returns status payloads like 'TIMEOUT'.
  Status s(ErrorCode::kTimeout, "polling expired");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.to_string(), "TIMEOUT: polling expired");
}

TEST(ErrorCodeTest, AllNamesDistinct) {
  std::set<std::string> names;
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    names.insert(error_code_name(static_cast<ErrorCode>(c)));
  }
  EXPECT_EQ(names.size(), 10u);
}

TEST(ManualClockTest, AdvanceAndSet) {
  ManualClock clock(10.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
  clock.advance(2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 12.5);
  clock.set(100.0);
  EXPECT_DOUBLE_EQ(clock.now(), 100.0);
}

TEST(RealClockTest, StartsNearZeroAndAdvances) {
  RealClock clock;
  TimePoint t0 = clock.now();
  EXPECT_GE(t0, 0.0);
  EXPECT_LT(t0, 1.0);
  RealClock::sleep_for(0.01);
  EXPECT_GT(clock.now(), t0);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(LognormalRuntimeTest, ZeroSigmaIsConstant) {
  LognormalRuntime model(3.0, 0.0);
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(model.sample(rng), 3.0);
  }
}

TEST(LognormalRuntimeTest, MedianApproximatelyPreserved) {
  // The paper's task sleep is lognormal; the median parameterization must
  // hold: ~half the samples fall below the median.
  LognormalRuntime model(3.0, 0.5);
  Rng rng(11);
  int below = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (model.sample(rng) < 3.0) ++below;
  }
  double fraction = static_cast<double>(below) / n;
  EXPECT_NEAR(fraction, 0.5, 0.02);
}

TEST(LognormalRuntimeTest, AllSamplesPositive) {
  LognormalRuntime model(0.05, 2.0);
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(model.sample(rng), 0.0);
  }
}

TEST(SeedSequenceTest, StreamsAreDeterministicAndDistinct) {
  SeedSequence a(42);
  SeedSequence b(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    seen.insert(va);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(LogTest, ThresholdSuppresses) {
  LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  // Must not crash and must be cheap; nothing to assert beyond no-crash.
  OSPREY_LOG(kError, "test") << "suppressed " << 42;
  set_log_level(original);
}

TEST(LogTest, CaptureSinkSeesStructuredFields) {
  LogLevel original = log_level();
  set_log_level(LogLevel::kInfo);
  CaptureSink capture;
  capture.install();

  OSPREY_LOG(kInfo, "pool") << "worker " << 3 << " started"
                            << log_field("pool", "p1")
                            << log_field("workers", 33);
  OSPREY_LOG(kDebug, "pool") << "below threshold";  // discarded
  OSPREY_LOG(kWarn, "db") << "slow query";

  EXPECT_EQ(capture.count(), 2u);
  EXPECT_EQ(capture.count_at(LogLevel::kInfo), 1u);
  EXPECT_EQ(capture.count_at(LogLevel::kWarn), 1u);
  EXPECT_TRUE(capture.contains("worker 3 started"));
  EXPECT_FALSE(capture.contains("below threshold"));
  EXPECT_EQ(capture.field_value("pool"), "p1");
  EXPECT_EQ(capture.field_value("workers"), "33");
  EXPECT_EQ(capture.field_value("absent"), "");

  std::vector<LogRecord> records = capture.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].component, "pool");
  ASSERT_EQ(records[0].fields.size(), 2u);
  EXPECT_EQ(records[0].fields[0].key, "pool");
  EXPECT_EQ(records[0].flatten(), "worker 3 started pool=p1 workers=33");

  capture.clear();
  EXPECT_EQ(capture.count(), 0u);
  capture.uninstall();
  // After uninstall, records go back to stderr, not the buffer.
  OSPREY_LOG(kWarn, "test") << "not captured";
  EXPECT_EQ(capture.count(), 0u);
  set_log_level(original);
}

TEST(LogTest, ThresholdIsAtomicAcrossThreads) {
  LogLevel original = log_level();
  CaptureSink capture;
  capture.install();
  set_log_level(LogLevel::kWarn);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 500; ++i) {
        if (t == 0 && i % 100 == 0) {
          set_log_level(i % 200 == 0 ? LogLevel::kError : LogLevel::kWarn);
        }
        OSPREY_LOG(kWarn, "stress") << "line " << i
                                    << log_field("thread", t);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Everything captured was at or above some threshold in force; the point
  // of the test is the TSan-clean concurrent threshold reads and sink writes.
  EXPECT_GT(capture.count(), 0u);
  set_log_level(original);
}

}  // namespace
}  // namespace osprey

/* The v1 ABI guard: a pure-C caller written the way pre-v2 integrations
 * were, compiled as C11 against today's headers and linked against today's
 * library. Two layers of protection:
 *
 *  - _Static_asserts pin the v1 struct layouts (sizes and field offsets)
 *    and the error / wait / shard enum values. The v2 redesign is additive
 *    — if any of these fire, an already-deployed binary would misread
 *    memory across the library boundary.
 *  - main() runs a v1-only submit -> claim -> report -> result round trip,
 *    exactly as a pre-v2 caller would, against the current implementation
 *    (whose v1 entry points are wrappers over the v2 internals).
 *
 * Built with OSPREY_ALLOW_DEPRECATED: exercising the deprecated surface is
 * the point of this target. */
#include <assert.h>
#include <stddef.h>
#include <stdint.h>
#include <stdio.h>
#include <string.h>

#include "osprey/capi/osprey_c.h"

/* --- error codes are frozen (they cross the ABI as plain ints) ----------- */
_Static_assert(OSPREY_OK == 0, "v1 error code drift");
_Static_assert(OSPREY_E_TIMEOUT == 1, "v1 error code drift");
_Static_assert(OSPREY_E_NOT_FOUND == 2, "v1 error code drift");
_Static_assert(OSPREY_E_CANCELED == 3, "v1 error code drift");
_Static_assert(OSPREY_E_INVALID_ARGUMENT == 4, "v1 error code drift");
_Static_assert(OSPREY_E_PAYLOAD_TOO_LARGE == 5, "v1 error code drift");
_Static_assert(OSPREY_E_UNAVAILABLE == 6, "v1 error code drift");
_Static_assert(OSPREY_E_PERMISSION_DENIED == 7, "v1 error code drift");
_Static_assert(OSPREY_E_CONFLICT == 8, "v1 error code drift");
_Static_assert(OSPREY_E_INTERNAL == 9, "v1 error code drift");
/* New codes append only — the first v2 addition sits past every v1 code. */
_Static_assert(OSPREY_E_RESOURCE_EXHAUSTED == 10, "append-only violated");

_Static_assert(OSPREY_WAIT_AUTO == 0, "v1 wait strategy drift");
_Static_assert(OSPREY_WAIT_NOTIFY == 1, "v1 wait strategy drift");
_Static_assert(OSPREY_WAIT_POLL == 2, "v1 wait strategy drift");
_Static_assert(OSPREY_SHARD_KEY_WORK_TYPE == 0, "v1 shard key drift");
_Static_assert(OSPREY_SHARD_KEY_EXP_ID == 1, "v1 shard key drift");
_Static_assert(OSPREY_SHARD_HASH == 0, "v1 shard scheme drift");
_Static_assert(OSPREY_SHARD_RANGE == 1, "v1 shard scheme drift");

/* --- v1 struct layouts are frozen ---------------------------------------- */
_Static_assert(offsetof(osprey_wait_spec, strategy) == 0, "wait_spec layout");
_Static_assert(offsetof(osprey_wait_spec, timeout) == 8, "wait_spec layout");
_Static_assert(offsetof(osprey_wait_spec, poll_delay) == 16,
               "wait_spec layout");
_Static_assert(offsetof(osprey_wait_spec, poll_backoff) == 24,
               "wait_spec layout");
_Static_assert(offsetof(osprey_wait_spec, poll_max_delay) == 32,
               "wait_spec layout");
_Static_assert(sizeof(osprey_wait_spec) == 40, "wait_spec layout");

_Static_assert(offsetof(osprey_queue_stats, output_queue) == 0,
               "queue_stats layout");
_Static_assert(offsetof(osprey_queue_stats, input_queue) == 8,
               "queue_stats layout");
_Static_assert(offsetof(osprey_queue_stats, canceled) == 40,
               "queue_stats layout");
_Static_assert(sizeof(osprey_queue_stats) == 48, "queue_stats layout");

_Static_assert(sizeof(osprey_storage_options) == 32,
               "storage_options layout");
_Static_assert(offsetof(osprey_storage_options, compact_fanout) == 24,
               "storage_options layout");
_Static_assert(sizeof(osprey_storage_stats) == 96, "storage_stats layout");
_Static_assert(offsetof(osprey_storage_stats, read_errors) == 88,
               "storage_stats layout");

/* --- v2 structs are size-prefixed (struct_size leads) -------------------- */
_Static_assert(offsetof(osprey_task_spec_t, struct_size) == 0,
               "v2 structs must lead with struct_size");
_Static_assert(offsetof(osprey_claim_spec_t, struct_size) == 0,
               "v2 structs must lead with struct_size");
_Static_assert(offsetof(osprey_stats_v2_t, struct_size) == 0,
               "v2 structs must lead with struct_size");
_Static_assert(offsetof(osprey_tenant_config_t, struct_size) == 0,
               "v2 structs must lead with struct_size");
_Static_assert(offsetof(osprey_tenant_stats_row_t, struct_size) == 0,
               "v2 structs must lead with struct_size");

#define CHECK(expr)                                                       \
  do {                                                                    \
    int check_rc_ = (expr);                                               \
    if (check_rc_ != OSPREY_OK) {                                         \
      fprintf(stderr, "%s:%d: %s -> %s\n", __FILE__, __LINE__, #expr,     \
              osprey_error_name(check_rc_));                              \
      return 1;                                                           \
    }                                                                     \
  } while (0)

int main(void) {
  /* The exact call sequence of a pre-v2 integration. */
  osprey_service* service = osprey_service_create();
  if (!service) return 1;
  CHECK(osprey_service_start(service));

  osprey_client* client = osprey_client_connect(service);
  if (!client) return 1;

  int64_t task_id = -1;
  CHECK(osprey_submit_task(client, "v1-compat", 7, "{\"x\":1}", 5, "smoke",
                           &task_id));

  int64_t claimed = -1;
  char payload[256];
  CHECK(osprey_query_task(client, 7, "default", 0.01, 2.0, &claimed, payload,
                          sizeof(payload)));
  if (claimed != task_id || strcmp(payload, "{\"x\":1}") != 0) {
    fprintf(stderr, "v1 claim mismatch: id %lld payload %s\n",
            (long long)claimed, payload);
    return 1;
  }

  CHECK(osprey_report_task(client, claimed, 7, "{\"y\":2}"));

  char result[256];
  CHECK(osprey_query_result(client, task_id, 0.01, 2.0, result,
                            sizeof(result)));
  if (strcmp(result, "{\"y\":2}") != 0) {
    fprintf(stderr, "v1 result mismatch: %s\n", result);
    return 1;
  }

  osprey_queue_stats stats;
  memset(&stats, 0, sizeof(stats));
  CHECK(osprey_stats(client, &stats));
  if (stats.complete != 1) {
    fprintf(stderr, "v1 stats mismatch: complete %lld\n",
            (long long)stats.complete);
    return 1;
  }

  /* A v1 caller on a service that later enabled tenancy keeps working as
   * the untenanted principal — admitted unconditionally. */
  CHECK(osprey_service_enable_tenants(service));
  osprey_client* tenant_era = osprey_client_connect(service);
  if (!tenant_era) return 1;
  CHECK(osprey_submit_task(tenant_era, "v1-compat", 7, "{\"x\":2}", 0, NULL,
                           &task_id));
  osprey_client_destroy(tenant_era);

  osprey_client_destroy(client);
  CHECK(osprey_service_stop(service));
  osprey_service_destroy(service);
  puts("capi_v1_compat OK");
  return 0;
}

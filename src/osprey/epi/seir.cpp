#include "osprey/epi/seir.h"

#include <algorithm>
#include <cmath>

namespace osprey::epi {

double SeirSeries::peak_infected() const {
  if (i.empty()) return 0.0;
  return *std::max_element(i.begin(), i.end());
}

int SeirSeries::peak_day() const {
  if (i.empty()) return 0;
  return static_cast<int>(std::max_element(i.begin(), i.end()) - i.begin());
}

double SeirSeries::attack_rate() const {
  if (s.empty()) return 0.0;
  double n = s.front() + e.front() + i.front() + r.front();
  return n > 0 ? 1.0 - s.back() / n : 0.0;
}

namespace {

struct State {
  double s, e, i, r;
};

State derivative(const State& x, const SeirParams& p) {
  const double n = p.population;
  const double infection = p.beta * x.s * x.i / n;
  return State{
      -infection,
      infection - p.sigma * x.e,
      p.sigma * x.e - p.gamma * x.i,
      p.gamma * x.i,
  };
}

State axpy(const State& x, const State& d, double h) {
  return State{x.s + h * d.s, x.e + h * d.e, x.i + h * d.i, x.r + h * d.r};
}

}  // namespace

double InterventionSchedule::factor_on(int day) const {
  double factor = 1.0;
  for (const Intervention& intervention : interventions_) {
    if (day >= intervention.start_day && day < intervention.end_day) {
      factor *= intervention.beta_factor;
    }
  }
  return factor;
}

Status InterventionSchedule::validate() const {
  for (const Intervention& intervention : interventions_) {
    if (intervention.beta_factor <= 0) {
      return Status(ErrorCode::kInvalidArgument,
                    "intervention beta factor must be positive");
    }
    if (intervention.end_day <= intervention.start_day) {
      return Status(ErrorCode::kInvalidArgument,
                    "intervention range must be non-empty");
    }
  }
  return Status::ok();
}

Result<SeirSeries> run_seir(const SeirParams& params, int days,
                            int steps_per_day) {
  return run_seir_with_interventions(params, InterventionSchedule{}, days,
                                     steps_per_day);
}

Result<SeirSeries> run_seir_with_interventions(
    const SeirParams& params, const InterventionSchedule& schedule, int days,
    int steps_per_day) {
  if (params.beta <= 0 || params.sigma <= 0 || params.gamma <= 0) {
    return Error(ErrorCode::kInvalidArgument, "SEIR rates must be positive");
  }
  if (params.population <= 0 ||
      params.initial_infected + params.initial_exposed > params.population) {
    return Error(ErrorCode::kInvalidArgument, "invalid population setup");
  }
  if (days <= 0 || steps_per_day <= 0) {
    return Error(ErrorCode::kInvalidArgument, "days and steps must be positive");
  }
  if (Status s = schedule.validate(); !s.is_ok()) return s.error();

  SeirSeries series;
  series.s.reserve(static_cast<std::size_t>(days) + 1);
  State x{params.population - params.initial_infected - params.initial_exposed,
          params.initial_exposed, params.initial_infected, 0.0};
  const double h = 1.0 / steps_per_day;

  auto record = [&series](const State& state) {
    series.s.push_back(state.s);
    series.e.push_back(state.e);
    series.i.push_back(state.i);
    series.r.push_back(state.r);
  };
  record(x);

  for (int day = 0; day < days; ++day) {
    const double s_before = x.s;
    // Apply the intervention factor active on this day.
    SeirParams day_params = params;
    day_params.beta = params.beta * schedule.factor_on(day);
    for (int step = 0; step < steps_per_day; ++step) {
      State k1 = derivative(x, day_params);
      State k2 = derivative(axpy(x, k1, h / 2), day_params);
      State k3 = derivative(axpy(x, k2, h / 2), day_params);
      State k4 = derivative(axpy(x, k3, h), day_params);
      x = State{
          x.s + h / 6 * (k1.s + 2 * k2.s + 2 * k3.s + k4.s),
          x.e + h / 6 * (k1.e + 2 * k2.e + 2 * k3.e + k4.e),
          x.i + h / 6 * (k1.i + 2 * k2.i + 2 * k3.i + k4.i),
          x.r + h / 6 * (k1.r + 2 * k2.r + 2 * k3.r + k4.r),
      };
    }
    record(x);
    series.daily_incidence.push_back(std::max(0.0, s_before - x.s));
  }
  return series;
}

}  // namespace osprey::epi

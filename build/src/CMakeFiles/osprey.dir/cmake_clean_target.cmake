file(REMOVE_RECURSE
  "libosprey.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bench_futures.dir/bench_futures.cpp.o"
  "CMakeFiles/bench_futures.dir/bench_futures.cpp.o.d"
  "bench_futures"
  "bench_futures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_futures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "osprey/db/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cassert>
#include <cerrno>
#include <cstring>

#include "osprey/db/dump.h"
#include "osprey/obs/telemetry.h"

namespace osprey::db::wal {

namespace {

/// Durability-plane telemetry (DESIGN.md §observability): fsync latency, the
/// group-commit batch-size distribution, and recovery work counters.
struct WalObs {
  obs::Histogram& fsync_latency;
  obs::Histogram& group_commit_batch;
  obs::Histogram& recovery_duration;
  obs::Counter& records_replayed;
  obs::Counter& bytes_truncated;
};

WalObs& wal_obs() {
  static WalObs o{
      obs::telemetry().metrics.histogram("osprey_wal_fsync_latency_seconds"),
      obs::telemetry().metrics.histogram("osprey_wal_group_commit_batch", {},
                                         obs::count_buckets()),
      obs::telemetry().metrics.histogram(
          "osprey_wal_recovery_duration_seconds"),
      obs::telemetry().metrics.counter("osprey_wal_records_replayed_total"),
      obs::telemetry().metrics.counter("osprey_wal_bytes_truncated_total"),
  };
  return o;
}

// Segment headers: 8-byte magic + u64 first LSN (wal) / nothing (ckpt, whose
// single frame carries its LSN).
constexpr char kWalMagic[8] = {'O', 'S', 'P', 'W', 'A', 'L', 'v', '1'};
constexpr char kCkptMagic[8] = {'O', 'S', 'P', 'C', 'K', 'P', 'T', '1'};
constexpr std::size_t kWalHeaderBytes = sizeof(kWalMagic) + 8;

constexpr const char* kWalPrefix = "wal-";
constexpr const char* kCkptPrefix = "ckpt-";

// --- little-endian primitives ----------------------------------------------

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

// Bounded little-endian reader; any overrun marks the cursor failed.
struct Reader {
  const std::string& buf;
  std::size_t pos;
  std::size_t end;
  bool ok = true;

  bool need(std::size_t n) {
    if (!ok || end - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v |= static_cast<std::uint16_t>(static_cast<unsigned char>(buf[pos++])) << (8 * i);
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[pos++])) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[pos++])) << (8 * i);
    return v;
  }
  std::string str() {
    std::uint32_t n = u32();
    if (!need(n)) return {};
    std::string s = buf.substr(pos, n);
    pos += n;
    return s;
  }
};

// --- cell codec (tag + payload) --------------------------------------------

enum : std::uint8_t { kCellNull = 0, kCellInt = 1, kCellReal = 2, kCellText = 3 };

void put_cell(std::string& out, const Value& v) {
  if (v.is_null()) {
    out.push_back(static_cast<char>(kCellNull));
  } else if (v.is_int()) {
    out.push_back(static_cast<char>(kCellInt));
    put_u64(out, static_cast<std::uint64_t>(v.as_int()));
  } else if (v.is_real()) {
    out.push_back(static_cast<char>(kCellReal));
    double d = v.as_real();
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    put_u64(out, bits);
  } else {
    out.push_back(static_cast<char>(kCellText));
    put_str(out, v.as_text());
  }
}

Value get_cell(Reader& r) {
  if (!r.need(1)) return Value(nullptr);
  auto tag = static_cast<std::uint8_t>(r.buf[r.pos++]);
  switch (tag) {
    case kCellNull:
      return Value(nullptr);
    case kCellInt:
      return Value(static_cast<std::int64_t>(r.u64()));
    case kCellReal: {
      std::uint64_t bits = r.u64();
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case kCellText:
      return Value(r.str());
    default:
      r.ok = false;
      return Value(nullptr);
  }
}

std::string hex16(Lsn lsn) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[lsn & 0xf];
    lsn >>= 4;
  }
  return s;
}

bool parse_hex16(const std::string& s, Lsn* out) {
  if (s.size() != 16) return false;
  Lsn v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<Lsn>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<Lsn>(c - 'a' + 10);
    else return false;
  }
  *out = v;
  return true;
}

bool has_prefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

// --- log geometry -----------------------------------------------------------

std::string wal_segment_name(Lsn first_lsn) {
  return kWalPrefix + hex16(first_lsn);
}

std::string checkpoint_segment_name(Lsn lsn) { return kCkptPrefix + hex16(lsn); }

std::string wal_segment_header(Lsn first_lsn) {
  std::string header(kWalMagic, sizeof(kWalMagic));
  put_u64(header, first_lsn);
  return header;
}

std::string encode_checkpoint(Lsn lsn, const json::Value& snapshot) {
  std::string body;
  put_u64(body, lsn);
  body += snapshot.dump();
  std::string out(kCkptMagic, sizeof(kCkptMagic));
  put_u32(out, static_cast<std::uint32_t>(body.size()));
  put_u32(out, crc32(body.data(), body.size()));
  out += body;
  return out;
}

// --- CRC32 ------------------------------------------------------------------

std::uint32_t crc32(const void* data, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

// --- record codec -----------------------------------------------------------

std::string encode_record(const Record& record) {
  std::string payload;
  put_u64(payload, record.lsn);
  payload.push_back(static_cast<char>(record.type));
  switch (record.type) {
    case RecordType::kInsert:
    case RecordType::kUpdate:
      put_str(payload, record.table);
      put_u64(payload, record.row_id);
      put_u16(payload, static_cast<std::uint16_t>(record.row.size()));
      for (const Value& cell : record.row) put_cell(payload, cell);
      break;
    case RecordType::kDelete:
      put_str(payload, record.table);
      put_u64(payload, record.row_id);
      break;
    case RecordType::kCommit:
      put_u32(payload, record.txn_records);
      break;
    case RecordType::kCreateTable:
      put_str(payload, record.table);
      put_str(payload, record.schema_json);
      break;
    case RecordType::kDropTable:
      put_str(payload, record.table);
      break;
    case RecordType::kCreateIndex:
      put_str(payload, record.table);
      put_str(payload, record.column);
      break;
    case RecordType::kEpoch:
      put_u64(payload, record.epoch);
      break;
  }
  std::string frame;
  frame.reserve(payload.size() + 8);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32(payload.data(), payload.size()));
  frame += payload;
  return frame;
}

DecodeStatus decode_record(const std::string& buffer, std::size_t offset,
                           Record* out, std::size_t* consumed) {
  if (offset >= buffer.size()) return DecodeStatus::kEndOfLog;
  if (buffer.size() - offset < 8) return DecodeStatus::kTruncated;
  Reader head{buffer, offset, buffer.size()};
  std::uint32_t len = head.u32();
  std::uint32_t crc = head.u32();
  if (buffer.size() - head.pos < len) return DecodeStatus::kTruncated;
  if (len < 9) return DecodeStatus::kCorrupt;  // payload is at least lsn+type
  if (crc32(buffer.data() + head.pos, len) != crc) return DecodeStatus::kCorrupt;

  Reader r{buffer, head.pos, head.pos + len};
  Record record;
  record.lsn = r.u64();
  if (!r.need(1)) return DecodeStatus::kCorrupt;
  auto type = static_cast<std::uint8_t>(r.buf[r.pos++]);
  if (type < 1 || type > 8) return DecodeStatus::kCorrupt;
  record.type = static_cast<RecordType>(type);
  switch (record.type) {
    case RecordType::kInsert:
    case RecordType::kUpdate: {
      record.table = r.str();
      record.row_id = r.u64();
      std::uint16_t cells = r.u16();
      record.row.reserve(cells);
      for (std::uint16_t i = 0; i < cells && r.ok; ++i) {
        record.row.push_back(get_cell(r));
      }
      break;
    }
    case RecordType::kDelete:
      record.table = r.str();
      record.row_id = r.u64();
      break;
    case RecordType::kCommit:
      record.txn_records = r.u32();
      break;
    case RecordType::kCreateTable:
      record.table = r.str();
      record.schema_json = r.str();
      break;
    case RecordType::kDropTable:
      record.table = r.str();
      break;
    case RecordType::kCreateIndex:
      record.table = r.str();
      record.column = r.str();
      break;
    case RecordType::kEpoch:
      record.epoch = r.u64();
      break;
  }
  if (!r.ok || r.pos != r.end) return DecodeStatus::kCorrupt;
  *out = std::move(record);
  *consumed = r.end - offset;  // full frame: 8-byte header + payload
  return DecodeStatus::kOk;
}

// --- LogDevice --------------------------------------------------------------

Result<std::string> LogDevice::read_range(const std::string& segment,
                                          std::uint64_t offset,
                                          std::uint64_t length) {
  Result<std::string> whole = read(segment);
  if (!whole.ok()) return whole;
  const std::string& buf = whole.value();
  if (offset >= buf.size()) return std::string();
  return buf.substr(static_cast<std::size_t>(offset),
                    static_cast<std::size_t>(length));
}

// --- FileLogDevice ----------------------------------------------------------

FileLogDevice::FileLogDevice(std::string directory) : dir_(std::move(directory)) {
  ::mkdir(dir_.c_str(), 0755);  // best effort; append reports real failures
}

FileLogDevice::~FileLogDevice() {
  for (auto& [_, fd] : fds_) ::close(fd);
}

int FileLogDevice::fd_locked(const std::string& segment, std::string* error) {
  auto it = fds_.find(segment);
  if (it != fds_.end()) return it->second;
  std::string path = dir_ + "/" + segment;
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    *error = "open '" + path + "': " + std::strerror(errno);
    return -1;
  }
  fds_.emplace(segment, fd);
  return fd;
}

void FileLogDevice::close_locked(const std::string& segment) {
  auto it = fds_.find(segment);
  if (it != fds_.end()) {
    ::close(it->second);
    fds_.erase(it);
  }
}

Status FileLogDevice::append(const std::string& segment, const std::string& data) {
  std::lock_guard<std::mutex> guard(mutex_);
  std::string error;
  int fd = fd_locked(segment, &error);
  if (fd < 0) return Status(ErrorCode::kUnavailable, error);
  std::size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status(ErrorCode::kUnavailable,
                    "write '" + segment + "': " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Status FileLogDevice::sync(const std::string& segment) {
  std::lock_guard<std::mutex> guard(mutex_);
  std::string error;
  int fd = fd_locked(segment, &error);
  if (fd < 0) return Status(ErrorCode::kUnavailable, error);
  if (::fsync(fd) != 0) {
    return Status(ErrorCode::kUnavailable,
                  "fsync '" + segment + "': " + std::strerror(errno));
  }
  return Status::ok();
}

Result<std::string> FileLogDevice::read(const std::string& segment) {
  std::lock_guard<std::mutex> guard(mutex_);
  std::string path = dir_ + "/" + segment;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Error(ErrorCode::kNotFound,
                 "open '" + path + "': " + std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Error error(ErrorCode::kUnavailable,
                  "read '" + path + "': " + std::strerror(errno));
      ::close(fd);
      return error;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

Result<std::string> FileLogDevice::read_range(const std::string& segment,
                                              std::uint64_t offset,
                                              std::uint64_t length) {
  std::lock_guard<std::mutex> guard(mutex_);
  std::string path = dir_ + "/" + segment;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Error(ErrorCode::kNotFound,
                 "open '" + path + "': " + std::strerror(errno));
  }
  std::string out;
  out.resize(static_cast<std::size_t>(length));
  std::size_t got = 0;
  while (got < length) {
    ssize_t n = ::pread(fd, out.data() + got, length - got,
                        static_cast<off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      Error error(ErrorCode::kUnavailable,
                  "pread '" + path + "': " + std::strerror(errno));
      ::close(fd);
      return error;
    }
    if (n == 0) break;  // segment ends before offset+length
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  out.resize(got);
  return out;
}

Status FileLogDevice::truncate(const std::string& segment, std::uint64_t size) {
  std::lock_guard<std::mutex> guard(mutex_);
  close_locked(segment);  // O_APPEND fd offsets are per-write; reopen cleanly
  std::string path = dir_ + "/" + segment;
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status(ErrorCode::kUnavailable,
                  "truncate '" + path + "': " + std::strerror(errno));
  }
  return Status::ok();
}

Status FileLogDevice::remove(const std::string& segment) {
  std::lock_guard<std::mutex> guard(mutex_);
  close_locked(segment);
  std::string path = dir_ + "/" + segment;
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status(ErrorCode::kUnavailable,
                  "unlink '" + path + "': " + std::strerror(errno));
  }
  return Status::ok();
}

Result<std::vector<std::string>> FileLogDevice::list() {
  std::lock_guard<std::mutex> guard(mutex_);
  DIR* dir = ::opendir(dir_.c_str());
  if (!dir) {
    return Error(ErrorCode::kUnavailable,
                 "opendir '" + dir_ + "': " + std::strerror(errno));
  }
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

// --- SimLogDevice -----------------------------------------------------------

SimLogDevice::SimLogDevice(std::shared_ptr<SimDisk> disk, FaultRegistry* faults)
    : disk_(std::move(disk)), faults_(faults) {}

Status SimLogDevice::fail_if_dead_locked(const char* op) {
  if (dead_) {
    return Status(ErrorCode::kUnavailable,
                  std::string("log device dead (") + op + ")");
  }
  return Status::ok();
}

Status SimLogDevice::append(const std::string& segment, const std::string& data) {
  std::lock_guard<std::mutex> guard(mutex_);
  Status alive = fail_if_dead_locked("append");
  if (!alive.is_ok()) return alive;
  if (faults_ && faults_->should_fire(fault_point::wal_crash_before_append())) {
    dead_ = true;
    return Status(ErrorCode::kUnavailable, "device crashed before append");
  }
  pending_[segment] += data;
  ++appends_;
  bytes_appended_ += data.size();
  if (faults_ && faults_->should_fire(fault_point::wal_crash_after_append())) {
    dead_ = true;  // landed in the write cache only; lost at crash()
    return Status(ErrorCode::kUnavailable, "device crashed after append");
  }
  return Status::ok();
}

Status SimLogDevice::sync(const std::string& segment) {
  std::lock_guard<std::mutex> guard(mutex_);
  Status alive = fail_if_dead_locked("sync");
  if (!alive.is_ok()) return alive;
  if (faults_ && faults_->should_fire(fault_point::wal_crash_before_sync())) {
    dead_ = true;
    return Status(ErrorCode::kUnavailable, "device crashed before sync");
  }
  volatile std::uint64_t sink = 0;
  for (std::uint64_t spin = 0; spin < sync_spin_; ++spin) sink = spin;
  (void)sink;
  auto it = pending_.find(segment);
  if (faults_ && faults_->should_fire(fault_point::wal_partial_flush())) {
    // A prefix of the cache reaches the medium, then the device dies — the
    // canonical torn write the recovery scan must truncate.
    if (it != pending_.end()) {
      double f = faults_->magnitude(fault_point::wal_partial_flush());
      f = std::min(std::max(f, 0.0), 1.0);
      auto keep = static_cast<std::size_t>(
          static_cast<double>(it->second.size()) * f);
      disk_->segments[segment] += it->second.substr(0, keep);
      pending_.erase(it);
    }
    dead_ = true;
    return Status(ErrorCode::kUnavailable, "device crashed mid-flush");
  }
  if (it != pending_.end()) {
    disk_->segments[segment] += it->second;
    pending_.erase(it);
  }
  ++syncs_;
  if (faults_ && faults_->should_fire(fault_point::wal_crash_after_sync())) {
    dead_ = true;  // durable, but the acknowledgement is lost
    return Status(ErrorCode::kUnavailable, "device crashed after sync");
  }
  return Status::ok();
}

Result<std::string> SimLogDevice::read(const std::string& segment) {
  std::lock_guard<std::mutex> guard(mutex_);
  Status alive = fail_if_dead_locked("read");
  if (!alive.is_ok()) return alive.error();
  std::string out;
  auto durable = disk_->segments.find(segment);
  if (durable != disk_->segments.end()) out = durable->second;
  auto pending = pending_.find(segment);
  if (pending != pending_.end()) out += pending->second;
  if (out.empty() && durable == disk_->segments.end() &&
      pending == pending_.end()) {
    return Error(ErrorCode::kNotFound, "no segment '" + segment + "'");
  }
  return out;
}

Status SimLogDevice::truncate(const std::string& segment, std::uint64_t size) {
  std::lock_guard<std::mutex> guard(mutex_);
  Status alive = fail_if_dead_locked("truncate");
  if (!alive.is_ok()) return alive;
  pending_.erase(segment);  // recovery-only operation; cache is stale anyway
  auto it = disk_->segments.find(segment);
  if (it == disk_->segments.end()) {
    return Status(ErrorCode::kNotFound, "no segment '" + segment + "'");
  }
  if (size < it->second.size()) it->second.resize(size);
  return Status::ok();
}

Status SimLogDevice::remove(const std::string& segment) {
  std::lock_guard<std::mutex> guard(mutex_);
  Status alive = fail_if_dead_locked("remove");
  if (!alive.is_ok()) return alive;
  pending_.erase(segment);
  disk_->segments.erase(segment);
  return Status::ok();
}

Result<std::vector<std::string>> SimLogDevice::list() {
  std::lock_guard<std::mutex> guard(mutex_);
  Status alive = fail_if_dead_locked("list");
  if (!alive.is_ok()) return alive.error();
  std::vector<std::string> names;
  for (const auto& [name, _] : disk_->segments) names.push_back(name);
  for (const auto& [name, _] : pending_) {
    if (!disk_->segments.count(name)) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

void SimLogDevice::crash() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (auto& [segment, tail] : pending_) {
    if (faults_ && !tail.empty() &&
        faults_->should_fire(fault_point::wal_torn_tail())) {
      double f = faults_->magnitude(fault_point::wal_torn_tail());
      f = std::min(std::max(f, 0.0), 1.0);
      auto keep =
          static_cast<std::size_t>(static_cast<double>(tail.size()) * f);
      disk_->segments[segment] += tail.substr(0, keep);
    }
  }
  pending_.clear();
  dead_ = true;
}

bool SimLogDevice::dead() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return dead_;
}

void SimLogDevice::set_sync_spin(std::uint64_t iterations) {
  std::lock_guard<std::mutex> guard(mutex_);
  sync_spin_ = iterations;
}

std::uint64_t SimLogDevice::appends() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return appends_;
}

std::uint64_t SimLogDevice::syncs() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return syncs_;
}

std::uint64_t SimLogDevice::bytes_appended() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return bytes_appended_;
}

std::uint64_t SimLogDevice::bytes_durable() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::uint64_t total = 0;
  for (const auto& [_, data] : disk_->segments) total += data.size();
  return total;
}

// --- recovery ---------------------------------------------------------------

namespace {

struct CheckpointData {
  Lsn lsn = 0;
  json::Value snapshot;
  bool found = false;
};

// Read and validate the newest intact checkpoint; invalid ones (torn during
// their own write) are skipped in favour of older ones.
CheckpointData load_latest_checkpoint(LogDevice& device,
                                      const std::vector<std::string>& names) {
  CheckpointData best;
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    if (!has_prefix(*it, kCkptPrefix)) continue;
    Lsn lsn = 0;
    if (!parse_hex16(it->substr(std::strlen(kCkptPrefix)), &lsn)) continue;
    Result<std::string> data = device.read(*it);
    if (!data.ok()) continue;
    const std::string& buf = data.value();
    if (buf.size() < sizeof(kCkptMagic) + 8) continue;
    if (std::memcmp(buf.data(), kCkptMagic, sizeof(kCkptMagic)) != 0) continue;
    Reader r{buf, sizeof(kCkptMagic), buf.size()};
    std::uint32_t len = r.u32();
    std::uint32_t crc = r.u32();
    if (!r.ok || buf.size() - r.pos < len) continue;
    if (crc32(buf.data() + r.pos, len) != crc) continue;
    Reader body{buf, r.pos, r.pos + len};
    Lsn body_lsn = body.u64();
    Result<json::Value> doc = json::parse(buf.substr(body.pos, len - 8));
    if (!doc.ok()) continue;
    best.lsn = body_lsn;
    best.snapshot = std::move(doc).take();
    best.found = true;
    return best;
  }
  return best;
}

Status apply_dml(Database& db, const Record& r) {
  Table* t = db.table(r.table);
  if (!t) {
    return Status(ErrorCode::kInternal,
                  "redo record for unknown table '" + r.table + "'");
  }
  switch (r.type) {
    case RecordType::kInsert:
    case RecordType::kUpdate:
      // Full post-images make replay idempotent-converging: overwrite when
      // present, materialize when absent.
      if (t->get(r.row_id)) return t->update_row(r.row_id, r.row);
      return t->restore_row(r.row_id, r.row);
    case RecordType::kDelete:
      t->erase_row(r.row_id);  // no-op when already gone
      return Status::ok();
    default:
      return Status(ErrorCode::kInternal, "apply_dml on non-DML record");
  }
}

Status apply_ddl(Database& db, const Record& r, std::size_t* applied) {
  switch (r.type) {
    case RecordType::kCreateTable: {
      if (db.table(r.table)) return Status::ok();  // idempotent
      Result<json::Value> columns = json::parse(r.schema_json);
      if (!columns.ok()) return columns.error();
      Result<Schema> schema = schema_from_json(columns.value());
      if (!schema.ok()) return schema.error();
      Result<Table*> created =
          db.create_table(r.table, std::move(schema).take());
      if (!created.ok()) return created.error();
      ++*applied;
      return Status::ok();
    }
    case RecordType::kDropTable: {
      if (!db.table(r.table)) return Status::ok();
      Status s = db.drop_table(r.table);
      if (s.is_ok()) ++*applied;
      return s;
    }
    case RecordType::kCreateIndex: {
      Table* t = db.table(r.table);
      if (!t) {
        return Status(ErrorCode::kInternal,
                      "index record for unknown table '" + r.table + "'");
      }
      Status s = t->create_index(r.column);  // idempotent
      if (s.is_ok()) ++*applied;
      return s;
    }
    default:
      return Status(ErrorCode::kInternal, "apply_ddl on non-DDL record");
  }
}

bool is_dml(RecordType t) {
  return t == RecordType::kInsert || t == RecordType::kUpdate ||
         t == RecordType::kDelete;
}

bool is_ddl(RecordType t) {
  return t == RecordType::kCreateTable || t == RecordType::kDropTable ||
         t == RecordType::kCreateIndex;
}

}  // namespace

Status apply_record(Database& db, const Record& record) {
  if (is_dml(record.type)) return apply_dml(db, record);
  if (is_ddl(record.type)) {
    std::size_t applied = 0;
    return apply_ddl(db, record, &applied);
  }
  return Status::ok();  // kCommit / kEpoch: markers, no state
}

Result<json::Value> read_latest_checkpoint(LogDevice& device, Lsn* lsn) {
  Result<std::vector<std::string>> names = device.list();
  if (!names.ok()) return names.error();
  CheckpointData ckpt = load_latest_checkpoint(device, names.value());
  if (!ckpt.found) {
    return Error(ErrorCode::kNotFound, "no valid checkpoint on device");
  }
  if (lsn) *lsn = ckpt.lsn;
  return std::move(ckpt.snapshot);
}

Result<RecoveryInfo> recover(LogDevice& device, Database& db) {
  return recover(device, db, restore_database);
}

Result<RecoveryInfo> recover(LogDevice& device, Database& db,
                             const SnapshotRestorer& restore_snapshot) {
  if (!db.table_names().empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "recover() requires an empty database");
  }
  obs::Stopwatch recovery_latency;
  Result<std::vector<std::string>> names = device.list();
  if (!names.ok()) return names.error();

  RecoveryInfo info;
  CheckpointData ckpt = load_latest_checkpoint(device, names.value());
  if (ckpt.found) {
    Status restored = restore_snapshot(db, ckpt.snapshot);
    if (!restored.is_ok()) return restored.error();
    info.used_checkpoint = true;
    info.checkpoint_lsn = ckpt.lsn;
    info.last_lsn = ckpt.lsn;
  }

  // Replay wal segments in LSN order. A transaction's records buffer until
  // its commit marker; an uncommitted or torn tail is discarded and the
  // segment physically truncated so the writer can resume cleanly. The
  // truncation point is the start of the incomplete transaction, not just
  // the torn frame: a txn's DML frames and its commit marker are appended
  // as one batch, so a tear inside the commit marker leaves complete-but-
  // uncommitted DML frames ahead of it. If those stayed on the device, a
  // resumed writer would append after them and the orphans would sit in the
  // next recovery's txn buffer when the new commit marker arrives — its
  // record count would mismatch and a committed transaction would be thrown
  // away as torn.
  std::vector<Record> txn;
  std::size_t txn_start = 0;
  bool log_ended = false;
  for (const std::string& name : names.value()) {
    if (!has_prefix(name, kWalPrefix)) continue;
    if (log_ended) {
      // Everything after a torn segment is unreachable in LSN order.
      device.remove(name);
      continue;
    }
    Result<std::string> data = device.read(name);
    if (!data.ok()) return data.error();
    const std::string& buf = data.value();
    ++info.segments_scanned;
    if (buf.size() < kWalHeaderBytes ||
        std::memcmp(buf.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
      // Header itself torn (crash during rotation): the segment carries no
      // records; drop it.
      info.bytes_truncated += buf.size();
      device.remove(name);
      log_ended = true;
      continue;
    }
    std::size_t offset = kWalHeaderBytes;
    while (true) {
      Record record;
      std::size_t frame_bytes = 0;
      DecodeStatus status = decode_record(buf, offset, &record, &frame_bytes);
      if (status == DecodeStatus::kEndOfLog) {
        if (!txn.empty()) {
          // The segment ends on a frame boundary mid-batch: complete DML
          // frames whose commit marker never reached the medium. Same
          // orphan hazard as a torn frame — cut them off too.
          Status truncated =
              device.truncate(name, static_cast<std::uint64_t>(txn_start));
          if (!truncated.is_ok()) return truncated.error();
          info.bytes_truncated += buf.size() - txn_start;
          info.records_discarded += txn.size();
          txn.clear();
          log_ended = true;
        }
        break;
      }
      if (status != DecodeStatus::kOk) {
        const std::size_t keep = txn.empty() ? offset : txn_start;
        Status truncated =
            device.truncate(name, static_cast<std::uint64_t>(keep));
        if (!truncated.is_ok()) return truncated.error();
        info.bytes_truncated += buf.size() - keep;
        info.records_discarded += txn.size();
        txn.clear();
        log_ended = true;
        break;
      }
      // A DML record's LSN only becomes real when its commit marker (whose
      // LSN is higher) survives; dangling DML is truncated below, so only
      // non-DML records advance last_lsn.
      if (!is_dml(record.type) && record.lsn > info.last_lsn) {
        info.last_lsn = record.lsn;
      }
      if (is_dml(record.type)) {
        if (txn.empty()) txn_start = offset;
        txn.push_back(std::move(record));
      } else if (record.type == RecordType::kCommit) {
        if (record.txn_records != txn.size()) {
          // Marker disagrees with its transaction: treat the whole batch,
          // orphaned DML frames included, as torn.
          const std::size_t keep = txn.empty() ? offset : txn_start;
          Status truncated =
              device.truncate(name, static_cast<std::uint64_t>(keep));
          if (!truncated.is_ok()) return truncated.error();
          info.bytes_truncated += buf.size() - keep;
          info.records_discarded += txn.size();
          txn.clear();
          log_ended = true;
          break;
        }
        bool replayed = false;
        for (const Record& r : txn) {
          if (r.lsn <= info.checkpoint_lsn) continue;  // already in snapshot
          Status applied = apply_dml(db, r);
          if (!applied.is_ok()) return applied.error();
          ++info.records_replayed;
          replayed = true;
        }
        if (replayed) ++info.transactions_replayed;
        txn.clear();
      } else if (is_ddl(record.type)) {
        if (record.lsn > info.checkpoint_lsn) {
          Status applied = apply_ddl(db, record, &info.ddl_replayed);
          if (!applied.is_ok()) return applied.error();
        }
      }
      offset += frame_bytes;
    }
  }
  info.records_discarded += txn.size();
  if (obs::enabled()) {
    obs::observe_latency(wal_obs().recovery_duration, recovery_latency);
    wal_obs().records_replayed.inc(info.records_replayed);
    wal_obs().bytes_truncated.inc(info.bytes_truncated);
  }
  return info;
}

// --- WalManager -------------------------------------------------------------

WalManager::WalManager(LogDevice& device, WalOptions options)
    : device_(device), options_(options) {}

Status WalManager::open() {
  std::lock_guard<std::mutex> guard(mutex_);
  Result<std::vector<std::string>> names = device_.list();
  if (!names.ok()) return names.error();

  Lsn max_lsn = 0;
  for (const std::string& name : names.value()) {
    if (!has_prefix(name, kCkptPrefix)) continue;
    Lsn lsn = 0;
    if (parse_hex16(name.substr(std::strlen(kCkptPrefix)), &lsn)) {
      max_lsn = std::max(max_lsn, lsn);
    }
  }

  // Scan wal segments for the true end of log; repair torn tails so the
  // writer never appends after garbage.
  std::string tail_segment;
  std::uint64_t tail_size = 0;
  bool log_ended = false;
  for (const std::string& name : names.value()) {
    if (!has_prefix(name, kWalPrefix)) continue;
    if (log_ended) {
      Status removed = device_.remove(name);
      if (!removed.is_ok()) return removed;
      continue;
    }
    Result<std::string> data = device_.read(name);
    if (!data.ok()) return data.error();
    const std::string& buf = data.value();
    if (buf.size() < kWalHeaderBytes ||
        std::memcmp(buf.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
      Status removed = device_.remove(name);
      if (!removed.is_ok()) return removed;
      log_ended = true;
      continue;
    }
    // Mirror recover()'s repair exactly: a tear inside a txn's append batch
    // must cut back to the batch start, or the writer would resume after
    // complete-but-uncommitted DML frames and the next recovery would
    // mistake the following committed transaction for a torn one. Dangling
    // DML LSNs are excluded from max_lsn for the same reason — they are
    // truncated away and safe to reissue.
    std::size_t offset = kWalHeaderBytes;
    std::uint32_t pending_dml = 0;
    std::size_t txn_start = 0;
    while (true) {
      Record record;
      std::size_t frame_bytes = 0;
      DecodeStatus status = decode_record(buf, offset, &record, &frame_bytes);
      if (status == DecodeStatus::kEndOfLog) {
        if (pending_dml > 0) {
          Status truncated =
              device_.truncate(name, static_cast<std::uint64_t>(txn_start));
          if (!truncated.is_ok()) return truncated;
          offset = txn_start;
          log_ended = true;
        }
        break;
      }
      bool torn = status != DecodeStatus::kOk;
      if (!torn && record.type == RecordType::kCommit &&
          record.txn_records != pending_dml) {
        torn = true;  // marker disagrees with its batch
      }
      if (torn) {
        const std::size_t keep = pending_dml > 0 ? txn_start : offset;
        Status truncated =
            device_.truncate(name, static_cast<std::uint64_t>(keep));
        if (!truncated.is_ok()) return truncated;
        offset = keep;
        log_ended = true;
        break;
      }
      if (is_dml(record.type)) {
        if (pending_dml == 0) txn_start = offset;
        ++pending_dml;
      } else {
        if (record.type == RecordType::kCommit) pending_dml = 0;
        max_lsn = std::max(max_lsn, record.lsn);
      }
      offset += frame_bytes;
    }
    tail_segment = name;
    tail_size = offset;
  }

  next_lsn_ = max_lsn + 1;
  if (!tail_segment.empty() && tail_size < options_.segment_bytes) {
    segment_ = tail_segment;
    segment_size_ = tail_size;
  } else {
    segment_.clear();
    segment_size_ = 0;
  }
  unsynced_commits_ = 0;
  unsynced_bytes_ = 0;
  return Status::ok();
}

void WalManager::attach(Database& db) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    db_ = &db;
  }
  db.set_commit_observer(this);
}

void WalManager::detach() {
  Database* db;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    db = db_;
    db_ = nullptr;
  }
  if (db && db->commit_observer() == this) db->set_commit_observer(nullptr);
}

Status WalManager::rotate_locked(Lsn first_lsn) {
  if (!segment_.empty()) {
    // Leave no unsynced tail behind in a segment we will never touch again.
    Status synced = maybe_sync_locked(unsynced_bytes_ > 0);
    if (!synced.is_ok()) return synced;
  }
  std::string header = wal_segment_header(first_lsn);
  std::string name = wal_segment_name(first_lsn);
  Status appended = device_.append(name, header);
  if (!appended.is_ok()) return appended;
  segment_ = name;
  segment_size_ = header.size();
  ++stats_.rotations;
  return Status::ok();
}

Status WalManager::append_frames_locked(const std::string& frames,
                                        Lsn first_lsn) {
  if (segment_.empty() || segment_size_ >= options_.segment_bytes) {
    Status rotated = rotate_locked(first_lsn);
    if (!rotated.is_ok()) return rotated;
  }
  Status appended = device_.append(segment_, frames);
  if (!appended.is_ok()) return appended;
  segment_size_ += frames.size();
  unsynced_bytes_ += frames.size();
  stats_.bytes_logged += frames.size();
  return Status::ok();
}

Status WalManager::maybe_sync_locked(bool force) {
  bool due = force;
  if (!due && options_.group_commit_txns == 1) due = unsynced_commits_ > 0;
  if (!due && options_.group_commit_txns > 1) {
    due = unsynced_commits_ >= options_.group_commit_txns ||
          (options_.group_commit_bytes > 0 &&
           unsynced_bytes_ >= options_.group_commit_bytes);
  }
  if (!due || unsynced_bytes_ == 0) {
    if (due) unsynced_commits_ = 0;
    return Status::ok();
  }
  obs::Stopwatch fsync_latency;
  Status synced = device_.sync(segment_);
  if (!synced.is_ok()) return synced;
  ++stats_.syncs;
  if (obs::enabled()) {
    obs::observe_latency(wal_obs().fsync_latency, fsync_latency);
    wal_obs().group_commit_batch.observe(
        static_cast<double>(unsynced_commits_));
  }
  unsynced_commits_ = 0;
  unsynced_bytes_ = 0;
  return Status::ok();
}

Status WalManager::on_commit(Database& db,
                             const std::vector<UndoRecord>& journal) {
  std::lock_guard<std::mutex> guard(mutex_);
  const Lsn first_lsn = next_lsn_;
  std::string frames;
  std::uint32_t dml = 0;
  for (const UndoRecord& undo : journal) {
    Table* table = db.table(undo.table);
    if (!table) continue;  // table dropped mid-txn; the DDL record covers it
    Record record;
    record.table = undo.table;
    record.row_id = undo.row_id;
    if (undo.kind == UndoRecord::Kind::kDelete) {
      record.type = RecordType::kDelete;
    } else {
      // Redo is the row's post-image, read from the still-in-place mutation.
      std::optional<Row> row = table->get(undo.row_id);
      if (!row) continue;  // inserted/updated then deleted in the same txn
      record.type = undo.kind == UndoRecord::Kind::kInsert
                        ? RecordType::kInsert
                        : RecordType::kUpdate;
      record.row = std::move(*row);
    }
    record.lsn = next_lsn_++;
    frames += encode_record(record);
    ++dml;
  }
  if (dml == 0) return Status::ok();  // nothing survived the journal

  Record commit;
  commit.type = RecordType::kCommit;
  commit.txn_records = dml;
  commit.lsn = next_lsn_++;
  frames += encode_record(commit);

  Status appended = append_frames_locked(frames, first_lsn);
  if (!appended.is_ok()) {
    next_lsn_ = first_lsn;  // nothing acknowledged; keep LSNs dense
    return appended;
  }
  ++stats_.commits_logged;
  stats_.records_logged += dml;
  ++unsynced_commits_;
  return maybe_sync_locked(false);
}

Status WalManager::on_create_table(const Table& table) {
  std::lock_guard<std::mutex> guard(mutex_);
  Record record;
  record.type = RecordType::kCreateTable;
  record.table = table.name();
  record.schema_json = schema_to_json(table.schema()).dump();
  record.lsn = next_lsn_++;
  Status appended = append_frames_locked(encode_record(record), record.lsn);
  if (!appended.is_ok()) {
    --next_lsn_;
    return appended;
  }
  ++stats_.ddl_logged;
  return maybe_sync_locked(options_.group_commit_txns == 1);
}

Status WalManager::on_drop_table(const std::string& name) {
  std::lock_guard<std::mutex> guard(mutex_);
  Record record;
  record.type = RecordType::kDropTable;
  record.table = name;
  record.lsn = next_lsn_++;
  Status appended = append_frames_locked(encode_record(record), record.lsn);
  if (!appended.is_ok()) {
    --next_lsn_;
    return appended;
  }
  ++stats_.ddl_logged;
  return maybe_sync_locked(options_.group_commit_txns == 1);
}

Status WalManager::on_create_index(const std::string& table,
                                   const std::string& column) {
  std::lock_guard<std::mutex> guard(mutex_);
  Record record;
  record.type = RecordType::kCreateIndex;
  record.table = table;
  record.column = column;
  record.lsn = next_lsn_++;
  Status appended = append_frames_locked(encode_record(record), record.lsn);
  if (!appended.is_ok()) {
    --next_lsn_;
    return appended;
  }
  ++stats_.ddl_logged;
  return maybe_sync_locked(options_.group_commit_txns == 1);
}

Status WalManager::flush() {
  std::lock_guard<std::mutex> guard(mutex_);
  return maybe_sync_locked(true);
}

void WalManager::set_snapshot_provider(SnapshotProvider provider) {
  std::lock_guard<std::mutex> guard(mutex_);
  snapshot_provider_ = std::move(provider);
}

void WalManager::set_post_checkpoint_hook(CheckpointHook hook) {
  std::lock_guard<std::mutex> guard(mutex_);
  post_checkpoint_hook_ = std::move(hook);
}

Result<Lsn> WalManager::checkpoint(Database& db) {
  // Order matters: the database lock first (as every commit path does), then
  // the wal lock — checkpointing between transactions, never inside one.
  std::lock_guard<std::recursive_mutex> db_guard(db.mutex());
  std::lock_guard<std::mutex> guard(mutex_);

  const Lsn ckpt_lsn = next_lsn_ - 1;
  std::string out = encode_checkpoint(
      ckpt_lsn, snapshot_provider_ ? snapshot_provider_(db) : dump_database(db));

  const std::string name = checkpoint_segment_name(ckpt_lsn);
  device_.remove(name);  // re-checkpoint at the same LSN overwrites
  Status written = device_.append(name, out);
  if (written.is_ok()) written = device_.sync(name);
  if (!written.is_ok()) {
    device_.remove(name);  // best effort; old log is still intact
    return written.error();
  }

  // The snapshot covers everything logged: drop all wal segments and any
  // older checkpoints. Recovery cost is now bounded by what commits next.
  Result<std::vector<std::string>> names = device_.list();
  if (names.ok()) {
    for (const std::string& segment : names.value()) {
      if (segment == name) continue;
      if (has_prefix(segment, kWalPrefix) || has_prefix(segment, kCkptPrefix)) {
        device_.remove(segment);
      }
    }
  }
  segment_.clear();
  segment_size_ = 0;
  unsynced_commits_ = 0;
  unsynced_bytes_ = 0;
  ++stats_.checkpoints;
  if (post_checkpoint_hook_) post_checkpoint_hook_(ckpt_lsn);
  return ckpt_lsn;
}

Result<Lsn> WalManager::log_epoch(std::uint64_t epoch) {
  std::lock_guard<std::mutex> guard(mutex_);
  Record record;
  record.type = RecordType::kEpoch;
  record.epoch = epoch;
  record.lsn = next_lsn_++;
  Status appended = append_frames_locked(encode_record(record), record.lsn);
  if (!appended.is_ok()) {
    --next_lsn_;
    return appended.error();
  }
  ++stats_.epochs_logged;
  Status synced = maybe_sync_locked(true);
  if (!synced.is_ok()) return synced.error();
  return record.lsn;
}

Lsn WalManager::next_lsn() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return next_lsn_;
}

WalStats WalManager::stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return stats_;
}

// --- WalCursor --------------------------------------------------------------

WalCursor::WalCursor(LogDevice& device, Lsn from)
    : device_(device), position_(from == 0 ? 1 : from) {}

Result<CursorBatch> WalCursor::next(std::size_t max_records) {
  Result<std::vector<std::string>> names = device_.list();
  if (!names.ok()) return names.error();

  // If a checkpoint has swallowed the records we still owe the reader, the
  // tail is gone: tailing cannot continue, only a fresh bootstrap can.
  Lsn ckpt_lsn = 0;
  for (const std::string& name : names.value()) {
    if (!has_prefix(name, kCkptPrefix)) continue;
    Lsn lsn = 0;
    if (parse_hex16(name.substr(std::strlen(kCkptPrefix)), &lsn)) {
      ckpt_lsn = std::max(ckpt_lsn, lsn);
    }
  }
  if (ckpt_lsn >= position_) {
    return Error(ErrorCode::kNotFound,
                 "wal truncated by checkpoint past cursor; re-bootstrap");
  }

  // Skip segments that end before the cursor: a segment's records all
  // precede the next segment's first LSN, so only the last segment whose
  // first LSN <= position_ (and everything after it) can contain our tail.
  std::vector<std::string> segments;
  for (const std::string& name : names.value()) {
    if (!has_prefix(name, kWalPrefix)) continue;
    Lsn first = 0;
    if (!parse_hex16(name.substr(std::strlen(kWalPrefix)), &first)) continue;
    if (first <= position_) segments.clear();
    segments.push_back(name);
  }

  CursorBatch batch;
  std::vector<Record> unit;  // open transaction's DML, pre-commit
  auto emit_unit = [&](std::vector<Record>&& records) {
    if (records.back().lsn < position_) return;  // unit already delivered
    for (Record& r : records) {
      batch.frames += encode_record(r);
      if (batch.first_lsn == 0) batch.first_lsn = r.lsn;
      batch.last_lsn = r.lsn;
      batch.records.push_back(std::move(r));
    }
    ++batch.transactions;
  };

  for (const std::string& name : segments) {
    Result<std::string> data = device_.read(name);
    if (!data.ok()) {
      if (data.error().code == ErrorCode::kNotFound) continue;  // raced rm
      return data.error();
    }
    const std::string& buf = data.value();
    if (buf.size() < kWalHeaderBytes ||
        std::memcmp(buf.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
      break;  // header still being written: end of committed log
    }
    std::size_t offset = kWalHeaderBytes;
    bool log_ended = false;
    while (true) {
      Record record;
      std::size_t frame_bytes = 0;
      DecodeStatus status = decode_record(buf, offset, &record, &frame_bytes);
      if (status == DecodeStatus::kEndOfLog) break;
      if (status != DecodeStatus::kOk) {
        log_ended = true;  // torn / in-flight tail: nothing past it is real
        break;
      }
      offset += frame_bytes;
      if (is_dml(record.type)) {
        unit.push_back(std::move(record));
        continue;
      }
      if (record.type == RecordType::kCommit) {
        if (record.txn_records != unit.size()) {
          log_ended = true;  // marker disagrees with its txn: treat as torn
          break;
        }
        unit.push_back(std::move(record));
        emit_unit(std::move(unit));
        unit.clear();
      } else {
        // DDL and epoch records are self-committing single-record units.
        std::vector<Record> single;
        single.push_back(std::move(record));
        emit_unit(std::move(single));
      }
      if (batch.records.size() >= max_records) {
        position_ = batch.last_lsn + 1;
        return batch;
      }
    }
    unit.clear();  // an open txn never spans segments (rotation is pre-txn)
    if (log_ended) break;
  }
  if (!batch.empty()) position_ = batch.last_lsn + 1;
  return batch;
}

}  // namespace osprey::db::wal

// Tests for the embedded relational engine: values, schemas, tables,
// indexes, transactions, snapshot/restore.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

#include "osprey/db/database.h"
#include "osprey/db/dump.h"
#include "osprey/db/expr.h"

namespace osprey::db {
namespace {

Schema task_schema() {
  return Schema({
      {"eq_task_id", ColumnType::kInt, false, true},
      {"status", ColumnType::kText, false, false},
      {"priority", ColumnType::kInt, true, false},
      {"payload", ColumnType::kText, true, false},
  });
}

Row make_task(std::int64_t id, const std::string& status, std::int64_t pri,
              const std::string& payload) {
  return Row{Value(id), Value(status), Value(pri), Value(payload)};
}

// --- Value ---------------------------------------------------------------

TEST(ValueTest, TotalOrderAcrossTypes) {
  // NULL < numbers < text.
  EXPECT_LT(Value(nullptr), Value(std::int64_t{-100}));
  EXPECT_LT(Value(std::int64_t{5}), Value("a"));
  EXPECT_LT(Value(1.5), Value(std::int64_t{2}));  // numeric cross-compare
  EXPECT_EQ(Value(std::int64_t{2}), Value(2.0));
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_EQ(Value(nullptr).compare(Value(nullptr)), 0);
}

TEST(ValueTest, SqlRendering) {
  EXPECT_EQ(Value(nullptr).to_sql(), "NULL");
  EXPECT_EQ(Value(std::int64_t{42}).to_sql(), "42");
  EXPECT_EQ(Value("it's").to_sql(), "'it''s'");
}

TEST(ValueTest, Conformance) {
  EXPECT_TRUE(Value(nullptr).conforms_to(ColumnType::kInt));
  EXPECT_TRUE(Value(std::int64_t{1}).conforms_to(ColumnType::kReal));
  EXPECT_FALSE(Value(1.5).conforms_to(ColumnType::kInt));
  EXPECT_FALSE(Value("x").conforms_to(ColumnType::kReal));
  // Non-finite reals would break the index ordering: rejected.
  EXPECT_FALSE(Value(std::nan("")).conforms_to(ColumnType::kReal));
  EXPECT_FALSE(Value(std::numeric_limits<double>::infinity())
                   .conforms_to(ColumnType::kReal));
}

TEST(ValueTest, NanRowsAreRejectedAtInsert) {
  Table table("t", Schema({{"x", ColumnType::kReal, true, false}}));
  auto bad = table.insert({Value(std::nan(""))});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kInvalidArgument);
}

// --- Schema ----------------------------------------------------------------

TEST(SchemaTest, IndexOfAndPrimaryKey) {
  Schema s = task_schema();
  EXPECT_EQ(s.index_of("status"), 1);
  EXPECT_EQ(s.index_of("missing"), -1);
  EXPECT_EQ(s.primary_key_index(), 0);
}

TEST(SchemaTest, ValidateRejectsBadRows) {
  Schema s = task_schema();
  EXPECT_TRUE(s.validate(make_task(1, "queued", 0, "{}")).is_ok());
  EXPECT_FALSE(s.validate({Value(1)}).is_ok());  // arity
  EXPECT_FALSE(
      s.validate({Value(nullptr), Value("q"), Value(0), Value("")}).is_ok());
  EXPECT_FALSE(
      s.validate({Value(1), Value(2), Value(0), Value("")}).is_ok());  // type
}

// --- Table: insert / select / update / delete -------------------------------

class TableTest : public ::testing::Test {
 protected:
  TableTest() : table_("tasks", task_schema()) {
    for (int i = 1; i <= 10; ++i) {
      auto r = table_.insert(
          make_task(i, i % 2 ? "queued" : "running", 10 - i, "{}"));
      EXPECT_TRUE(r.ok());
    }
  }
  Table table_;
};

TEST_F(TableTest, InsertAssignsMonotonicRowIds) {
  EXPECT_EQ(table_.row_count(), 10u);
  auto ids = table_.all_row_ids();
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1], ids[i]);
}

TEST_F(TableTest, PrimaryKeyUniqueness) {
  auto dup = table_.insert(make_task(5, "queued", 0, "{}"));
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, ErrorCode::kConflict);
  EXPECT_EQ(table_.row_count(), 10u);
}

TEST_F(TableTest, FindPkUsesIndex) {
  auto id = table_.find_pk(Value(std::int64_t{7}));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ((*table_.get(*id))[1].as_text(), "queued");
  EXPECT_FALSE(table_.find_pk(Value(std::int64_t{77})).has_value());
}

TEST_F(TableTest, SelectWithPredicate) {
  ScanOptions options;
  options.where = eq("status", Value("queued"));
  auto r = table_.select(options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 5u);
}

TEST_F(TableTest, SelectOrderByPriorityDescLimit) {
  // The EMEWS output-queue pop: highest priority first, LIMIT n (§IV-C).
  ScanOptions options;
  options.where = eq("status", Value("queued"));
  options.order_by = {{"priority", false}};
  options.limit = 2;
  auto r = table_.select(options);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 2u);
  // Queued tasks have ids 1,3,5,7,9 with priorities 9,7,5,3,1.
  EXPECT_EQ((*table_.get(r.value()[0]))[0].as_int(), 1);
  EXPECT_EQ((*table_.get(r.value()[1]))[0].as_int(), 3);
}

TEST_F(TableTest, TopNViaOrderedIndexMatchesSortPath) {
  // The priority-pop shape: ORDER BY priority DESC, (tie by insertion)
  // LIMIT n. With an index on priority, the ordered-index walk must return
  // exactly what the sort-based path returns.
  ScanOptions options;
  options.where = eq("status", Value("queued"));
  options.order_by = {{"priority", false}};
  options.limit = 3;
  auto sorted_path = table_.select(options);  // no index yet: sort path
  ASSERT_TRUE(sorted_path.ok());
  ASSERT_TRUE(table_.create_index("priority").is_ok());
  std::uint64_t scans_before = table_.full_scans();
  auto index_path = table_.select(options);
  ASSERT_TRUE(index_path.ok());
  EXPECT_EQ(index_path.value(), sorted_path.value());
  EXPECT_EQ(table_.full_scans(), scans_before);  // walked the index
}

TEST_F(TableTest, TopNAscendingAndTieBreaks) {
  ASSERT_TRUE(table_.create_index("priority").is_ok());
  // Insert ties: two more tasks at priority 5 (same as task 5).
  ASSERT_TRUE(table_.insert(make_task(11, "queued", 5, "{}")).ok());
  ASSERT_TRUE(table_.insert(make_task(12, "queued", 5, "{}")).ok());
  ScanOptions options;
  options.order_by = {{"priority", true}, {"eq_task_id", true}};
  options.limit = 100;
  auto with_index = table_.select(options);
  ASSERT_TRUE(with_index.ok());
  // Compare against the pure sort path (unindexed column order + manual).
  ScanOptions no_limit = options;
  no_limit.limit = -1;  // sort path
  auto sort_path = table_.select(no_limit);
  ASSERT_TRUE(sort_path.ok());
  EXPECT_EQ(with_index.value(), sort_path.value());
}

TEST_F(TableTest, SelectUnknownColumnFails) {
  ScanOptions options;
  options.where = eq("nope", Value(1));
  EXPECT_FALSE(table_.select(options).ok());
  options.where = nullptr;
  options.order_by = {{"nope", true}};
  EXPECT_FALSE(table_.select(options).ok());
}

TEST_F(TableTest, SelectOneReturnsFirstOrEmpty) {
  ScanOptions options;
  options.where = eq("eq_task_id", Value(std::int64_t{4}));
  auto one = table_.select_one(options);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(one.value().has_value());
  options.where = eq("eq_task_id", Value(std::int64_t{400}));
  auto none = table_.select_one(options);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none.value().has_value());
}

TEST_F(TableTest, UpdateChangesMatchingRows) {
  ScanOptions options;
  options.where = eq("status", Value("queued"));
  auto n = table_.update(options, {{"status", lit(Value("canceled"))}});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 5u);
  options.where = eq("status", Value("canceled"));
  EXPECT_EQ(table_.select(options).value().size(), 5u);
}

TEST_F(TableTest, UpdateWithExpression) {
  ScanOptions options;  // all rows: priority = priority + 100
  auto n = table_.update(
      options, {{"priority", bin(BinOp::kAdd, col("priority"), lit(Value(100)))}});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 10u);
  ScanOptions check;
  check.where = ge("priority", Value(100));
  EXPECT_EQ(table_.select(check).value().size(), 10u);
}

TEST_F(TableTest, UpdatePrimaryKeyCollisionRejected) {
  ScanOptions options;
  options.where = eq("eq_task_id", Value(std::int64_t{1}));
  auto n = table_.update(options, {{"eq_task_id", lit(Value(std::int64_t{2}))}});
  EXPECT_FALSE(n.ok());
  EXPECT_EQ(n.error().code, ErrorCode::kConflict);
}

TEST_F(TableTest, EraseByPredicate) {
  ScanOptions options;
  options.where = gt("eq_task_id", Value(std::int64_t{8}));
  auto n = table_.erase(options);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 2u);
  EXPECT_EQ(table_.row_count(), 8u);
}

TEST_F(TableTest, SecondaryIndexUsedForEqScan) {
  ASSERT_TRUE(table_.create_index("status").is_ok());
  std::uint64_t scans_before = table_.full_scans();
  ScanOptions options;
  options.where = eq("status", Value("queued"));
  auto r = table_.select(options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 5u);
  EXPECT_EQ(table_.full_scans(), scans_before);  // no full scan
  EXPECT_GT(table_.index_lookups(), 0u);
}

TEST_F(TableTest, IndexStaysCorrectThroughUpdateAndDelete) {
  ASSERT_TRUE(table_.create_index("status").is_ok());
  ScanOptions to_running;
  to_running.where = eq("eq_task_id", Value(std::int64_t{1}));
  ASSERT_TRUE(table_.update(to_running, {{"status", lit(Value("running"))}}).ok());
  ScanOptions queued;
  queued.where = eq("status", Value("queued"));
  EXPECT_EQ(table_.select(queued).value().size(), 4u);
  ScanOptions del;
  del.where = eq("status", Value("running"));
  ASSERT_TRUE(table_.erase(del).ok());
  ScanOptions running;
  running.where = eq("status", Value("running"));
  EXPECT_TRUE(table_.select(running).value().empty());
}

TEST_F(TableTest, InListUsesPrimaryKeyIndex) {
  // The EQSQL hot path updates `WHERE eq_task_id IN (?,...)`; that must be
  // an index probe, not a full scan.
  std::uint64_t scans_before = table_.full_scans();
  ScanOptions options;
  options.where = in_list(col("eq_task_id"),
                          {param(0), param(1), lit(Value(std::int64_t{9}))});
  options.params = {Value(std::int64_t{2}), Value(std::int64_t{4})};
  auto r = table_.select(options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 3u);
  EXPECT_EQ(table_.full_scans(), scans_before);  // indexed, no full scan
}

TEST_F(TableTest, InListWithDuplicateValuesDeduplicates) {
  ScanOptions options;
  options.where = in_list(col("eq_task_id"),
                          {lit(Value(std::int64_t{3})), lit(Value(std::int64_t{3}))});
  auto r = table_.select(options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 1u);
}

TEST_F(TableTest, InPredicate) {
  ScanOptions options;
  options.where = in_list(
      col("eq_task_id"),
      {lit(Value(std::int64_t{2})), lit(Value(std::int64_t{4})),
       lit(Value(std::int64_t{99}))});
  auto r = table_.select(options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
}

TEST_F(TableTest, ParamBinding) {
  ScanOptions options;
  options.where = bin(BinOp::kEq, col("status"), param(0));
  options.params = {Value("running")};
  EXPECT_EQ(table_.select(options).value().size(), 5u);
  options.params.clear();
  EXPECT_FALSE(table_.select(options).ok());  // missing param is an error
}

// --- Database & transactions -------------------------------------------------

TEST(DatabaseTest, CreateDropLookup) {
  Database db;
  auto t = db.create_table("tasks", task_schema());
  ASSERT_TRUE(t.ok());
  EXPECT_NE(db.table("tasks"), nullptr);
  EXPECT_FALSE(db.create_table("tasks", task_schema()).ok());
  EXPECT_TRUE(db.drop_table("tasks").is_ok());
  EXPECT_EQ(db.table("tasks"), nullptr);
  EXPECT_FALSE(db.drop_table("tasks").is_ok());
}

TEST(TransactionTest, CommitKeepsMutations) {
  Database db;
  Table* t = db.create_table("tasks", task_schema()).value();
  {
    Transaction txn(db);
    ASSERT_TRUE(t->insert(make_task(1, "queued", 0, "{}")).ok());
    txn.commit();
  }
  EXPECT_EQ(t->row_count(), 1u);
}

TEST(TransactionTest, RollbackUndoesInsertUpdateDelete) {
  Database db;
  Table* t = db.create_table("tasks", task_schema()).value();
  ASSERT_TRUE(t->insert(make_task(1, "queued", 5, "{}")).ok());
  ASSERT_TRUE(t->insert(make_task(2, "queued", 6, "{}")).ok());
  {
    Transaction txn(db);
    ASSERT_TRUE(t->insert(make_task(3, "queued", 7, "{}")).ok());
    ScanOptions upd;
    upd.where = eq("eq_task_id", Value(std::int64_t{1}));
    ASSERT_TRUE(t->update(upd, {{"status", lit(Value("running"))}}).ok());
    ScanOptions del;
    del.where = eq("eq_task_id", Value(std::int64_t{2}));
    ASSERT_TRUE(t->erase(del).ok());
    // destructor rolls back
  }
  EXPECT_EQ(t->row_count(), 2u);
  auto id1 = t->find_pk(Value(std::int64_t{1}));
  ASSERT_TRUE(id1);
  EXPECT_EQ((*t->get(*id1))[1].as_text(), "queued");
  EXPECT_TRUE(t->find_pk(Value(std::int64_t{2})).has_value());
  EXPECT_FALSE(t->find_pk(Value(std::int64_t{3})).has_value());
}

TEST(TransactionTest, RollbackRestoresIndexes) {
  Database db;
  Table* t = db.create_table("tasks", task_schema()).value();
  ASSERT_TRUE(t->create_index("status").is_ok());
  ASSERT_TRUE(t->insert(make_task(1, "queued", 5, "{}")).ok());
  {
    Transaction txn(db);
    ScanOptions upd;
    upd.where = eq("eq_task_id", Value(std::int64_t{1}));
    ASSERT_TRUE(t->update(upd, {{"status", lit(Value("running"))}}).ok());
  }
  ScanOptions queued;
  queued.where = eq("status", Value("queued"));
  EXPECT_EQ(t->select(queued).value().size(), 1u);
}

TEST(TransactionTest, SpansMultipleTables) {
  // The core EMEWS pop is "delete from output queue + update tasks" (§IV-C);
  // both must commit or neither.
  Database db;
  Table* tasks = db.create_table("tasks", task_schema()).value();
  Table* queue =
      db.create_table("output_queue",
                      Schema({{"eq_task_id", ColumnType::kInt, false, false},
                              {"priority", ColumnType::kInt, false, false}}))
          .value();
  ASSERT_TRUE(tasks->insert(make_task(1, "queued", 0, "{}")).ok());
  ASSERT_TRUE(queue->insert({Value(std::int64_t{1}), Value(std::int64_t{0})}).ok());
  {
    Transaction txn(db);
    ScanOptions pop;
    pop.where = eq("eq_task_id", Value(std::int64_t{1}));
    ASSERT_TRUE(queue->erase(pop).ok());
    ASSERT_TRUE(tasks->update(pop, {{"status", lit(Value("running"))}}).ok());
    // rollback
  }
  EXPECT_EQ(queue->row_count(), 1u);
  auto id = tasks->find_pk(Value(std::int64_t{1}));
  EXPECT_EQ((*tasks->get(*id))[1].as_text(), "queued");
}

// --- Snapshot / restore ------------------------------------------------------

TEST(DumpTest, RoundTripPreservesSchemaIndexesRows) {
  Database db;
  Table* t = db.create_table("tasks", task_schema()).value();
  ASSERT_TRUE(t->create_index("status").is_ok());
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(t->insert(make_task(i, "queued", i, "{\"x\":1}")).ok());
  }

  json::Value snapshot = dump_database(db);
  Database restored;
  ASSERT_TRUE(restore_database(restored, snapshot).is_ok());
  Table* rt = restored.table("tasks");
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->row_count(), 5u);
  EXPECT_TRUE(rt->has_index("status"));
  EXPECT_EQ(rt->schema().primary_key_index(), 0);
  auto id = rt->find_pk(Value(std::int64_t{3}));
  ASSERT_TRUE(id);
  EXPECT_EQ((*rt->get(*id))[3].as_text(), "{\"x\":1}");
}

TEST(DumpTest, FileRoundTrip) {
  Database db;
  Table* t = db.create_table("tasks", task_schema()).value();
  ASSERT_TRUE(t->insert(make_task(1, "queued", 0, "{}")).ok());
  const std::string path = "/tmp/osprey_dump_test.json";
  ASSERT_TRUE(dump_to_file(db, path).is_ok());
  Database restored;
  ASSERT_TRUE(restore_from_file(restored, path).is_ok());
  EXPECT_EQ(restored.table("tasks")->row_count(), 1u);
  std::remove(path.c_str());
}

TEST(DumpTest, RejectsMalformedSnapshots) {
  Database db;
  EXPECT_FALSE(restore_database(db, json::Value("nope")).is_ok());
  EXPECT_FALSE(
      restore_database(db, json::parse_or_die(R"({"format":"wrong"})")).is_ok());
}

TEST(DumpTest, PreservesRowIdsAndIdAllocatorAcrossDeletes) {
  Database db;
  Table* t = db.create_table("tasks", task_schema()).value();
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(t->insert(make_task(i, "queued", i, "{}")).ok());
  }
  // Punch holes, including the highest id: a restore that renumbered rows
  // (or re-derived the allocator from the survivors) would hand id 5 out
  // again, colliding with redo records that reference the original ids.
  ScanOptions kill;
  kill.where = eq("eq_task_id", Value(std::int64_t{2}));
  ASSERT_TRUE(t->erase(kill).ok());
  kill.where = eq("eq_task_id", Value(std::int64_t{5}));
  ASSERT_TRUE(t->erase(kill).ok());
  std::vector<RowId> original_ids = t->all_row_ids();

  Database restored;
  ASSERT_TRUE(restore_database(restored, dump_database(db)).is_ok());
  Table* rt = restored.table("tasks");
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->all_row_ids(), original_ids);
  auto fresh = rt->insert(make_task(6, "queued", 6, "{}"));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value(), t->next_row_id());  // allocator carried over

  // And the round trip is bit-identical, not merely equivalent.
  EXPECT_EQ(dump_database(db).dump(),
            [&] {
              Database again;
              EXPECT_TRUE(restore_database(again, dump_database(db)).is_ok());
              return dump_database(again).dump();
            }());
}

TEST(DumpTest, FieldByFieldRoundTripOfEveryValueShape) {
  Database db;
  Table* t = db.create_table("cells", Schema({
                                          {"id", ColumnType::kInt, false, true},
                                          {"i", ColumnType::kInt, true, false},
                                          {"r", ColumnType::kReal, true, false},
                                          {"s", ColumnType::kText, true, false},
                                      }))
                 .value();
  std::vector<Row> rows = {
      {Value(std::int64_t{1}), Value(std::int64_t{-9007199254740993}),
       Value(0.1), Value("plain")},
      {Value(std::int64_t{2}), Value(nullptr), Value(-1e300),
       Value("quo\"te\nline")},
      {Value(std::int64_t{3}), Value(std::int64_t{0}), Value(nullptr),
       Value("")},
      {Value(std::int64_t{4}), Value(std::int64_t{1}) , Value(3.0),
       Value(std::string("nul\0byte-free", 3))},  // text stays exact
  };
  for (const Row& row : rows) ASSERT_TRUE(t->insert(row).ok());

  Database restored;
  ASSERT_TRUE(restore_database(restored, dump_database(db)).is_ok());
  Table* rt = restored.table("cells");
  ASSERT_NE(rt, nullptr);
  ASSERT_EQ(rt->row_count(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::optional<Row> got = rt->get(static_cast<RowId>(i + 1));
    ASSERT_TRUE(got.has_value()) << "row " << i + 1;
    ASSERT_EQ(got->size(), rows[i].size());
    for (std::size_t c = 0; c < rows[i].size(); ++c) {
      EXPECT_EQ((*got)[c].compare(rows[i][c]), 0)
          << "row " << i + 1 << " column " << c;
    }
  }
}

TEST(DumpTest, RestoreIntoPopulatedDatabaseFailsWithoutClobbering) {
  Database db;
  Table* t = db.create_table("tasks", task_schema()).value();
  ASSERT_TRUE(t->insert(make_task(1, "running", 7, "{\"live\":true}")).ok());
  std::string before = dump_database(db).dump();

  Database other;
  Table* ot = other.create_table("tasks", task_schema()).value();
  ASSERT_TRUE(ot->insert(make_task(2, "queued", 1, "{}")).ok());
  Status s = restore_database(db, dump_database(other));
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.error().code, ErrorCode::kConflict);
  // The existing table was not replaced or merged into.
  EXPECT_EQ(dump_database(db).dump(), before);
}

TEST(DumpTest, RejectsBadRowIdsAndBadRows) {
  Database reference;
  Table* t = reference.create_table("tasks", task_schema()).value();
  ASSERT_TRUE(t->insert(make_task(1, "queued", 0, "{}")).ok());
  json::Value good = dump_database(reference);

  // A non-numeric row id is a malformed snapshot, not a silent renumber.
  {
    json::Value bad = good;
    bad["tables"]["tasks"]["row_ids"].as_array()[0] = json::Value("one");
    Database db;
    Status s = restore_database(db, bad);
    ASSERT_FALSE(s.is_ok());
    EXPECT_EQ(s.error().code, ErrorCode::kInvalidArgument);
  }
  // A row that does not conform to the schema is rejected by the restore.
  {
    json::Value bad = good;
    bad["tables"]["tasks"]["rows"].as_array()[0].as_array()[1] =
        json::Value(std::int64_t{12});  // status must be text
    Database db;
    EXPECT_FALSE(restore_database(db, bad).is_ok());
  }
  // "tables" of the wrong shape is caught before any table is created.
  {
    Database db;
    EXPECT_FALSE(
        restore_database(
            db, json::parse_or_die(
                    R"({"format":"osprey-db-snapshot-v1","tables":[1]})"))
            .is_ok());
    EXPECT_TRUE(db.table_names().empty());
  }
}

TEST(DumpTest, LegacySnapshotsWithoutRowIdsStillRestore) {
  Database db;
  Table* t = db.create_table("tasks", task_schema()).value();
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(t->insert(make_task(i, "queued", i, "{}")).ok());
  }
  json::Value snapshot = dump_database(db);
  // A pre-v1.1 snapshot: no row_ids, no next_row_id.
  snapshot["tables"]["tasks"].as_object().erase("row_ids");
  snapshot["tables"]["tasks"].as_object().erase("next_row_id");

  Database restored;
  ASSERT_TRUE(restore_database(restored, snapshot).is_ok());
  Table* rt = restored.table("tasks");
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->row_count(), 3u);
  EXPECT_TRUE(rt->find_pk(Value(std::int64_t{2})).has_value());
}

TEST(DumpTest, DumpToFileIsAtomicAndLeavesNoTempFile) {
  Database db;
  Table* t = db.create_table("tasks", task_schema()).value();
  ASSERT_TRUE(t->insert(make_task(1, "queued", 0, "{}")).ok());
  const std::string path = "/tmp/osprey_dump_atomic_test.json";

  // Overwrite an existing (garbage) file in place.
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("half-written garbage", f);
    fclose(f);
  }
  ASSERT_TRUE(dump_to_file(db, path).is_ok());
  {
    FILE* tmp = fopen((path + ".tmp").c_str(), "r");
    EXPECT_EQ(tmp, nullptr);  // the staging file was renamed away
    if (tmp) fclose(tmp);
  }
  Database restored;
  ASSERT_TRUE(restore_from_file(restored, path).is_ok());
  EXPECT_EQ(restored.table("tasks")->row_count(), 1u);
  std::remove(path.c_str());

  // An unwritable destination surfaces as a Status, not a partial file.
  Status s = dump_to_file(db, "/tmp/osprey_no_such_dir/dump.json");
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.error().code, ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace osprey::db

// Immutable sorted runs (SSTables) on a LogDevice (DESIGN.md §5.12).
//
// A run is one device segment holding a table's rows sorted by row id:
//
//   [8B magic "OSPSSTv1"]
//   block*:  [u32 payload_len][u32 crc32(payload)][payload]
//   payload: [u32 entry_count] entry*
//   entry:   [u64 row_id][u16 cell_count] cell*      (WAL cell tags)
//
// Runs are written whole (append + sync) and never modified; a torn run —
// the device died mid-flush — simply fails its CRC and is garbage-collected
// as an orphan at the next recovery. All metadata needed to *read* a run
// (block index, bloom filter, id range) is computed at write time and
// persisted in the checkpoint manifest, so attaching a run at recovery costs
// zero device reads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "osprey/core/error.h"
#include "osprey/db/value.h"
#include "osprey/json/json.h"

namespace osprey::storage {

/// One row version in a run, in ascending-id order.
struct RunEntry {
  db::RowId id = 0;
  db::Row row;
};

/// Bloom filter over the row ids of one run: lets point reads skip runs
/// that cannot contain the id without touching the device.
class BloomFilter {
 public:
  BloomFilter() = default;
  /// Sized for `expected_keys` at `bits_per_key` (0 keys yields a filter
  /// that answers "maybe" for everything, which is safely conservative).
  BloomFilter(std::size_t expected_keys, std::uint32_t bits_per_key);

  void add(db::RowId id);
  bool may_contain(db::RowId id) const;

  /// Serialization for the checkpoint manifest.
  std::string to_hex() const;
  std::uint32_t hashes() const { return k_; }
  static Result<BloomFilter> from_hex(const std::string& hex, std::uint32_t k);

 private:
  std::vector<std::uint64_t> words_;
  std::uint32_t k_ = 0;  // 0 => empty filter: may_contain always true
};

/// Block index entry: the frame at [offset, offset+length) holds entries
/// with ids >= first_id (and < the next block's first_id).
struct BlockIndexEntry {
  db::RowId first_id = 0;
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
};

/// Everything the engine knows about one run. Persisted in the checkpoint
/// manifest; `in_manifest` is engine bookkeeping (a manifest-referenced run
/// must survive until the *next* durable manifest stops referencing it).
struct RunMeta {
  std::string segment;       // device segment name ("sst-<table>-<seq>-L<n>")
  std::uint64_t seq = 0;     // newest-wins version order within the store
  std::uint32_t level = 0;   // size-tiered compaction level
  db::RowId min_id = 0;
  db::RowId max_id = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;   // whole-segment size
  std::vector<BlockIndexEntry> blocks;
  BloomFilter bloom;
  bool in_manifest = false;
};

/// Device segment name for a run.
std::string run_segment_name(const std::string& table, std::uint64_t seq,
                             std::uint32_t level);

/// Encode `entries` (ascending id) as a complete segment image, cutting
/// blocks at ~`block_bytes`, and fill `*meta` (blocks, bloom, counts,
/// bytes). segment/seq/level of `*meta` are left to the caller.
std::string encode_run(const std::vector<RunEntry>& entries,
                       std::uint64_t block_bytes,
                       std::uint32_t bloom_bits_per_key, RunMeta* meta);

/// Decode one CRC-framed block (the bytes a BlockIndexEntry points at).
/// kInvalidArgument on a CRC mismatch or malformed payload.
Result<std::vector<RunEntry>> decode_block(const std::string& frame);

/// RunMeta <-> JSON for the checkpoint manifest.
json::Value run_meta_to_json(const RunMeta& meta);
Result<RunMeta> run_meta_from_json(const json::Value& doc);

}  // namespace osprey::storage

/* C API for the OSPREY task queue.
 *
 * §II-B1e: "There is ... not a single lingua franca that can be assumed for
 * developing the model exploration algorithms ... OSPREY will need to be
 * inclusive and provide multi-language APIs." The paper ships Python and R
 * bindings; in a C++ codebase the equivalent enabler is a stable C ABI —
 * every language with a foreign-function interface (Python ctypes, R .Call,
 * Julia ccall, ...) can drive the EQSQL task API through these functions.
 *
 * Conventions:
 *  - handles are opaque pointers; every *_create has a *_destroy;
 *  - functions return 0 on success or a positive osprey error code
 *    (see osprey_error_name); out-parameters are only written on success;
 *  - strings are NUL-terminated UTF-8; output strings are copied into
 *    caller-provided buffers and truncated results fail with
 *    OSPREY_E_INVALID_ARGUMENT rather than overflow.
 */
#ifndef OSPREY_CAPI_OSPREY_C_H_
#define OSPREY_CAPI_OSPREY_C_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Error codes: mirrors osprey::ErrorCode. */
enum {
  OSPREY_OK = 0,
  OSPREY_E_TIMEOUT = 1,
  OSPREY_E_NOT_FOUND = 2,
  OSPREY_E_CANCELED = 3,
  OSPREY_E_INVALID_ARGUMENT = 4,
  OSPREY_E_PAYLOAD_TOO_LARGE = 5,
  OSPREY_E_UNAVAILABLE = 6,
  OSPREY_E_PERMISSION_DENIED = 7,
  OSPREY_E_CONFLICT = 8,
  OSPREY_E_INTERNAL = 9,
};

/* Task status values returned by osprey_task_status. */
enum {
  OSPREY_TASK_QUEUED = 0,
  OSPREY_TASK_RUNNING = 1,
  OSPREY_TASK_COMPLETE = 2,
  OSPREY_TASK_CANCELED = 3,
};

/* Wait strategies: mirrors osprey::eqsql::WaitStrategy. */
enum {
  OSPREY_WAIT_AUTO = 0,   /* notify when available, else poll */
  OSPREY_WAIT_NOTIFY = 1, /* commit-driven wakeups, poll fallback */
  OSPREY_WAIT_POLL = 2,   /* pure (delay, timeout) polling (Listing 1) */
};

/* How a blocking call waits: mirrors osprey::eqsql::WaitSpec. Initialize
 * with osprey_wait_spec_init to pick up defaults, then override fields. */
typedef struct osprey_wait_spec {
  int strategy;          /* one of OSPREY_WAIT_* */
  double timeout;        /* overall deadline in seconds */
  double poll_delay;     /* poll cadence / notify fallback slice */
  double poll_backoff;   /* per-empty-probe delay growth (1.0 = fixed) */
  double poll_max_delay; /* cap on grown delays; 0 = uncapped */
} osprey_wait_spec;

/* Fill *spec with the library defaults (AUTO, 2s timeout, 0.5s delay). */
void osprey_wait_spec_init(osprey_wait_spec* spec);

/* Queue depth / task state counts: mirrors osprey::eqsql::QueueStats. */
typedef struct osprey_queue_stats {
  int64_t output_queue; /* queued tasks awaiting a pool */
  int64_t input_queue;  /* completed tasks awaiting pickup */
  int64_t queued;
  int64_t running;
  int64_t complete;
  int64_t canceled;
} osprey_queue_stats;

typedef struct osprey_service osprey_service;
typedef struct osprey_client osprey_client;

/* "TIMEOUT", "NOT_FOUND", ... — the paper's status payload strings. */
const char* osprey_error_name(int code);

/* --- service lifecycle (§IV-C EMEWS service) --------------------------- */

/* Create an EMEWS service with its own task database (wall-clock time). */
osprey_service* osprey_service_create(void);
void osprey_service_destroy(osprey_service* service);

int osprey_service_start(osprey_service* service);
int osprey_service_stop(osprey_service* service);

/* Enable the commit-driven notification plane: blocking waits on clients
 * connected *after* this call wake on submit/report commits instead of
 * polling. Idempotent; call after start, before connecting clients. */
int osprey_service_enable_notifications(osprey_service* service);

/* --- sharding (DESIGN.md §5.11) ----------------------------------------- */

/* How the shard key is derived: mirrors osprey::shard::ShardKeyKind. */
enum {
  OSPREY_SHARD_KEY_WORK_TYPE = 0, /* one pool's traffic hits one shard */
  OSPREY_SHARD_KEY_EXP_ID = 1,    /* one campaign colocates per shard */
};

/* How keys map to shards: mirrors osprey::shard::ShardScheme. */
enum {
  OSPREY_SHARD_HASH = 0,  /* FNV-1a mod shard_count */
  OSPREY_SHARD_RANGE = 1, /* contiguous work-type blocks */
};

/* Partition the service's task database across `shard_count` independent
 * shards (each with its own five-table schema and id sequence). Must be
 * called before osprey_service_start: OSPREY_E_CONFLICT afterwards. Task
 * ids become global (shard index in the high bits); with shard_count = 1
 * the encoding is the identity and every id matches the unsharded service.
 * Existing client calls route transparently: single-key operations go to
 * the owning shard, osprey_stats sums across shards. */
int osprey_service_configure_shards(osprey_service* service,
                                    uint32_t shard_count, int key_kind,
                                    int scheme);

/* The configured shard count (1 when never configured). 0 on NULL. */
uint32_t osprey_shard_count(const osprey_service* service);

/* The shard a (work type, experiment) pair routes to. `exp_id` may be NULL
 * (only consulted under OSPREY_SHARD_KEY_EXP_ID). */
int osprey_shard_of(const osprey_service* service, int eq_type,
                    const char* exp_id, uint32_t* shard_out);

/* The shard encoded in a global task id (0 for unsharded ids);
 * OSPREY_E_INVALID_ARGUMENT if it exceeds the configured shard count. */
int osprey_shard_of_task(const osprey_service* service, int64_t task_id,
                         uint32_t* shard_out);

/* --- LSM storage engine (DESIGN.md §5.12) -------------------------------- */

/* Engine knobs: mirrors osprey::storage::StorageOptions. Initialize with
 * osprey_storage_options_init to pick up defaults, then override fields. */
typedef struct osprey_storage_options {
  uint64_t memtable_bytes;     /* rotate + flush past this many bytes */
  uint64_t block_bytes;        /* encoded run block size (cache unit) */
  uint64_t cache_blocks;       /* decoded-block cache capacity, in blocks */
  uint32_t compact_fanout;     /* runs per level before compaction; 0 = off */
  uint32_t bloom_bits_per_key; /* bloom budget per run entry; 0 = off */
} osprey_storage_options;

/* Fill *options with the library defaults (256 KiB memtable, 16 KiB
 * blocks, 256 cached blocks, fanout 4, 10 bloom bits per key). */
void osprey_storage_options_init(osprey_storage_options* options);

/* Aggregate engine counters: mirrors osprey::storage::StorageStats. */
typedef struct osprey_storage_stats {
  uint64_t memtable_bytes; /* active + immutable, all tables */
  uint64_t memtable_rows;
  uint64_t spilled_rows;   /* live rows resident only in sorted runs */
  uint64_t runs;
  uint64_t run_bytes;
  uint64_t zombie_runs;    /* compacted away, still manifest-pinned */
  uint64_t flushes;
  uint64_t flush_failures;
  uint64_t compactions;
  uint64_t cache_hits;
  uint64_t cache_misses;
  uint64_t read_errors;
} osprey_storage_stats;

/* Back every shard's task database with the LSM storage engine: rows past
 * the memtable budget spill to immutable sorted runs, read back through a
 * bloom-filtered block cache. With a non-NULL `directory` the runs live in
 * real files there (created if missing; one shard-<i> subdirectory per
 * shard when sharded); with NULL they live on an in-process simulated
 * device. `options` may be NULL for the defaults. Call after
 * osprey_service_configure_shards and before osprey_service_start;
 * OSPREY_E_CONFLICT if the service is started or the engine is already
 * enabled. A failure other than OSPREY_E_CONFLICT leaves the service
 * partially configured — destroy it. */
int osprey_service_enable_storage(osprey_service* service,
                                  const char* directory,
                                  const osprey_storage_options* options);

/* Storage counters summed across shards. OSPREY_E_UNAVAILABLE when the
 * engine was never enabled. */
int osprey_storage_stats_snapshot(const osprey_service* service,
                                  osprey_storage_stats* stats_out);

/* --- client connections ------------------------------------------------- */

/* Connect a client API handle to a running service. NULL on failure. */
osprey_client* osprey_client_connect(osprey_service* service);
void osprey_client_destroy(osprey_client* client);

/* --- the EQSQL task API (§V-A, Listing 1) -------------------------------- */

/* Submit a task; on success writes the new task id to *task_id_out.
 * `tag` may be NULL. */
int osprey_submit_task(osprey_client* client, const char* exp_id, int eq_type,
                       const char* payload, int priority, const char* tag,
                       int64_t* task_id_out);

/* Pop one task for execution (worker-pool side), polling every `delay`
 * seconds up to `timeout`. On success writes the task id and copies the
 * payload into payload_buf. */
int osprey_query_task(osprey_client* client, int eq_type,
                      const char* worker_pool, double delay, double timeout,
                      int64_t* task_id_out, char* payload_buf,
                      size_t payload_buf_size);

/* Report a completed task's result payload. */
int osprey_report_task(osprey_client* client, int64_t task_id, int eq_type,
                       const char* result);

/* Retrieve a task's result, polling like osprey_query_task. */
int osprey_query_result(osprey_client* client, int64_t task_id, double delay,
                        double timeout, char* result_buf,
                        size_t result_buf_size);

/* --- the unified wait API ------------------------------------------------ */

/* osprey_query_task under an explicit wait spec. `wait` may be NULL for the
 * defaults (AUTO: notify when the service has notifications enabled). */
int osprey_query_task_wait(osprey_client* client, int eq_type,
                           const char* worker_pool,
                           const osprey_wait_spec* wait, int64_t* task_id_out,
                           char* payload_buf, size_t payload_buf_size);

/* osprey_query_result under an explicit wait spec. `wait` may be NULL. */
int osprey_query_result_wait(osprey_client* client, int64_t task_id,
                             const osprey_wait_spec* wait, char* result_buf,
                             size_t result_buf_size);

/* Non-blocking result peek: copies the result if the task is complete
 * (without consuming the input-queue entry), OSPREY_E_NOT_FOUND while it is
 * not, OSPREY_E_CANCELED for canceled tasks. */
int osprey_peek_result(osprey_client* client, int64_t task_id,
                       char* result_buf, size_t result_buf_size);

/* Queue depth and task state counts in one snapshot (summed across shards
 * when the service is sharded). */
int osprey_stats(osprey_client* client, osprey_queue_stats* stats_out);

/* One shard's queue stats (shard 0 is the whole service when unsharded). */
int osprey_shard_stats(osprey_client* client, uint32_t shard,
                       osprey_queue_stats* stats_out);

/* Current status; on success writes one of OSPREY_TASK_*. */
int osprey_task_status(osprey_client* client, int64_t task_id,
                       int* status_out);

/* Batch cancel; on success writes how many tasks were newly canceled. */
int osprey_cancel_tasks(osprey_client* client, const int64_t* task_ids,
                        size_t count, size_t* canceled_out);

/* Batch reprioritization (§V-B update_priority). `priorities` has either
 * `count` entries (element-wise) or 1 entry (broadcast, pass
 * priorities_count = 1). */
int osprey_update_priorities(osprey_client* client, const int64_t* task_ids,
                             size_t count, const int* priorities,
                             size_t priorities_count, size_t* updated_out);

/* Number of queued tasks of a work type. */
int osprey_queued_count(osprey_client* client, int eq_type,
                        int64_t* count_out);

#ifdef __cplusplus
}
#endif

#endif /* OSPREY_CAPI_OSPREY_C_H_ */

#include "osprey/proxystore/proxy.h"

#include <cstring>

#include "osprey/json/json.h"

namespace osprey::proxystore {

Codec<json::Value> json_codec() {
  return Codec<json::Value>{
      [](const json::Value& v) { return v.dump(); },
      [](const std::string& bytes) { return json::parse(bytes); },
  };
}

Codec<std::string> bytes_codec() {
  return Codec<std::string>{
      [](const std::string& v) { return v; },
      [](const std::string& bytes) -> Result<std::string> { return bytes; },
  };
}

Codec<std::vector<double>> doubles_codec() {
  return Codec<std::vector<double>>{
      [](const std::vector<double>& v) {
        std::string bytes(v.size() * sizeof(double), '\0');
        if (!v.empty()) {
          std::memcpy(bytes.data(), v.data(), bytes.size());
        }
        return bytes;
      },
      [](const std::string& bytes) -> Result<std::vector<double>> {
        if (bytes.size() % sizeof(double) != 0) {
          return Error(ErrorCode::kInvalidArgument,
                       "blob size is not a multiple of sizeof(double)");
        }
        std::vector<double> v(bytes.size() / sizeof(double));
        if (!v.empty()) {
          std::memcpy(v.data(), bytes.data(), bytes.size());
        }
        return v;
      },
  };
}

}  // namespace osprey::proxystore

#include "osprey/pool/trace.h"

#include <algorithm>
#include <cassert>

namespace osprey::pool {

void ConcurrencyTrace::record(TimePoint time, int running) {
  assert(points_.empty() || time >= points_.back().time);
  // Collapse same-time updates to the final value.
  if (!points_.empty() && points_.back().time == time) {
    points_.back().running = running;
    return;
  }
  points_.push_back({time, running});
}

int ConcurrencyTrace::value_at(TimePoint t) const {
  // Last point with time <= t (step function semantics).
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](TimePoint value, const TracePoint& p) { return value < p.time; });
  if (it == points_.begin()) return 0;
  return std::prev(it)->running;
}

double ConcurrencyTrace::mean_concurrency(TimePoint t0, TimePoint t1) const {
  if (t1 <= t0) return 0.0;
  double area = 0.0;
  TimePoint cursor = t0;
  int current = value_at(t0);
  for (const TracePoint& p : points_) {
    if (p.time <= t0) continue;
    if (p.time >= t1) break;
    area += current * (p.time - cursor);
    cursor = p.time;
    current = p.running;
  }
  area += current * (t1 - cursor);
  return area / (t1 - t0);
}

double ConcurrencyTrace::fraction_at_least(int k, TimePoint t0,
                                           TimePoint t1) const {
  if (t1 <= t0) return 0.0;
  double covered = 0.0;
  TimePoint cursor = t0;
  int current = value_at(t0);
  for (const TracePoint& p : points_) {
    if (p.time <= t0) continue;
    if (p.time >= t1) break;
    if (current >= k) covered += p.time - cursor;
    cursor = p.time;
    current = p.running;
  }
  if (current >= k) covered += t1 - cursor;
  return covered / (t1 - t0);
}

int ConcurrencyTrace::max_drop() const {
  int max_drop = 0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    max_drop = std::max(max_drop, points_[i - 1].running - points_[i].running);
  }
  return max_drop;
}

int ConcurrencyTrace::max_rise() const {
  int max_rise = 0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    max_rise = std::max(max_rise, points_[i].running - points_[i - 1].running);
  }
  return max_rise;
}

std::vector<int> ConcurrencyTrace::resample(TimePoint t0, TimePoint t1,
                                            Duration dt) const {
  std::vector<int> samples;
  if (dt <= 0) return samples;
  for (TimePoint t = t0; t <= t1 + 1e-9; t += dt) {
    samples.push_back(value_at(t));
  }
  return samples;
}

std::string ConcurrencyTrace::sparkline(TimePoint t0, TimePoint t1, Duration dt,
                                        int max_value) const {
  std::string row;
  if (max_value <= 0) max_value = 1;
  for (int v : resample(t0, t1, dt)) {
    if (v <= 0) {
      row += '.';
    } else {
      int level = (v * 9) / max_value;
      level = std::clamp(level, 0, 9);
      row += static_cast<char>('0' + level);
    }
  }
  return row;
}

ConcurrencyFeed::ConcurrencyFeed(PoolId pool)
    : pool_(std::move(pool)),
      running_gauge_(obs::telemetry().metrics.gauge(
          "osprey_pool_running_tasks", {{"pool", pool_}})),
      started_(obs::telemetry().metrics.counter("osprey_pool_tasks_started_total",
                                                {{"pool", pool_}})),
      finished_(obs::telemetry().metrics.counter(
          "osprey_pool_tasks_finished_total", {{"pool", pool_}})),
      queue_wait_(obs::telemetry().metrics.histogram(
          "osprey_pool_queue_wait_seconds", {{"pool", pool_}})),
      claim_latency_(obs::telemetry().metrics.histogram(
          "osprey_pool_claim_latency_seconds", {{"pool", pool_}})) {}

void ConcurrencyFeed::consume(const obs::TaskEvent& event) {
  switch (event.kind) {
    case obs::TaskEventKind::kRunStart:
      ++running_;
      trace_.record(event.time, running_);
      started_.inc();
      running_gauge_.set(running_);
      break;
    case obs::TaskEventKind::kRunEnd:
      --running_;
      trace_.record(event.time, running_);
      finished_.inc();
      running_gauge_.set(running_);
      break;
    default:
      // kStalled and friends: the worker slot stays consumed (or the event
      // carries no concurrency change); nothing to trace.
      break;
  }
  obs::telemetry().trace.record(event);
}

void ConcurrencyFeed::mark(TimePoint time) { trace_.record(time, running_); }

void ConcurrencyFeed::reset(TimePoint time) {
  running_ = 0;
  trace_.record(time, 0);
  running_gauge_.set(0.0);
}

}  // namespace osprey::pool

// Concurrency traces: the measurement behind Figs. 3 and 4.
//
// A trace records (time, concurrently-running-task-count) steps for one
// worker pool. The figure benches print these series and derive utilization
// statistics from them (mean concurrency / worker count, task throughput).
#pragma once

#include <string>
#include <vector>

#include "osprey/core/types.h"

namespace osprey::pool {

struct TracePoint {
  TimePoint time;
  int running;
};

class ConcurrencyTrace {
 public:
  /// Record a change in the number of running tasks.
  void record(TimePoint time, int running);

  const std::vector<TracePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Mean number of running tasks over [t0, t1] (time-weighted).
  double mean_concurrency(TimePoint t0, TimePoint t1) const;

  /// Fraction of [t0, t1] with at least `k` tasks running.
  double fraction_at_least(int k, TimePoint t0, TimePoint t1) const;

  /// Largest instantaneous drop between consecutive points.
  int max_drop() const;

  /// Largest instantaneous rise between consecutive points. A threshold-
  /// gated pool refills many workers at once, so this is the depth of the
  /// saw-tooth in Fig 3's bottom plot.
  int max_rise() const;

  /// The concurrency value at time t (0 before the first point).
  int value_at(TimePoint t) const;

  /// Resample the step series at fixed dt for printing (returns one value
  /// per sample point from t0 to t1 inclusive).
  std::vector<int> resample(TimePoint t0, TimePoint t1, Duration dt) const;

  /// Render one compact ASCII row ('0'-'9X' density digits) for terminal
  /// figures; scale maps running-count to 0..9.
  std::string sparkline(TimePoint t0, TimePoint t1, Duration dt,
                        int max_value) const;

 private:
  std::vector<TracePoint> points_;  // non-decreasing time
};

}  // namespace osprey::pool

#include "osprey/pool/policy.h"

// QueryPolicy is header-only; this TU anchors the module in the archive.
namespace osprey::pool {}

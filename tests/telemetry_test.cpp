// End-to-end telemetry suite: a multi-pool DES campaign observed *only*
// through the exported telemetry — the acceptance test for the osprey::obs
// plane. Every assertion reads the metrics snapshot, the task-event stream,
// or the exported documents (Prometheus text, Chrome trace JSON); none reads
// campaign-internal state. Task spans must cover submit -> claim -> run ->
// report with monotonic per-hop timestamps, queue-depth and utilization
// metrics must match the known workload totals, and both export formats must
// parse.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "osprey/eqsql/db_api.h"
#include "osprey/eqsql/schema.h"
#include "osprey/json/json.h"
#include "osprey/me/sampler.h"
#include "osprey/me/task_runners.h"
#include "osprey/obs/telemetry.h"
#include "osprey/pool/sim_pool.h"
#include "osprey/sim/sim.h"

namespace osprey {
namespace {

constexpr WorkType kWork = 1;
constexpr int kTasks = 60;
constexpr int kWorkers = 4;

/// Run a two-pool campaign to completion with telemetry on and return the
/// ids, leaving the global telemetry context holding the full record.
std::vector<TaskId> run_observed_campaign() {
  sim::Simulation sim;
  db::Database database;
  {
    db::sql::Connection conn(database);
    EXPECT_TRUE(eqsql::create_schema(conn).is_ok());
  }
  eqsql::EQSQL api(database, sim);

  Rng sample_rng(4242);
  auto samples = me::uniform_samples(sample_rng, kTasks, 4, -32.768, 32.768);
  std::vector<std::string> payloads;
  payloads.reserve(samples.size());
  for (const auto& p : samples) payloads.push_back(json::array_of(p).dump());
  auto ids = api.submit_tasks("telemetry_exp", kWork, payloads);
  EXPECT_TRUE(ids.ok());

  std::vector<std::unique_ptr<pool::SimWorkerPool>> pools;
  for (const char* name : {"tel_pool_a", "tel_pool_b"}) {
    pool::SimPoolConfig c;
    c.name = name;
    c.work_type = kWork;
    c.num_workers = kWorkers;
    c.batch_size = kWorkers;
    c.threshold = 1;
    c.query_cost = 0.6;
    c.query_jitter = 0.15;
    pools.push_back(std::make_unique<pool::SimWorkerPool>(
        sim, api, c, me::ackley_sim_runner(5.0, 0.3), 7));
    EXPECT_TRUE(pools.back()->start().is_ok());
  }

  // The ME side: poll the input queue until every result is picked up
  // (each pickup emits the task's kCompleted event).
  std::set<TaskId> pending(ids.value().begin(), ids.value().end());
  std::function<void()> poll = [&] {
    for (auto it = pending.begin(); it != pending.end();) {
      if (api.try_query_result(*it).ok()) {
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
    if (!pending.empty()) sim.schedule_in(1.0, poll);
  };
  sim.schedule_in(1.0, poll);

  sim.run_until(3000.0);
  EXPECT_TRUE(pending.empty());
  for (auto& p : pools) p->stop();
  return ids.value();
}

TEST(TelemetryE2ETest, CampaignIsFullyObservableFromTelemetryAlone) {
  obs::ScopedTelemetry scoped;
  std::vector<TaskId> ids = run_observed_campaign();
  ASSERT_EQ(ids.size(), static_cast<std::size_t>(kTasks));

  // --- metrics match the known workload totals -------------------------------
  obs::MetricsSnapshot snap = obs::telemetry().metrics.snapshot();
  EXPECT_EQ(snap.counter_value("osprey_eqsql_tasks_submitted_total"),
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(snap.counter_value("osprey_eqsql_tasks_claimed_total"),
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(snap.counter_value("osprey_eqsql_tasks_reported_total"),
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(snap.counter_value("osprey_eqsql_results_picked_up_total"),
            static_cast<std::uint64_t>(kTasks));
  // Queues drained: both depth gauges returned to zero.
  EXPECT_DOUBLE_EQ(snap.gauge_value("osprey_eqsql_output_queue_depth"), 0.0);
  EXPECT_DOUBLE_EQ(snap.gauge_value("osprey_eqsql_input_queue_depth"), 0.0);

  // Per-pool utilization: both pools worked, their starts partition the
  // workload, every started task finished, and nobody is still running.
  std::uint64_t started = 0;
  for (const char* pool : {"tel_pool_a", "tel_pool_b"}) {
    std::uint64_t pool_started = snap.counter_value(
        "osprey_pool_tasks_started_total", {{"pool", pool}});
    EXPECT_GT(pool_started, 0u) << pool;
    EXPECT_EQ(snap.counter_value("osprey_pool_tasks_finished_total",
                                 {{"pool", pool}}),
              pool_started);
    EXPECT_DOUBLE_EQ(
        snap.gauge_value("osprey_pool_running_tasks", {{"pool", pool}}), 0.0);
    started += pool_started;
  }
  EXPECT_EQ(started, static_cast<std::uint64_t>(kTasks));

  // Latency histograms populated consistently with the counters.
  const obs::HistogramSample* queue_wait = snap.find_histogram(
      "osprey_pool_queue_wait_seconds", {{"pool", "tel_pool_a"}});
  ASSERT_NE(queue_wait, nullptr);
  EXPECT_GT(queue_wait->count, 0u);
  const obs::HistogramSample* submit_latency =
      snap.find_histogram("osprey_eqsql_submit_latency_seconds");
  ASSERT_NE(submit_latency, nullptr);
  EXPECT_EQ(submit_latency->count, 1u);  // one submit_tasks batch

  // --- the task-event stream covers every lifecycle hop ----------------------
  std::vector<obs::TaskEvent> events = obs::telemetry().trace.events();
  std::map<TaskId, std::vector<obs::TaskSpan>> by_task;
  for (obs::TaskSpan& s : obs::assemble_spans(events)) {
    by_task[s.task_id].push_back(s);
  }
  ASSERT_EQ(by_task.size(), ids.size());
  for (TaskId id : ids) {
    ASSERT_TRUE(by_task.count(id)) << "task " << id << " left no spans";
    const std::vector<obs::TaskSpan>& spans = by_task[id];
    ASSERT_EQ(spans.size(), 4u) << "task " << id;
    EXPECT_EQ(spans[0].name, "queued");
    EXPECT_EQ(spans[1].name, "cache_wait");
    EXPECT_EQ(spans[2].name, "run");
    EXPECT_EQ(spans[3].name, "await_result");
    // Monotonic per-hop timestamps, each hop starting where the last ended.
    for (std::size_t i = 0; i < spans.size(); ++i) {
      EXPECT_LE(spans[i].begin, spans[i].end);
      if (i > 0) {
        EXPECT_DOUBLE_EQ(spans[i].begin, spans[i - 1].end);
      }
    }
    // The run happened on one of the campaign's pools.
    EXPECT_TRUE(spans[2].pool == "tel_pool_a" || spans[2].pool == "tel_pool_b")
        << spans[2].pool;
  }

  // --- exports parse and agree with the stream -------------------------------
  Result<json::Value> trace_doc =
      json::parse(obs::chrome_trace_document().dump());
  ASSERT_TRUE(trace_doc.ok());
  const json::Array& trace_events =
      trace_doc.value()["traceEvents"].as_array();
  EXPECT_EQ(trace_events.size(), static_cast<std::size_t>(4 * kTasks));

  std::string prom = obs::prometheus_text();
  EXPECT_NE(prom.find("osprey_eqsql_tasks_submitted_total " +
                      std::to_string(kTasks)),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE osprey_pool_queue_wait_seconds histogram"),
            std::string::npos);
}

TEST(TelemetryE2ETest, DisabledTelemetryRecordsNothing) {
  ASSERT_FALSE(obs::enabled());
  obs::telemetry().reset();
  run_observed_campaign();
  EXPECT_EQ(obs::telemetry().trace.size(), 0u);
  obs::MetricsSnapshot snap = obs::telemetry().metrics.snapshot();
  EXPECT_EQ(snap.counter_value("osprey_eqsql_tasks_submitted_total"), 0u);
  for (const auto& counter : snap.counters) {
    EXPECT_EQ(counter.value, 0u) << counter.name;
  }
}

}  // namespace
}  // namespace osprey

// LSM storage-engine benchmarks (DESIGN.md §5.12).
//
// Four costs the storage design trades against each other:
//  - write throughput when the working set spills past the memtable budget
//    (rotation + CRC-framed run flush + size-tiered compaction on the hot
//    path, amortized over puts);
//  - point-read cost against spilled rows, block cache hot vs cold (the
//    cache_blocks knob: every read decodes a block on a miss, none on a
//    hit);
//  - recovery time as a function of campaign *history* with a fixed-length
//    WAL tail — with manifest checkpoints this must stay flat: the manifest
//    re-attaches runs without reading them, so only the tail is replayed;
//  - recovery time as a function of the *tail* itself, which is the knob
//    that actually costs (checkpoint cadence tuning).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>

#include "bench_json.h"
#include "osprey/core/log.h"
#include "osprey/db/database.h"
#include "osprey/db/expr.h"
#include "osprey/db/wal.h"
#include "osprey/storage/engine.h"

using namespace osprey;
using namespace osprey::db;
using namespace osprey::db::wal;
using namespace osprey::storage;

namespace {

Schema bench_schema() {
  return Schema({
      {"id", ColumnType::kInt, false, true},
      {"status", ColumnType::kText, false, false},
      {"payload", ColumnType::kText, true, false},
  });
}

Row bench_row(std::int64_t id) {
  return Row{Value(id), Value("queued"),
             Value(std::string(96, static_cast<char>('a' + id % 26)) + ":" +
                   std::to_string(id))};
}

StorageOptions small_memtable() {
  StorageOptions opts;
  opts.memtable_bytes = 32 * 1024;  // the live set will not fit
  opts.block_bytes = 4 * 1024;
  opts.cache_blocks = 256;
  opts.compact_fanout = 4;
  return opts;
}

// Device + engine + database, declared in dependency order: the engine must
// outlive the LsmStores the database's tables hold.
struct EngineFixture {
  explicit EngineFixture(StorageOptions opts)
      : disk(std::make_shared<SimDisk>()),
        device(std::make_unique<SimLogDevice>(disk)),
        engine(std::make_unique<StorageEngine>(*device, opts)) {
    (void)engine->attach(db);
    table = db.create_table("bench", bench_schema()).value();
  }

  LsmStore& store() { return *dynamic_cast<LsmStore*>(&table->store()); }

  std::shared_ptr<SimDisk> disk;
  std::unique_ptr<SimLogDevice> device;
  std::unique_ptr<StorageEngine> engine;
  Database db;
  Table* table = nullptr;
};

// Insert throughput while history continuously spills: every put goes to the
// memtable, every ~340 rows rotate+flush a run, every fourth flush compacts.
// The per-put price of the whole LSM machinery, amortized.
void BM_PutWithSpill(benchmark::State& state) {
  EngineFixture fx(small_memtable());
  std::int64_t id = 0;
  for (auto _ : state) {
    Transaction txn(fx.db);
    (void)fx.table->insert(bench_row(++id));
    benchmark::DoNotOptimize(txn.commit());
  }
  StorageStats stats = fx.engine->stats();
  state.SetItemsProcessed(state.iterations());
  state.counters["flushes"] = static_cast<double>(stats.flushes);
  state.counters["compactions"] = static_cast<double>(stats.compactions);
  state.counters["runs"] = static_cast<double>(stats.runs);
  state.counters["spilled_rows"] = static_cast<double>(stats.spilled_rows);
}
BENCHMARK(BM_PutWithSpill);

// Point reads against a fully spilled table. Arg is the block-cache capacity:
// 256 blocks hold the whole run set (steady-state hits), 1 block thrashes
// (every read pays a device read + block decode + bloom/index walk).
void BM_SpilledPointRead(benchmark::State& state) {
  constexpr std::int64_t kRows = 4000;
  StorageOptions opts = small_memtable();
  opts.cache_blocks = static_cast<std::size_t>(state.range(0));
  EngineFixture fx(opts);
  for (std::int64_t i = 1; i <= kRows; ++i) {
    (void)fx.table->insert(bench_row(i));
  }
  (void)fx.store().flush();  // everything into runs; memtable empty
  std::int64_t i = 0;
  for (auto _ : state) {
    const std::int64_t id = (++i * 2654435761u) % kRows + 1;
    benchmark::DoNotOptimize(fx.table->get(static_cast<RowId>(id)));
  }
  StorageStats stats = fx.engine->stats();
  state.SetItemsProcessed(state.iterations());
  const double reads =
      static_cast<double>(stats.cache_hits + stats.cache_misses);
  state.counters["cache_hit_rate"] =
      reads > 0 ? static_cast<double>(stats.cache_hits) / reads : 0.0;
}
BENCHMARK(BM_SpilledPointRead)->Arg(256)->Arg(1)->Unit(benchmark::kMicrosecond);

// Build a WAL+runs device: `txns` update transactions over a fixed live set,
// a manifest checkpoint `tail` transactions before the end (tail==txns means
// no checkpoint at all).
std::shared_ptr<SimDisk> build_campaign(int txns, int tail) {
  constexpr std::int64_t kLiveRows = 400;
  EngineFixture fx(small_memtable());
  WalOptions options;
  options.group_commit_txns = 0;  // sync on flush/checkpoint: fast build
  WalManager manager(*fx.device, options);
  (void)manager.open();
  fx.engine->install(manager);
  manager.attach(fx.db);
  for (std::int64_t i = 1; i <= kLiveRows; ++i) {
    Transaction txn(fx.db);
    (void)fx.table->insert(bench_row(i));
    (void)txn.commit();
  }
  for (int i = 1; i <= txns; ++i) {
    Transaction txn(fx.db);
    ScanOptions victim;
    victim.where = eq("id", Value(std::int64_t{i % kLiveRows + 1}));
    (void)fx.table->update(victim,
                           {{"status", lit(Value("pass-" + std::to_string(i)))}});
    (void)txn.commit();
    if (txns - i == tail) (void)manager.checkpoint(fx.db);
  }
  (void)manager.flush();
  manager.detach();
  return fx.disk;
}

// One recovery on a copy of the campaign device (recovery mutates the device:
// orphan GC, tail truncation), copied outside the timed region.
void recovery_loop(benchmark::State& state, const std::shared_ptr<SimDisk>& master) {
  std::size_t replayed = 0;
  bool used_manifest = false;
  for (auto _ : state) {
    state.PauseTiming();
    auto disk = std::make_shared<SimDisk>(*master);
    SimLogDevice device(disk);
    StorageEngine engine(device, small_memtable());
    Database db;
    state.ResumeTiming();
    Result<RecoveryInfo> info = engine.recover(db);
    benchmark::DoNotOptimize(info);
    if (info.ok()) {
      replayed = info.value().transactions_replayed;
      used_manifest = info.value().used_checkpoint;
    }
  }
  state.counters["txns_replayed"] = static_cast<double>(replayed);
  state.counters["used_manifest"] = used_manifest ? 1.0 : 0.0;
}

// Fixed 200-txn tail, growing history: the flat curve manifests buy. The
// replayed-txn counter pins the mechanism — it stays ~200 at every size.
void BM_RecoveryVsHistory(benchmark::State& state) {
  auto master = build_campaign(static_cast<int>(state.range(0)), 200);
  recovery_loop(state, master);
}
BENCHMARK(BM_RecoveryVsHistory)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

// Fixed 4000-txn history, growing tail: the curve that actually climbs, and
// with it the checkpoint-cadence trade-off.
void BM_RecoveryVsTail(benchmark::State& state) {
  auto master = build_campaign(4000, static_cast<int>(state.range(0)));
  recovery_loop(state, master);
}
BENCHMARK(BM_RecoveryVsTail)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  osprey::set_log_level(osprey::LogLevel::kError);
  benchmark::Initialize(&argc, argv);
  osprey::bench::JsonWriter out("storage");
  osprey::bench::JsonTeeReporter reporter(out);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  out.write();
  benchmark::Shutdown();
  return 0;
}

// Ablation A1 (§IV-C): the EMEWS DB's queue operations must be cheap — the
// Service "abstracts task caching and queuing operations in an efficient
// manner". Microbenchmarks of the embedded engine primitives the EQSQL hot
// path is built from: inserts, primary-key lookups, indexed selects, the
// priority pop, SQL parsing, and transaction overhead.
#include <benchmark/benchmark.h>

#include "osprey/db/database.h"
#include "osprey/db/sql_exec.h"
#include "osprey/db/sql_parser.h"

using namespace osprey;
using namespace osprey::db;

namespace {

Schema task_schema() {
  return Schema({
      {"eq_task_id", ColumnType::kInt, false, true},
      {"eq_status", ColumnType::kText, false, false},
      {"eq_priority", ColumnType::kInt, false, false},
      {"payload", ColumnType::kText, true, false},
  });
}

void populate(Table& table, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    (void)table.insert({Value(i), Value(i % 2 ? "queued" : "complete"),
                        Value(i % 100), Value("{\"x\": 1}")});
  }
}

void BM_TableInsert(benchmark::State& state) {
  std::int64_t i = 0;
  Database db;
  Table* table = db.create_table("t", task_schema()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table->insert({Value(i++), Value("queued"), Value(std::int64_t{0}),
                       Value("{}")}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableInsert);

void BM_FindPrimaryKey(benchmark::State& state) {
  Database db;
  Table* table = db.create_table("t", task_schema()).value();
  populate(*table, state.range(0));
  std::int64_t key = state.range(0) / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->find_pk(Value(key)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FindPrimaryKey)->Arg(1000)->Arg(10000);

void BM_IndexedStatusSelect(benchmark::State& state) {
  Database db;
  Table* table = db.create_table("t", task_schema()).value();
  (void)table->create_index("eq_status");
  populate(*table, state.range(0));
  ScanOptions options;
  options.where = eq("eq_status", Value("queued"));
  options.limit = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->select(options));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedStatusSelect)->Arg(1000)->Arg(10000);

void BM_UnindexedSelect(benchmark::State& state) {
  Database db;
  Table* table = db.create_table("t", task_schema()).value();
  populate(*table, state.range(0));
  ScanOptions options;
  options.where = gt("eq_priority", Value(std::int64_t{90}));
  options.limit = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->select(options));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnindexedSelect)->Arg(1000)->Arg(10000);

void BM_PriorityPop(benchmark::State& state) {
  // The §IV-C output-queue pop: SELECT ... ORDER BY priority DESC LIMIT 1
  // then DELETE, under a transaction.
  Database db;
  sql::Connection conn(db);
  (void)conn.execute(
      "CREATE TABLE q (eq_task_id INTEGER PRIMARY KEY, "
      "eq_priority INTEGER NOT NULL)");
  std::int64_t next_id = 0;
  for (; next_id < state.range(0); ++next_id) {
    (void)conn.execute("INSERT INTO q VALUES (?, ?)",
                       {Value(next_id), Value(next_id % 100)});
  }
  for (auto _ : state) {
    Transaction txn(db);
    auto top = conn.execute(
        "SELECT eq_task_id FROM q ORDER BY eq_priority DESC, eq_task_id ASC "
        "LIMIT 1");
    (void)conn.execute("DELETE FROM q WHERE eq_task_id = ?",
                       {top.value().rows[0][0]});
    txn.commit();
    // Keep the queue size constant.
    (void)conn.execute("INSERT INTO q VALUES (?, ?)",
                       {Value(next_id), Value(next_id % 100)});
    ++next_id;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PriorityPop)->Arg(750)->Arg(5000);

void BM_SqlParse(benchmark::State& state) {
  const std::string sql =
      "SELECT eq_task_id, json_out FROM eq_tasks WHERE eq_task_type = ? AND "
      "eq_status = 'queued' ORDER BY eq_priority DESC, eq_task_id ASC LIMIT 8";
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::parse_statement(sql));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlParse);

void BM_PreparedExecute(benchmark::State& state) {
  // With the statement cache, repeated execution skips the parse.
  Database db;
  sql::Connection conn(db);
  (void)conn.execute(
      "CREATE TABLE t (eq_task_id INTEGER PRIMARY KEY, eq_priority INTEGER)");
  for (std::int64_t i = 0; i < 1000; ++i) {
    (void)conn.execute("INSERT INTO t VALUES (?, ?)",
                       {Value(i), Value(i % 10)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(conn.execute(
        "SELECT eq_priority FROM t WHERE eq_task_id = ?", {Value(std::int64_t{500})}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PreparedExecute);

void BM_TransactionCommit(benchmark::State& state) {
  Database db;
  Table* table = db.create_table("t", task_schema()).value();
  std::int64_t i = 0;
  for (auto _ : state) {
    Transaction txn(db);
    (void)table->insert({Value(i++), Value("queued"), Value(std::int64_t{0}),
                         Value("{}")});
    txn.commit();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransactionCommit);

void BM_TransactionRollback(benchmark::State& state) {
  Database db;
  Table* table = db.create_table("t", task_schema()).value();
  std::int64_t i = 0;
  for (auto _ : state) {
    Transaction txn(db);
    (void)table->insert({Value(i++), Value("queued"), Value(std::int64_t{0}),
                         Value("{}")});
    txn.rollback();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransactionRollback);

}  // namespace

BENCHMARK_MAIN();

// End-to-end chaos recovery suite: the Fig-4-style multi-pool GPR campaign
// run under a scripted fault scenario on the DES engine.
//
// The scenario exercises every instrumented fault point at once:
//  - the theta FaaS endpoint goes offline for [30, 70) and fails ~15% of
//    executions transiently (retried under the shared RetryPolicy);
//  - the cloud<->theta link partitions during [60, 90) (deliveries and
//    result returns held, no retry budget consumed);
//  - the bebop<->cloud link runs 5x slow during [20, 40);
//  - archival transfers corrupt in flight with p=0.3 (checksum-caught,
//    retried) while bebop<->laptop partitions during [100, 130);
//  - five workers of pool 1 hang mid-campaign (tasks recovered by the
//    monitor's task lease);
//  - pool 2 crashes outright at t=120 (detected as a stall, its tasks
//    requeued, a replacement pool relaunched by the on-stall callback).
//
// Despite all of that, every one of the 750 tasks must complete exactly
// once, no result may be lost, requeue counts must match the injected
// faults — and the entire run must replay bit-identically from the same
// master seed.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "osprey/core/fault.h"
#include "osprey/eqsql/schema.h"
#include "osprey/faas/service.h"
#include "osprey/json/json.h"
#include "osprey/me/async_driver.h"
#include "osprey/me/sampler.h"
#include "osprey/me/task_runners.h"
#include "osprey/pool/monitor.h"
#include "osprey/pool/sim_pool.h"
#include "osprey/proxystore/proxy.h"

namespace osprey {
namespace {

constexpr WorkType kWork = 1;
constexpr int kTasks = 750;
constexpr int kWorkers = 33;
constexpr int kRetrainEvery = 50;
constexpr int kStalledWorkers = 5;
constexpr double kMedianRuntime = 18.0;
constexpr double kRuntimeSigma = 0.3;  // max draw ~55 s, far below the lease
constexpr double kTaskLease = 150.0;
constexpr double kCrashTime = 120.0;

/// Everything a chaos run produces that the determinism check compares.
struct ChaosOutcome {
  bool finished = false;
  std::size_t completed = 0;
  double finished_at = 0;
  std::vector<std::uint64_t> pool_tasks;  // per pool, replacement last
  int stalled_workers = 0;
  std::size_t lease_requeues = 0;
  std::size_t stalls_detected = 0;
  std::size_t crash_requeued = 0;
  std::uint64_t faas_retries = 0;
  std::uint64_t transfer_retries = 0;
  int retrain_calls = 0;
  int retrain_failures = 0;
  int db_complete = 0;
  int db_not_complete = 0;
  std::string fault_report;
};

ChaosOutcome run_chaos_campaign(std::uint64_t master_seed) {
  ChaosOutcome outcome;
  SeedSequence seeds(master_seed);

  sim::Simulation sim;
  net::Network network = net::Network::testbed();
  FaultRegistry faults(sim, seeds.next());
  network.set_fault_registry(&faults);

  faas::AuthService auth(sim);
  faas::FaaSService faas_service(sim, network, auth);
  faas::Token token = auth.issue("modeler");

  db::Database db;
  {
    db::sql::Connection conn(db);
    if (!eqsql::create_schema(conn).is_ok()) return outcome;
  }
  eqsql::EQSQL api(db, sim);

  transfer::TransferService transfers(sim, network, seeds.next());
  transfers.set_fault_registry(&faults);
  proxystore::GlobusStore globus_store(transfers, "bebop");

  faas::Endpoint theta_ep("theta-ep", "theta", seeds.next());
  theta_ep.set_fault_registry(&faults);
  (void)faas_service.register_endpoint(theta_ep);

  // --- the scripted scenario -------------------------------------------------
  faults.add_window(fault_point::endpoint_offline("theta-ep"), 30.0, 70.0);
  faults.set_probability(fault_point::endpoint("theta-ep"), 0.15);
  faults.add_window(fault_point::partition("cloud", "theta"), 60.0, 90.0);
  faults.add_window(fault_point::slow_link("bebop", "cloud"), 20.0, 40.0);
  faults.set_magnitude(fault_point::slow_link("bebop", "cloud"), 5.0);
  faults.set_probability(fault_point::transfer_corrupt(), 0.3);
  faults.add_window(fault_point::partition("bebop", "laptop"), 100.0, 130.0);
  faults.fail_next(fault_point::pool_stall("chaos_pool_1"), kStalledWorkers);

  // Cheap remote reprioritization: resolve the staged proxy (data must have
  // arrived intact), then rank the remaining points in submission order.
  // The campaign's recovery properties do not depend on GPR math.
  (void)theta_ep.registry().register_function(
      "reprioritize",
      [&](const json::Value& payload) -> Result<json::Value> {
        proxystore::Proxy<json::Value> proxy(
            globus_store, payload["proxy_key"].as_string(),
            proxystore::json_codec());
        auto resolved = proxy.resolve();
        if (!resolved.ok()) return resolved.error();
        std::size_t n = static_cast<std::size_t>(
            resolved.value().get()["remaining_n"].as_int());
        json::Array out;
        for (std::size_t i = 0; i < n; ++i) {
          out.emplace_back(static_cast<std::int64_t>(n - i));
        }
        json::Value result;
        result["priorities"] = json::Value(std::move(out));
        return result;
      },
      [&](const json::Value&) { return 2.0; });

  int retrain_calls = 0;
  int retrain_failures = 0;
  me::RetrainExecutor executor =
      [&](const std::vector<me::Point>& x, const std::vector<double>& y,
          const std::vector<me::Point>& remaining,
          std::function<void(std::vector<Priority>)> done) {
        ++retrain_calls;
        (void)x;
        json::Value train;
        train["train_n"] = json::Value(static_cast<std::int64_t>(y.size()));
        train["remaining_n"] =
            json::Value(static_cast<std::int64_t>(remaining.size()));
        std::string key = "train_" + std::to_string(retrain_calls);
        auto proxy = proxystore::Proxy<json::Value>::create(
            globus_store, key, train, proxystore::json_codec());
        if (!proxy.ok()) {
          ++retrain_failures;
          done({});
          return;
        }
        // Archive the training snapshot over the corruption-prone WAN: the
        // transfer service's checksum-verified retries carry it through.
        transfer::TransferOptions archive;
        archive.retry = RetryPolicy::immediate(6);
        (void)transfers.submit("bebop", "laptop", key, archive);

        json::Value payload;
        payload["proxy_key"] = json::Value(key);
        faas::SubmitOptions options;
        options.caller_site = "laptop";
        options.on_complete = [&retrain_failures, done](
                                  faas::FaaSTaskId,
                                  const Result<json::Value>& result) {
          if (!result.ok()) {
            ++retrain_failures;
            done({});
            return;
          }
          std::vector<Priority> priorities;
          for (const json::Value& v :
               result.value()["priorities"].as_array()) {
            priorities.push_back(static_cast<Priority>(v.as_int()));
          }
          done(std::move(priorities));
        };
        if (!faas_service.submit(token, "theta-ep", "reprioritize", payload,
                                 options).ok()) {
          ++retrain_failures;
          done({});
        }
      };

  me::AsyncDriverConfig driver_config;
  driver_config.exp_id = "chaos";
  driver_config.work_type = kWork;
  driver_config.retrain_after = kRetrainEvery;
  me::AsyncGprDriver driver(sim, api, driver_config, executor);

  // --- pools, monitor, crash script ------------------------------------------
  std::vector<std::unique_ptr<pool::SimWorkerPool>> pools;
  auto make_pool = [&](const std::string& name) -> pool::SimWorkerPool* {
    pool::SimPoolConfig c;
    c.name = name;
    c.work_type = kWork;
    c.num_workers = kWorkers;
    c.batch_size = kWorkers;
    c.threshold = 1;
    c.query_cost = 0.6;
    c.query_jitter = 0.15;
    pools.push_back(std::make_unique<pool::SimWorkerPool>(
        sim, api, c, me::ackley_sim_runner(kMedianRuntime, kRuntimeSigma),
        seeds.next()));
    pools.back()->set_fault_registry(&faults);
    return pools.back().get();
  };

  pool::MonitorConfig monitor_config;
  monitor_config.check_interval = 10.0;
  monitor_config.stall_timeout = 60.0;
  monitor_config.task_lease = kTaskLease;
  pool::PoolMonitor monitor(sim, api, monitor_config);

  std::size_t crash_requeued = 0;
  auto watch_pool = [&](const std::string& name) {
    EXPECT_TRUE(monitor
                    .watch(name,
                           [&](const PoolId& pool, std::size_t requeued) {
                             // Relaunch capacity, as §IV-B prescribes.
                             crash_requeued += requeued;
                             pool::SimWorkerPool* replacement =
                                 make_pool(pool + "_relaunch");
                             (void)replacement->start();
                           })
                    .is_ok());
  };

  sim.schedule_at(0.0, [&] { (void)make_pool("chaos_pool_1")->start(); });
  sim.schedule_at(40.0, [&] { (void)make_pool("chaos_pool_2")->start(); });
  sim.schedule_at(80.0, [&] { (void)make_pool("chaos_pool_3")->start(); });
  watch_pool("chaos_pool_1");
  watch_pool("chaos_pool_2");
  watch_pool("chaos_pool_3");
  EXPECT_TRUE(monitor.start().is_ok());
  sim.schedule_at(kCrashTime, [&] { pools[1]->crash(); });

  Rng sample_rng(seeds.next());
  auto samples = me::uniform_samples(sample_rng, kTasks, 4, -32.768, 32.768);
  if (!driver.run(samples).is_ok()) return outcome;

  double finished_at = 0;
  driver.set_on_complete([&] { finished_at = sim.now(); });

  // The monitor and idle pools reschedule forever: run to a horizon far past
  // any plausible finish instead of draining the event queue.
  sim.run_until(3000.0);

  // --- collect ---------------------------------------------------------------
  outcome.finished = driver.finished();
  outcome.completed = driver.completed();
  outcome.finished_at = finished_at;
  for (const auto& p : pools) {
    outcome.pool_tasks.push_back(p->tasks_completed());
    outcome.stalled_workers += p->stalled_workers();
  }
  outcome.lease_requeues = monitor.lease_requeues();
  outcome.stalls_detected = monitor.stalls_detected();
  outcome.crash_requeued = crash_requeued;
  outcome.faas_retries = faas_service.total_retries();
  outcome.transfer_retries = transfers.total_retries();
  outcome.retrain_calls = retrain_calls;
  outcome.retrain_failures = retrain_failures;
  auto task_ids = api.experiment_tasks("chaos").value();
  for (TaskId id : task_ids) {
    if (api.task_status(id).value() == eqsql::TaskStatus::kComplete) {
      ++outcome.db_complete;
    } else {
      ++outcome.db_not_complete;
    }
  }
  outcome.fault_report = faults.report();
  return outcome;
}

TEST(ChaosTest, CampaignSurvivesScriptedFaultsExactlyOnce) {
  ChaosOutcome o = run_chaos_campaign(2023);

  // The campaign finished and no result was lost.
  ASSERT_TRUE(o.finished);
  EXPECT_EQ(o.completed, static_cast<std::size_t>(kTasks));
  EXPECT_EQ(o.db_complete, kTasks);
  EXPECT_EQ(o.db_not_complete, 0);

  // Exactly-once: per-pool completion counters add up to the workload —
  // every injected failure was recovered by a requeue, never a duplicate.
  std::uint64_t total = 0;
  for (std::uint64_t t : o.pool_tasks) total += t;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kTasks));

  // Requeue counts match the injected faults.
  EXPECT_EQ(o.stalled_workers, kStalledWorkers);
  EXPECT_EQ(o.lease_requeues, static_cast<std::size_t>(kStalledWorkers));
  EXPECT_EQ(o.stalls_detected, 1u);  // exactly the crashed pool
  EXPECT_GT(o.crash_requeued, 0u);   // it held tasks when it died
  // 4 pools existed: 3 launched + 1 relaunched for the crashed one.
  EXPECT_EQ(o.pool_tasks.size(), 4u);

  // The fault plane actually bit: transient endpoint failures were retried
  // and corrupted transfers were caught and retried.
  EXPECT_GT(o.faas_retries, 0u);
  EXPECT_GT(o.transfer_retries, 0u);
  EXPECT_GE(o.retrain_calls, 10);

  // The recovery margins hold: everything wrapped up well before the
  // horizon, after the last fault window closed.
  EXPECT_GT(o.finished_at, kCrashTime);
  EXPECT_LT(o.finished_at, 1500.0);
}

TEST(ChaosTest, SameSeedReplaysBitIdentically) {
  ChaosOutcome a = run_chaos_campaign(99);
  ChaosOutcome b = run_chaos_campaign(99);

  ASSERT_TRUE(a.finished);
  ASSERT_TRUE(b.finished);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.pool_tasks, b.pool_tasks);
  EXPECT_EQ(a.stalled_workers, b.stalled_workers);
  EXPECT_EQ(a.lease_requeues, b.lease_requeues);
  EXPECT_EQ(a.stalls_detected, b.stalls_detected);
  EXPECT_EQ(a.crash_requeued, b.crash_requeued);
  EXPECT_EQ(a.faas_retries, b.faas_retries);
  EXPECT_EQ(a.transfer_retries, b.transfer_retries);
  EXPECT_EQ(a.retrain_calls, b.retrain_calls);
  EXPECT_EQ(a.retrain_failures, b.retrain_failures);
  EXPECT_EQ(a.db_complete, b.db_complete);
  // The full fault footprint — every point's checks and fires — matches.
  EXPECT_EQ(a.fault_report, b.fault_report);
}

TEST(ChaosTest, DifferentSeedIsADifferentScenario) {
  ChaosOutcome a = run_chaos_campaign(99);
  ChaosOutcome c = run_chaos_campaign(100);
  ASSERT_TRUE(a.finished);
  ASSERT_TRUE(c.finished);
  // Both recover fully...
  EXPECT_EQ(a.db_complete, kTasks);
  EXPECT_EQ(c.db_complete, kTasks);
  // ...but the stochastic texture differs (fires, timing).
  EXPECT_NE(a.fault_report, c.fault_report);
}

}  // namespace
}  // namespace osprey

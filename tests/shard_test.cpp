// The sharding plane (osprey/shard): key derivation, the global task-id
// encoding, scatter-gather routing, per-shard epoch fencing, and the C API
// surface (DESIGN.md §5.11).
//
// The scatter-gather edge matrix the design calls out:
//  - a shard holding none of the requested ids is never probed;
//  - all-shards-empty blocking waits time out with the unified message;
//  - a result surfacing on two merge paths is delivered exactly once;
//  - a shard that is mid-bootstrap (leaderless) or dead during a stats
//    fan-out is skipped under tolerate_partial and fails the call without.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "osprey/capi/osprey_c.h"
#include "osprey/core/clock.h"
#include "osprey/core/fault.h"
#include "osprey/db/sql_exec.h"
#include "osprey/eqsql/schema.h"
#include "osprey/faas/endpoint.h"
#include "osprey/json/json.h"
#include "osprey/obs/telemetry.h"
#include "osprey/pool/backend.h"
#include "osprey/shard/cluster.h"
#include "osprey/shard/key.h"
#include "osprey/shard/remote.h"
#include "osprey/shard/router.h"

namespace osprey::shard {
namespace {

// --- keys and the id encoding ------------------------------------------------

TEST(ShardKeyTest, SingleShardAlwaysRoutesToZero) {
  ShardSpec spec;  // shard_count = 1
  for (WorkType t : {0, 1, 7, 1000, -3}) {
    EXPECT_EQ(shard_of_work_type(spec, t), 0u);
  }
  EXPECT_EQ(shard_of_exp(spec, "any-experiment"), 0u);
}

TEST(ShardKeyTest, HashSpreadsAndIsStable) {
  ShardSpec spec;
  spec.shard_count = 4;
  bool touched[4] = {false, false, false, false};
  for (WorkType t = 0; t < 64; ++t) {
    const ShardId s = shard_of_work_type(spec, t);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, shard_of_work_type(spec, t));  // deterministic
    touched[s] = true;
  }
  for (bool hit : touched) EXPECT_TRUE(hit);  // 64 keys cover 4 shards
}

TEST(ShardKeyTest, RangeKeepsAdjacentTypesTogether) {
  ShardSpec spec;
  spec.shard_count = 3;
  spec.scheme = ShardScheme::kRange;
  spec.range_width = 4;
  EXPECT_EQ(shard_of_work_type(spec, 0), shard_of_work_type(spec, 3));
  EXPECT_NE(shard_of_work_type(spec, 3), shard_of_work_type(spec, 4));
  EXPECT_EQ(shard_of_work_type(spec, 4), 1u);
  EXPECT_EQ(shard_of_work_type(spec, 8), 2u);
  EXPECT_EQ(shard_of_work_type(spec, 12), 0u);  // wraps mod shard_count
}

TEST(ShardKeyTest, ExpKeyingDispatchesOnExperiment) {
  ShardSpec spec;
  spec.shard_count = 5;
  spec.key = ShardKeyKind::kExpId;
  const ShardId a = shard_for(spec, 1, "exp-a");
  EXPECT_EQ(a, shard_of_exp(spec, "exp-a"));
  // Same experiment, different type: same shard (campaign colocation).
  EXPECT_EQ(shard_for(spec, 99, "exp-a"), a);
}

TEST(ShardIdEncodingTest, GlobalIdsRoundTripAndShardZeroIsIdentity) {
  EXPECT_EQ(global_task_id(42, 0), 42);  // unsharded compatibility
  for (ShardId s : {0u, 1u, 7u, kMaxShards - 1}) {
    const TaskId global = global_task_id(123456789, s);
    EXPECT_EQ(shard_of_task(global), s);
    EXPECT_EQ(local_task_id(global), 123456789);
    EXPECT_GT(global, 0);  // the sign bit stays clear
  }
}

// --- the merge ---------------------------------------------------------------

TEST(MergeCompletedTest, RoundRobinsAndPreservesPerShardOrder) {
  const std::vector<std::vector<TaskId>> per_shard = {{1, 2, 3}, {10, 20}};
  const std::vector<TaskId> merged = merge_completed(per_shard, 0);
  EXPECT_EQ(merged, (std::vector<TaskId>{1, 10, 2, 20, 3}));
}

TEST(MergeCompletedTest, DuplicateOnTwoShardsMergePathsDeliversOnce) {
  // The same id surfacing on two shards' merge paths (a retried scatter
  // overlapping a slow first reply) must be delivered exactly once.
  const std::vector<std::vector<TaskId>> per_shard = {{5, 7}, {7, 9}};
  const std::vector<TaskId> merged = merge_completed(per_shard, 0);
  EXPECT_EQ(merged, (std::vector<TaskId>{5, 7, 9}));
}

TEST(MergeCompletedTest, LimitStopsTheMerge) {
  const std::vector<std::vector<TaskId>> per_shard = {{1, 2}, {3, 4}};
  EXPECT_EQ(merge_completed(per_shard, 3).size(), 3u);
  EXPECT_EQ(merge_completed(per_shard, 1), (std::vector<TaskId>{1}));
}

// --- cluster + router fixtures -----------------------------------------------

/// A sharded testbed: `shards` single-leader groups under kRange keying with
/// range_width 1, so work type t deterministically owns shard t % shards.
struct Sharded {
  ManualClock clock;
  net::Network network = net::Network::testbed();
  FaultRegistry faults{clock, 0x51a2};
  ShardCluster cluster;

  static ShardClusterConfig make_config(std::uint32_t shards) {
    ShardClusterConfig config;
    config.spec.shard_count = shards;
    config.spec.scheme = ShardScheme::kRange;
    config.spec.range_width = 1;
    return config;
  }

  explicit Sharded(std::uint32_t shards)
      : cluster(clock, network, make_config(shards)) {
    network.set_fault_registry(&faults);
    cluster.set_fault_registry(&faults);
  }

  /// Leaders everywhere; `followers` followers per shard.
  void boot(int followers = 0) {
    const char* sites[] = {"bebop", "theta", "midway2"};
    for (ShardId s = 0; s < cluster.shard_count(); ++s) {
      ASSERT_TRUE(cluster
                      .create_leader(s, "lead" + std::to_string(s),
                                     sites[s % 3])
                      .ok());
      for (int f = 0; f < followers; ++f) {
        ASSERT_TRUE(cluster
                        .add_follower(s,
                                      "f" + std::to_string(s) + "-" +
                                          std::to_string(f),
                                      sites[(s + f + 1) % 3])
                        .ok());
      }
    }
  }
};

ShardRouterConfig manual_sleep(ManualClock& clock) {
  ShardRouterConfig config;
  config.sleeper = [&clock](Duration d) { clock.advance(d); };
  return config;
}

/// Claim-and-report `id`'s task through the router.
void complete_task(ShardRouter& router, WorkType type, TaskId id,
                   const std::string& result = "{\"y\":1}") {
  Result<std::vector<eqsql::TaskHandle>> claimed =
      router.try_query_tasks(type, 1);
  ASSERT_TRUE(claimed.ok());
  ASSERT_EQ(claimed.value().size(), 1u);
  ASSERT_EQ(claimed.value().front().eq_task_id, id);
  ASSERT_TRUE(router.report_task(id, type, result).is_ok());
}

// --- single-key routing ------------------------------------------------------

TEST(ShardRouterTest, SubmitRoutesByWorkTypeAndGlobalizesIds) {
  Sharded f(3);
  f.boot();
  ShardRouter router(f.cluster);
  for (WorkType t : {0, 1, 2, 4}) {
    Result<TaskId> id = router.submit_task("e", t, "{}");
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(shard_of_task(id.value()), router.shard_of(t));
    EXPECT_EQ(router.shard_of(t), static_cast<ShardId>(t % 3));
  }
  // Each shard's database allocated its own dense local sequence (shard 1
  // already took two submits above: types 1 and 4 both map to it).
  EXPECT_EQ(local_task_id(router.submit_task("e", 0, "{}").value()), 2);
  EXPECT_EQ(local_task_id(router.submit_task("e", 2, "{}").value()), 2);
  EXPECT_EQ(local_task_id(router.submit_task("e", 1, "{}").value()), 3);
}

TEST(ShardRouterTest, ClaimReportResultRoundTripOnTheOwningShard) {
  Sharded f(3);
  f.boot();
  ShardRouter router(f.cluster);
  const WorkType type = 2;
  Result<TaskId> id = router.submit_task("e", type, "{\"x\":5}");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(router.queued_count(type).value(), 1);

  Result<std::vector<eqsql::TaskHandle>> claimed =
      router.try_query_tasks(type, 1, "pool-a");
  ASSERT_TRUE(claimed.ok());
  ASSERT_EQ(claimed.value().size(), 1u);
  EXPECT_EQ(claimed.value().front().eq_task_id, id.value());
  EXPECT_EQ(claimed.value().front().payload, "{\"x\":5}");

  ASSERT_TRUE(router.report_task(id.value(), type, "{\"y\":6}").is_ok());
  EXPECT_EQ(router.task_status(id.value()).value(),
            eqsql::TaskStatus::kComplete);
  EXPECT_EQ(router.peek_result(id.value()).value(), "{\"y\":6}");
  EXPECT_EQ(router.try_query_result(id.value()).value(), "{\"y\":6}");
}

TEST(ShardRouterTest, OutOfRangeShardBitsAreRejected) {
  Sharded f(2);
  f.boot();
  ShardRouter router(f.cluster);
  const TaskId bogus = global_task_id(1, 7);  // shard 7 of 2
  EXPECT_EQ(router.report_task(bogus, 0, "{}").code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(router.peek_result(bogus).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(router.try_query_completed({bogus}, 1).code(),
            ErrorCode::kInvalidArgument);
}

TEST(ShardRouterTest, FailoverFencesTheOldEpochOnOneShardOnly) {
  Sharded f(3);
  f.boot(/*followers=*/1);
  ShardRouter router(f.cluster);
  const WorkType type = 1;  // owns shard 1
  const ShardId s = router.shard_of(type);
  ASSERT_EQ(s, 1u);

  Result<TaskId> id = router.submit_task("e", type, "{}");
  ASSERT_TRUE(id.ok());
  Result<std::vector<eqsql::TaskHandle>> claimed =
      router.try_query_tasks(type, 1);
  ASSERT_TRUE(claimed.ok());
  ASSERT_EQ(claimed.value().size(), 1u);
  ASSERT_TRUE(f.cluster.pump_all().ok());  // replicate the claim

  const repl::Epoch old_epoch = f.cluster.epoch(s);
  ASSERT_TRUE(f.cluster.group(s).kill("lead1").is_ok());
  ASSERT_TRUE(f.cluster.promote(s).ok());
  EXPECT_GT(f.cluster.epoch(s), old_epoch);
  // The other shards' epochs are untouched — failure isolation.
  EXPECT_EQ(f.cluster.epoch(0), 1u);
  EXPECT_EQ(f.cluster.epoch(2), 1u);

  // A straggler stamped with the deposed epoch dies with kConflict.
  EXPECT_EQ(
      router.report_task_at_epoch(old_epoch, id.value(), type, "{\"y\":0}")
          .code(),
      ErrorCode::kConflict);
  EXPECT_EQ(router.fenced_writes(), 1u);
  // The current-epoch report lands: exactly-once preserved across failover.
  ASSERT_TRUE(router.report_task(id.value(), type, "{\"y\":1}").is_ok());
  EXPECT_EQ(router.try_query_result(id.value()).value(), "{\"y\":1}");
}

// --- scatter-gather ----------------------------------------------------------

TEST(ShardScatterTest, StatsSumAcrossShards) {
  Sharded f(3);
  f.boot();
  ShardRouter router(f.cluster);
  ASSERT_TRUE(router.submit_task("e", 0, "{}").ok());
  ASSERT_TRUE(router.submit_task("e", 1, "{}").ok());
  Result<TaskId> done = router.submit_task("e", 2, "{}");
  ASSERT_TRUE(done.ok());
  complete_task(router, 2, done.value());

  Result<eqsql::QueueStats> stats = router.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().queued, 2);
  EXPECT_EQ(stats.value().complete, 1);
  EXPECT_EQ(stats.value().output_queue, 2);
  EXPECT_EQ(stats.value().input_queue, 1);
}

TEST(ShardScatterTest, DeadShardIsSkippedUnderPartialTolerance) {
  Sharded f(2);
  f.boot();
  ShardRouter router(f.cluster);
  ASSERT_TRUE(router.submit_task("e", 0, "{}").ok());
  ASSERT_TRUE(f.cluster.group(1).kill("lead1").is_ok());

  Result<eqsql::QueueStats> stats = router.stats();
  ASSERT_TRUE(stats.ok());  // shard 0 still answers
  EXPECT_EQ(stats.value().queued, 1);
  EXPECT_GE(router.partial_failures(), 1u);
}

TEST(ShardScatterTest, StrictModeFailsTheScatterOnAnyDeadShard) {
  Sharded f(2);
  f.boot();
  ShardRouterConfig config;
  config.tolerate_partial = false;
  ShardRouter router(f.cluster, config);
  ASSERT_TRUE(f.cluster.group(1).kill("lead1").is_ok());
  EXPECT_EQ(router.stats().code(), ErrorCode::kUnavailable);
}

TEST(ShardScatterTest, MidBootstrapShardIsToleratedDuringStatsFanOut) {
  // Shard 1 exists but has no leader yet (mid-bootstrap): the fan-out skips
  // it instead of failing the whole snapshot.
  Sharded f(2);
  ASSERT_TRUE(f.cluster.create_leader(0, "lead0", "bebop").ok());
  ShardRouter router(f.cluster);
  ASSERT_TRUE(router.submit_task("e", 0, "{}").ok());
  Result<eqsql::QueueStats> stats = router.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().queued, 1);
  EXPECT_GE(router.partial_failures(), 1u);
  // All shards down is still an error, tolerance or not.
  ASSERT_TRUE(f.cluster.group(0).kill("lead0").is_ok());
  EXPECT_EQ(router.stats().code(), ErrorCode::kUnavailable);
}

TEST(ShardScatterTest, CompletedGatherSkipsShardsHoldingNoIds) {
  // Ids all live on shard 0; shard 1 is dead — but it holds none of the
  // ids, so the gather never probes it and sees no partial failure.
  Sharded f(2);
  f.boot();
  ShardRouter router(f.cluster);
  Result<TaskId> id = router.submit_task("e", 0, "{}");
  ASSERT_TRUE(id.ok());
  complete_task(router, 0, id.value());
  ASSERT_TRUE(f.cluster.group(1).kill("lead1").is_ok());

  Result<std::vector<TaskId>> completed =
      router.try_query_completed({id.value()}, 1);
  ASSERT_TRUE(completed.ok());
  EXPECT_EQ(completed.value(), (std::vector<TaskId>{id.value()}));
  EXPECT_EQ(router.partial_failures(), 0u);
}

TEST(ShardScatterTest, DuplicateIdsInTheRequestDeliverOnce) {
  Sharded f(2);
  f.boot();
  ShardRouter router(f.cluster);
  Result<TaskId> id = router.submit_task("e", 0, "{}");
  ASSERT_TRUE(id.ok());
  complete_task(router, 0, id.value());

  Result<std::vector<TaskId>> completed =
      router.try_query_completed({id.value(), id.value()}, 2);
  ASSERT_TRUE(completed.ok());
  EXPECT_EQ(completed.value().size(), 1u);
}

TEST(ShardScatterTest, GatherPopsExactlyOnceAcrossCalls) {
  Sharded f(2);
  f.boot();
  ShardRouter router(f.cluster);
  std::vector<TaskId> ids;
  for (WorkType t : {0, 1}) {
    Result<TaskId> id = router.submit_task("e", t, "{}");
    ASSERT_TRUE(id.ok());
    complete_task(router, t, id.value());
    ids.push_back(id.value());
  }
  // Budget 1: exactly one id pops; the other stays deliverable later —
  // the shrinking-budget rule means no probe over-pops.
  Result<std::vector<TaskId>> first = router.try_query_completed(ids, 1);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().size(), 1u);
  Result<std::vector<TaskId>> second = router.try_query_completed(ids, 2);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value().size(), 1u);
  EXPECT_NE(first.value()[0], second.value()[0]);
  // Both delivered; nothing left.
  EXPECT_TRUE(router.try_query_completed(ids, 2).value().empty());
}

TEST(ShardScatterTest, AsCompletedTimesOutWhenEveryShardIsEmpty) {
  Sharded f(2);
  f.boot();
  ShardRouter router(f.cluster, manual_sleep(f.clock));
  std::vector<TaskId> ids;
  for (WorkType t : {0, 1}) {
    Result<TaskId> id = router.submit_task("e", t, "{}");
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  // Nothing completes: the wait polls (manual clock) until the deadline.
  Result<std::vector<TaskId>> waited =
      router.as_completed(ids, 2, eqsql::WaitSpec::poll(0.1, 1.0));
  ASSERT_FALSE(waited.ok());
  EXPECT_EQ(waited.code(), ErrorCode::kTimeout);
  EXPECT_NE(waited.error().message.find("0 of 2"), std::string::npos);
}

TEST(ShardScatterTest, AsCompletedGathersAcrossShardsAndPopRemoves) {
  Sharded f(3);
  f.boot();
  ShardRouter router(f.cluster, manual_sleep(f.clock));
  std::vector<TaskId> ids;
  for (WorkType t : {0, 1, 2}) {
    Result<TaskId> id = router.submit_task("e", t, "{}");
    ASSERT_TRUE(id.ok());
    complete_task(router, t, id.value());
    ids.push_back(id.value());
  }
  Result<std::vector<TaskId>> done =
      router.as_completed(ids, 2, eqsql::WaitSpec::poll(0.1, 1.0));
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done.value().size(), 2u);

  std::vector<TaskId> rest = ids;
  Result<TaskId> popped =
      router.pop_completed(rest, eqsql::WaitSpec::poll(0.1, 1.0));
  ASSERT_TRUE(popped.ok());
  EXPECT_EQ(rest.size(), 2u);  // removed from the caller's list
  for (TaskId r : rest) EXPECT_NE(r, popped.value());

  EXPECT_EQ(router.as_completed(ids, 4, {}).code(),
            ErrorCode::kInvalidArgument);  // n > ids
  EXPECT_TRUE(router.as_completed(ids, 0, {}).value().empty());
}

// --- notify-mode waits -------------------------------------------------------

TEST(ShardNotifyTest, UnionWaiterBumpsOnAnySubscribedShard) {
  db::Database db_a, db_b;
  {
    db::sql::Connection conn_a(db_a), conn_b(db_b);
    ASSERT_TRUE(eqsql::create_schema(conn_a).is_ok());
    ASSERT_TRUE(eqsql::create_schema(conn_b).is_ok());
  }
  eqsql::Notifier notify_a, notify_b;
  notify_a.attach(db_a);
  notify_b.attach(db_b);
  ManualClock clock;
  eqsql::EQSQL api_a(db_a, clock), api_b(db_b, clock);
  {
    UnionWaiter waiter({&notify_a, &notify_b}, /*eq_type=*/3);
    EXPECT_EQ(waiter.version(), 0u);
    ASSERT_TRUE(api_a.submit_task("e", 3, "{}").ok());
    EXPECT_EQ(waiter.version(), 1u);
    ASSERT_TRUE(api_b.submit_task("e", 3, "{}").ok());
    EXPECT_EQ(waiter.version(), 2u);
    ASSERT_TRUE(api_b.submit_task("e", 4, "{}").ok());
    EXPECT_EQ(waiter.version(), 2u);  // other work types stay silent
  }
  // Destroyed waiter: no listener fires (remove_listener drained them).
  ASSERT_TRUE(api_a.submit_task("e", 3, "{}").ok());
  notify_a.detach();
  notify_b.detach();
}

TEST(ShardNotifyTest, BlockingClaimWakesOnTheOwningShardsCommit) {
  Sharded f(2);
  f.boot();
  ASSERT_TRUE(f.cluster.enable_notifications().is_ok());
  ShardRouter router(f.cluster);
  const WorkType type = 1;

  std::atomic<bool> claimed{false};
  std::thread waiter([&] {
    Result<std::vector<eqsql::TaskHandle>> got =
        router.query_task(type, 1, "p", eqsql::WaitSpec::notify(10.0));
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(got.value().size(), 1u);
      EXPECT_EQ(shard_of_task(got.value().front().eq_task_id), 1u);
    }
    claimed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(claimed.load());
  ASSERT_TRUE(router.submit_task("e", type, "{}").ok());
  waiter.join();
  EXPECT_TRUE(claimed.load());
}

// --- the pool backend seam ---------------------------------------------------

TEST(ShardPoolBackendTest, BackendRoutesClaimReportRequeueToOwningShards) {
  Sharded f(2);
  f.boot();
  ShardRouter router(f.cluster);
  const WorkType type = 1;
  pool::PoolBackend backend = router.pool_backend(type);
  ASSERT_TRUE(backend.complete());

  std::vector<TaskId> ids;
  for (int i = 0; i < 3; ++i) {
    Result<TaskId> id = router.submit_task("e", type, "{}");
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  // Deficit below threshold: the gate returns empty without claiming.
  auto gated = backend.claim_batched(type, 4, 3, 2, "p");
  ASSERT_TRUE(gated.ok());
  EXPECT_TRUE(gated.value().empty());
  // Above threshold: claims min(deficit, available) with global ids.
  auto claimed = backend.claim_batched(type, 4, 2, 0, "p");
  ASSERT_TRUE(claimed.ok());
  ASSERT_EQ(claimed.value().size(), 3u);
  EXPECT_EQ(shard_of_task(claimed.value().front().eq_task_id), 1u);

  ASSERT_TRUE(backend.report(ids[0], type, "{\"y\":0}").is_ok());
  auto requeued = backend.requeue({ids[1], ids[2]});
  ASSERT_TRUE(requeued.ok());
  EXPECT_EQ(requeued.value(), 2u);
  EXPECT_EQ(router.queued_count(type).value(), 2);
  // Work-type keying resolves the owning shard's notifier (none attached).
  EXPECT_EQ(backend.notifier(), nullptr);
  ASSERT_TRUE(f.cluster.enable_notifications().is_ok());
  EXPECT_EQ(backend.notifier(), f.cluster.notifier(1));
}

// --- telemetry ---------------------------------------------------------------

TEST(ShardObsTest, ShardingPlaneIsVisibleFromTelemetryAlone) {
  obs::ScopedTelemetry scoped;
  Sharded f(2);
  f.boot(/*followers=*/1);
  ShardRouter router(f.cluster);
  Result<TaskId> id = router.submit_task("e", 0, "{}");
  ASSERT_TRUE(id.ok());
  complete_task(router, 0, id.value());
  ASSERT_TRUE(f.cluster.pump_all().ok());  // refreshes the gauges

  obs::MetricsRegistry& registry = obs::telemetry().metrics;
  EXPECT_EQ(registry.gauge("osprey_shard_epoch", {{"shard", "0"}}).value(),
            1.0);
  EXPECT_EQ(registry.gauge("osprey_shard_lag_lsns", {{"shard", "0"}}).value(),
            0.0);  // pumped to parity
  EXPECT_EQ(
      registry.gauge("osprey_shard_queue_depth", {{"shard", "0"}}).value(),
      0.0);

  ASSERT_TRUE(router.try_query_completed({id.value()}, 1).ok());
  EXPECT_GE(registry.counter("osprey_shard_scatter_total").value(), 1u);
}

// --- remote control ----------------------------------------------------------

TEST(ShardRemoteTest, ControlSurfaceDrivesTheClusterOverTheEndpoint) {
  Sharded f(2);
  f.boot();
  faas::Endpoint endpoint("shard-ep", "cloud");
  ASSERT_TRUE(register_shard_functions(endpoint, f.cluster).is_ok());

  Result<json::Value> routed = endpoint.execute(
      "shard_of", json::parse("{\"eq_type\":1}").value());
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.value()["shard"].as_int(), 1);
  EXPECT_EQ(routed.value()["key"].as_string(), "work_type");

  Result<json::Value> added = endpoint.execute(
      "shard_add_follower",
      json::parse("{\"shard\":1,\"id\":\"f1\",\"site\":\"theta\"}").value());
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(added.value()["shard"].as_int(), 1);

  ShardRouter router(f.cluster);
  Result<TaskId> id = router.submit_task("e", 1, "{}");
  ASSERT_TRUE(id.ok());
  Result<json::Value> pumped = endpoint.execute("shard_pump", json::Value());
  ASSERT_TRUE(pumped.ok());
  EXPECT_GT(pumped.value()["batches_shipped"].as_int(), 0);

  Result<json::Value> status = endpoint.execute("shard_status", json::Value());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value()["shard_count"].as_int(), 2);
  EXPECT_EQ(status.value()["shards"].as_array().size(), 2u);

  ASSERT_TRUE(f.cluster.group(1).kill("lead1").is_ok());
  Result<json::Value> promoted = endpoint.execute(
      "shard_promote", json::parse("{\"shard\":1,\"id\":0}").value());
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(promoted.value()["leader"].as_string(), "f1");
  EXPECT_EQ(promoted.value()["epoch"].as_int(), 2);

  // Bad shard indexes come back as kInvalidArgument, not crashes.
  EXPECT_EQ(endpoint.execute("shard_promote",
                             json::parse("{\"shard\":9}").value())
                .code(),
            ErrorCode::kInvalidArgument);
}

// --- the C API ---------------------------------------------------------------

TEST(ShardCapiTest, ConfiguredShardsRouteTheWholeListingOneSurface) {
  osprey_service* service = osprey_service_create();
  ASSERT_NE(service, nullptr);
  ASSERT_EQ(osprey_service_configure_shards(service, 2,
                                            OSPREY_SHARD_KEY_WORK_TYPE,
                                            OSPREY_SHARD_RANGE),
            OSPREY_OK);
  EXPECT_EQ(osprey_shard_count(service), 2u);
  ASSERT_EQ(osprey_service_start(service), OSPREY_OK);
  // Too late to reconfigure once started.
  EXPECT_EQ(osprey_service_configure_shards(service, 4,
                                            OSPREY_SHARD_KEY_WORK_TYPE,
                                            OSPREY_SHARD_HASH),
            OSPREY_E_CONFLICT);

  // Range keying with the default width: types 0 and 16 land on different
  // shards (sanity-check through the routing probe).
  uint32_t shard0 = 99, shard16 = 99;
  ASSERT_EQ(osprey_shard_of(service, 0, nullptr, &shard0), OSPREY_OK);
  ASSERT_EQ(osprey_shard_of(service, 16, nullptr, &shard16), OSPREY_OK);
  EXPECT_EQ(shard0, 0u);
  EXPECT_EQ(shard16, 1u);

  osprey_client* client = osprey_client_connect(service);
  ASSERT_NE(client, nullptr);

  int64_t id0 = 0, id16 = 0;
  ASSERT_EQ(osprey_submit_task(client, "exp", 0, "{\"x\":0}", 0, nullptr,
                               &id0),
            OSPREY_OK);
  ASSERT_EQ(osprey_submit_task(client, "exp", 16, "{\"x\":16}", 0, nullptr,
                               &id16),
            OSPREY_OK);
  // The shard index rides in the id's high bits; shard 0 stays identity.
  uint32_t s = 99;
  ASSERT_EQ(osprey_shard_of_task(service, id0, &s), OSPREY_OK);
  EXPECT_EQ(s, 0u);
  ASSERT_EQ(osprey_shard_of_task(service, id16, &s), OSPREY_OK);
  EXPECT_EQ(s, 1u);

  char payload[128];
  int64_t claimed = 0;
  ASSERT_EQ(osprey_query_task(client, 16, "pool", 0.01, 0.1, &claimed,
                              payload, sizeof payload),
            OSPREY_OK);
  EXPECT_EQ(claimed, id16);
  EXPECT_STREQ(payload, "{\"x\":16}");
  ASSERT_EQ(osprey_report_task(client, id16, 16, "{\"y\":16}"), OSPREY_OK);

  char result[128];
  ASSERT_EQ(osprey_query_result(client, id16, 0.01, 0.5, result,
                                sizeof result),
            OSPREY_OK);
  EXPECT_STREQ(result, "{\"y\":16}");

  // Aggregated stats cover both shards; per-shard stats split them.
  osprey_queue_stats stats;
  ASSERT_EQ(osprey_stats(client, &stats), OSPREY_OK);
  EXPECT_EQ(stats.queued, 1);
  EXPECT_EQ(stats.complete, 1);
  osprey_queue_stats shard_one;
  ASSERT_EQ(osprey_shard_stats(client, 1, &shard_one), OSPREY_OK);
  EXPECT_EQ(shard_one.complete, 1);
  EXPECT_EQ(shard_one.queued, 0);
  EXPECT_EQ(osprey_shard_stats(client, 2, &shard_one),
            OSPREY_E_INVALID_ARGUMENT);

  int64_t queued = 0;
  ASSERT_EQ(osprey_queued_count(client, 0, &queued), OSPREY_OK);
  EXPECT_EQ(queued, 1);

  size_t canceled = 0;
  const int64_t both[] = {id0, id16};
  ASSERT_EQ(osprey_cancel_tasks(client, both, 2, &canceled), OSPREY_OK);
  EXPECT_EQ(canceled, 1u);  // id16 already complete

  osprey_client_destroy(client);
  ASSERT_EQ(osprey_service_stop(service), OSPREY_OK);
  osprey_service_destroy(service);
}

TEST(ShardCapiTest, UnconfiguredServiceStaysSingleShardIdentity) {
  osprey_service* service = osprey_service_create();
  ASSERT_EQ(osprey_service_start(service), OSPREY_OK);
  EXPECT_EQ(osprey_shard_count(service), 1u);
  osprey_client* client = osprey_client_connect(service);
  ASSERT_NE(client, nullptr);
  int64_t id = 0;
  ASSERT_EQ(osprey_submit_task(client, "exp", 7, "{}", 0, nullptr, &id),
            OSPREY_OK);
  EXPECT_EQ(id, 1);  // dense local id, no shard bits
  osprey_client_destroy(client);
  osprey_service_destroy(service);
}

}  // namespace
}  // namespace osprey::shard

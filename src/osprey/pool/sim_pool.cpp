#include "osprey/pool/sim_pool.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "osprey/core/log.h"
#include "osprey/core/retry.h"

namespace osprey::pool {

SimWorkerPool::SimWorkerPool(sim::Simulation& sim, eqsql::EQSQL& api,
                             SimPoolConfig config, SimTaskRunner runner,
                             std::uint64_t seed)
    : SimWorkerPool(sim, PoolBackend::local(api), std::move(config),
                    std::move(runner), seed) {}

SimWorkerPool::SimWorkerPool(sim::Simulation& sim, PoolBackend backend,
                             SimPoolConfig config, SimTaskRunner runner,
                             std::uint64_t seed)
    : sim_(sim),
      backend_(std::move(backend)),
      config_(std::move(config)),
      policy_(config_.batch_size, config_.threshold),
      runner_(std::move(runner)),
      rng_(seed),
      feed_(config_.name) {
  assert(runner_ && "pool needs a task runner");
  assert(backend_.complete() && "pool backend must route claim/report/requeue");
}

Status SimWorkerPool::start() {
  Status valid = QueryPolicy::validate(config_.batch_size, config_.threshold,
                                       config_.num_workers);
  if (!valid.is_ok()) return valid;
  if (started_) {
    return Status(ErrorCode::kConflict, "pool already started");
  }
  started_ = true;
  started_at_ = sim_.now();
  idle_since_ = sim_.now();
  feed_.mark(sim_.now());
  notifier_ = backend_.notifier ? backend_.notifier() : nullptr;
  if (notifier_ != nullptr) {
    listener_id_ =
        notifier_->on_work(config_.work_type, [this] { on_work_signal(); });
  }
  OSPREY_LOG(kInfo, "pool") << config_.name << " started (workers="
                            << config_.num_workers << " batch="
                            << config_.batch_size << " threshold="
                            << config_.threshold
                            << (notifier_ ? " notified" : " polling") << ")";
  issue_query();
  return Status::ok();
}

SimWorkerPool::~SimWorkerPool() {
  if (notifier_ != nullptr && listener_id_ != 0) {
    notifier_->remove_listener(listener_id_);
    listener_id_ = 0;
  }
}

void SimWorkerPool::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  if (poll_event_ != 0) {
    sim_.cancel(poll_event_);
    poll_event_ = 0;
  }
  // Release cached tasks so other pools can take them (§IV-D: pools "can be
  // started and stopped as needed").
  if (!cache_.empty()) {
    std::vector<TaskId> ids;
    ids.reserve(cache_.size());
    for (const CachedTask& t : cache_) ids.push_back(t.handle.eq_task_id);
    cache_.clear();
    auto requeued = backend_.requeue(ids);
    if (requeued.ok()) {
      OSPREY_LOG(kInfo, "pool")
          << config_.name << " requeued " << requeued.value()
          << " cached tasks on stop";
    }
  }
  if (running_ == 0) shutdown();
}

void SimWorkerPool::crash() {
  // Everything in flight is abandoned; the DB still records the tasks as
  // running+owned, which is what requeue_pool_tasks recovers from.
  // In-flight completion events still fire, but finish_task drops them:
  // a crashed pool must never report.
  crashed_ = true;
  stopped_ = true;
  started_ = false;
  if (notifier_ != nullptr && listener_id_ != 0) {
    notifier_->remove_listener(listener_id_);
    listener_id_ = 0;
  }
  if (poll_event_ != 0) {
    sim_.cancel(poll_event_);
    poll_event_ = 0;
  }
  cache_.clear();
  running_ = 0;
  feed_.reset(sim_.now());
  OSPREY_LOG(kWarn, "pool") << config_.name << " crashed";
}

void SimWorkerPool::issue_query() {
  if (stopped_ || query_in_flight_) return;
  int n = policy_.tasks_to_request(owned());
  if (n <= 0) return;
  armed_idle_ = false;  // actively querying, not waiting on a wakeup
  query_in_flight_ = true;
  ++queries_issued_;
  Duration cost = config_.query_cost;
  if (cost > 0 && config_.query_jitter > 0) {
    cost = LognormalRuntime(cost, config_.query_jitter).sample(rng_);
  }
  sim_.schedule_in(cost, [this, n] { query_arrived(n); });
}

void SimWorkerPool::query_arrived(int requested) {
  query_in_flight_ = false;
  if (stopped_) return;
  // Claim through the §IV-D batched query with the owned count re-derived
  // *now*: tasks completing while the query was in flight widen the deficit,
  // so the claim reflects the pool's true capacity at claim time.
  (void)requested;
  const int claim_target = policy_.tasks_to_request(owned());
  obs::Stopwatch claim_latency;
  auto handles = backend_.claim_batched(config_.work_type, config_.batch_size,
                                        config_.threshold, owned(),
                                        config_.name);
  if (!handles.ok()) {
    OSPREY_LOG(kError, "pool") << config_.name << " query failed: "
                               << handles.error().to_string();
    schedule_poll();
    return;
  }
  if (!handles.value().empty()) {
    empty_polls_ = 0;
    obs::observe_latency(feed_.claim_latency(), claim_latency);
  }
  const TimePoint claimed_at = obs::enabled() ? sim_.now() : 0.0;
  for (eqsql::TaskHandle& h : handles.value()) {
    cache_.push_back({std::move(h), claimed_at});
  }
  maybe_start_cached();
  if (owned() > 0) idle_since_ = sim_.now();

  if (static_cast<int>(handles.value().size()) < claim_target &&
      running_ < config_.num_workers) {
    // The queue could not fill us: poll again later (workers are idle).
    schedule_poll();
  } else if (policy_.tasks_to_request(owned()) > 0) {
    // Oversubscription configurations may still want more.
    issue_query();
  }
}

void SimWorkerPool::schedule_poll() {
  if (stopped_) return;
  if (notifier_ != nullptr) {
    // Notification mode: idle armed on the work channel instead of a poll
    // cadence. Arm unconditionally — even when the fallback timer is already
    // pending — or an empty query returning while the timer runs would leave
    // the pool disarmed: the signal handler would drop the next commit and
    // the timer handler would see !armed and never reschedule (a dormant
    // pool). The only scheduled event is the safety net — the earlier of
    // the lost-wakeup fallback probe and the idle-shutdown check; with both
    // disabled the pool sits fully quiet until a commit wakes it (an idle
    // pool issues zero DB queries).
    armed_idle_ = true;
    if (poll_event_ != 0) return;  // safety net already pending
    Duration delay = config_.notify_fallback;
    if (config_.idle_shutdown > 0) {
      Duration remain = config_.idle_shutdown - (sim_.now() - idle_since_);
      if (remain < 0) remain = 0;
      delay = delay > 0 ? std::min(delay, remain) : remain;
    } else if (delay <= 0) {
      return;
    }
    poll_event_ = sim_.schedule_in(delay, [this] {
      poll_event_ = 0;
      maybe_idle_shutdown();
      if (stopped_ || !armed_idle_) return;
      if (config_.notify_fallback > 0 &&
          policy_.tasks_to_request(owned()) > 0) {
        issue_query();  // fallback probe in case a wakeup was lost
      } else {
        armed_idle_ = false;
        schedule_poll();  // re-arm (recomputes the idle-shutdown horizon)
      }
    });
    return;
  }
  if (poll_event_ != 0) return;
  // Consecutive empty polls back off under the shared RetryPolicy schedule
  // (poll_backoff = 1.0 keeps the paper's fixed poll_interval).
  Duration delay = config_.poll_interval;
  if (config_.poll_backoff > 1.0) {
    RetryPolicy policy;
    policy.initial_backoff = config_.poll_interval;
    policy.multiplier = config_.poll_backoff;
    policy.max_backoff = config_.poll_max_interval;
    delay = policy.backoff(empty_polls_ + 1);
  }
  ++empty_polls_;
  poll_event_ = sim_.schedule_in(delay, [this] {
    poll_event_ = 0;
    maybe_idle_shutdown();
    if (stopped_) return;
    if (policy_.tasks_to_request(owned()) > 0) {
      issue_query();
    } else {
      schedule_poll();
    }
  });
}

void SimWorkerPool::on_work_signal() {
  // Runs synchronously inside the committing event. Only an armed-idle pool
  // reacts, and it reacts by scheduling — never by claiming reentrantly —
  // so the claim lands at a deterministic point in the event order.
  if (!armed_idle_ || stopped_) return;
  armed_idle_ = false;
  sim_.schedule_in(0.0, [this] { wake_from_notify(); });
}

void SimWorkerPool::wake_from_notify() {
  if (stopped_) return;
  if (poll_event_ != 0) {
    sim_.cancel(poll_event_);
    poll_event_ = 0;
  }
  if (policy_.tasks_to_request(owned()) > 0) {
    issue_query();
  } else {
    schedule_poll();
  }
}

void SimWorkerPool::maybe_start_cached() {
  while (running_ < config_.num_workers && !cache_.empty()) {
    CachedTask cached = std::move(cache_.front());
    cache_.pop_front();
    if (in_completion_context_) ++cache_hits_;
    start_task(std::move(cached.handle), cached.claimed_at);
  }
}

void SimWorkerPool::start_task(eqsql::TaskHandle handle, TimePoint claimed_at) {
  ++running_;
  const TimePoint now = sim_.now();
  if (obs::enabled() && claimed_at > 0.0) {
    feed_.queue_wait().observe(now - claimed_at);
  }
  feed_.consume({handle.eq_task_id, obs::TaskEventKind::kRunStart, now,
                 handle.eq_type, config_.name, ""});
  TaskOutcome outcome = runner_(handle, rng_);
  sim_.schedule_in(outcome.runtime,
                   [this, handle = std::move(handle),
                    result = std::move(outcome.result)] {
                     finish_task(handle, result);
                   });
}

void SimWorkerPool::finish_task(const eqsql::TaskHandle& handle,
                                const std::string& result) {
  if (crashed_) return;  // dead pools report nothing
  if (faults_ != nullptr &&
      faults_->should_fire(fault_point::pool_stall(config_.name))) {
    // The worker hangs instead of reporting: its task stays 'running' in the
    // DB (recovered by the lease reaper) and the worker slot is lost —
    // running_ stays elevated so the pool claims less, exactly like a hung
    // node eating pilot-job capacity.
    ++stalled_workers_;
    feed_.consume({handle.eq_task_id, obs::TaskEventKind::kStalled, sim_.now(),
                   handle.eq_type, config_.name, ""});
    OSPREY_LOG(kWarn, "pool")
        << config_.name << " worker hung holding task " << handle.eq_task_id
        << log_field("pool", config_.name);
    return;
  }
  Status reported =
      backend_.report(handle.eq_task_id, handle.eq_type, result);
  if (reported.code() == ErrorCode::kConflict) {
    // Lost the exactly-once race: the task was requeued (lease expiry) or
    // completed elsewhere. Free the worker without counting a completion.
    OSPREY_LOG(kInfo, "pool") << config_.name << " dropped late report for task "
                              << handle.eq_task_id;
  } else {
    if (!reported.is_ok() && reported.code() != ErrorCode::kCanceled) {
      OSPREY_LOG(kError, "pool") << config_.name << " report failed: "
                                 << reported.to_string();
    }
    ++tasks_completed_;
  }
  --running_;
  feed_.consume({handle.eq_task_id, obs::TaskEventKind::kRunEnd, sim_.now(),
                 handle.eq_type, config_.name, ""});
  in_completion_context_ = true;
  maybe_start_cached();
  in_completion_context_ = false;
  if (owned() == 0) idle_since_ = sim_.now();
  if (stopped_) {
    if (running_ == 0) shutdown();
    return;
  }
  // The §IV-D pattern: completion opens a deficit; query if it clears the
  // threshold.
  issue_query();
  if (owned() == 0) schedule_poll();
}

void SimWorkerPool::maybe_idle_shutdown() {
  if (stopped_ || config_.idle_shutdown <= 0) return;
  if (owned() == 0 && sim_.now() - idle_since_ >= config_.idle_shutdown) {
    stopped_ = true;
    shutdown();
  }
}

void SimWorkerPool::shutdown() {
  OSPREY_LOG(kInfo, "pool") << config_.name << " shut down after "
                            << tasks_completed_ << " tasks";
  if (notifier_ != nullptr && listener_id_ != 0) {
    notifier_->remove_listener(listener_id_);
    listener_id_ = 0;
  }
  if (poll_event_ != 0) {
    sim_.cancel(poll_event_);
    poll_event_ = 0;
  }
  if (on_shutdown_) on_shutdown_();
}

}  // namespace osprey::pool

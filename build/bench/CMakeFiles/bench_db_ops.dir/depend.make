# Empty dependencies file for bench_db_ops.
# This may be replaced when dependencies are built.

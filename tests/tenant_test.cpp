// Multi-tenant front door tests (ROADMAP item 4, DESIGN.md §5.13):
// registry admission/quota/fair-scheduling units, EQSQL end-to-end
// admission and weighted-fair claims, quota edge cases (quota 0, shrink
// below depth, exactly-at-limit submit racing a claim), the zipfian
// convergence property test, tenant-bound auth tokens, and per-shard
// tenancy through ShardCluster/ShardRouter.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/core/rng.h"
#include "osprey/eqsql/db_api.h"
#include "osprey/eqsql/service.h"
#include "osprey/faas/auth.h"
#include "osprey/net/network.h"
#include "osprey/shard/cluster.h"
#include "osprey/shard/key.h"
#include "osprey/shard/router.h"
#include "osprey/tenant/registry.h"

namespace osprey::tenant {
namespace {

constexpr WorkType kWork = 1;

// --- registry units ----------------------------------------------------------

TEST(TenantRegistryTest, RegistrationValidatesAndRejectsDuplicates) {
  TenantRegistry registry;
  EXPECT_EQ(registry.register_tenant("").code(), ErrorCode::kInvalidArgument);
  TenantConfig bad;
  bad.weight = 0.0;
  EXPECT_EQ(registry.register_tenant("a", bad).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_TRUE(registry.register_tenant("a").is_ok());
  EXPECT_EQ(registry.register_tenant("a").code(), ErrorCode::kConflict);
  EXPECT_TRUE(registry.registered("a"));
  EXPECT_FALSE(registry.registered("b"));
  EXPECT_EQ(registry.tenant_count(), 1u);
}

TEST(TenantRegistryTest, UnknownTenantIsDeniedEmptyTenantAlwaysAdmitted) {
  TenantRegistry registry;
  EXPECT_EQ(registry.admit("ghost", 1).code(), ErrorCode::kPermissionDenied);
  // The untenanted legacy principal bypasses identity and quota.
  EXPECT_TRUE(registry.admit("", 100000).is_ok());
}

TEST(TenantRegistryTest, QuotaZeroAdmitsNothing) {
  TenantRegistry registry;
  TenantConfig none;
  none.submit_quota = 0;
  ASSERT_TRUE(registry.register_tenant("frozen", none).is_ok());
  EXPECT_EQ(registry.admit("frozen", 1).code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(registry.stats_for("frozen").value().rejected, 1u);
}

TEST(TenantRegistryTest, QuotaBoundsInFlightAndUnadmitCompensates) {
  TenantRegistry registry;
  TenantConfig config;
  config.submit_quota = 3;
  ASSERT_TRUE(registry.register_tenant("a", config).is_ok());
  EXPECT_TRUE(registry.admit("a", 2).is_ok());
  // A batch crossing the bound is rejected whole, not truncated.
  EXPECT_EQ(registry.admit("a", 2).code(), ErrorCode::kResourceExhausted);
  EXPECT_TRUE(registry.admit("a", 1).is_ok());
  EXPECT_EQ(registry.admit("a", 1).code(), ErrorCode::kResourceExhausted);
  // A failed submit transaction hands its slots back.
  registry.unadmit("a", 1);
  EXPECT_TRUE(registry.admit("a", 1).is_ok());
  const TenantStats stats = registry.stats_for("a").value();
  EXPECT_EQ(stats.queued, 3);
  // unadmit compensates the admitted counter too (4 admits, 1 rolled back).
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.rejected, 3u);
}

TEST(TenantRegistryTest, QueueDepthBoundIsSeparateFromQuota) {
  TenantRegistry registry;
  TenantConfig config;
  config.submit_quota = kUnlimited;
  config.max_queue_depth = 2;
  ASSERT_TRUE(registry.register_tenant("a", config).is_ok());
  ASSERT_TRUE(registry.admit("a", 2).is_ok());
  EXPECT_EQ(registry.admit("a", 1).code(), ErrorCode::kResourceExhausted);
  // A claim moves queued -> running: queue depth frees, quota does not.
  registry.on_claimed("a", 1);
  EXPECT_TRUE(registry.admit("a", 1).is_ok());
  const TenantStats stats = registry.stats_for("a").value();
  EXPECT_EQ(stats.queued, 2);
  EXPECT_EQ(stats.running, 1);
}

TEST(TenantRegistryTest, ExactlyAtLimitSubmitRacingAClaim) {
  // The edge the admission lock must make atomic: a tenant exactly at its
  // in-flight quota submits while a worker claims one of its tasks. The
  // claim moves queued -> running (no quota slot freed), so the submit must
  // still be rejected; only completion frees the slot.
  TenantRegistry registry;
  TenantConfig config;
  config.submit_quota = 2;
  ASSERT_TRUE(registry.register_tenant("a", config).is_ok());
  ASSERT_TRUE(registry.admit("a", 2).is_ok());
  registry.on_claimed("a", 1);
  EXPECT_EQ(registry.admit("a", 1).code(), ErrorCode::kResourceExhausted);
  registry.on_finished("a", 1, /*from_queue=*/false, 1.0, 1.0);
  EXPECT_TRUE(registry.admit("a", 1).is_ok());
}

TEST(TenantRegistryTest, QuotaShrinkBelowDepthRefusesUntilDrain) {
  TenantRegistry registry;
  TenantConfig config;
  config.submit_quota = 4;
  ASSERT_TRUE(registry.register_tenant("a", config).is_ok());
  ASSERT_TRUE(registry.admit("a", 4).is_ok());
  // Shrink below the live depth: existing tasks untouched, new refused.
  config.submit_quota = 2;
  ASSERT_TRUE(registry.set_config("a", config).is_ok());
  EXPECT_EQ(registry.stats_for("a").value().queued, 4);
  EXPECT_EQ(registry.admit("a", 1).code(), ErrorCode::kResourceExhausted);
  // Draining to 3 is still over the new bound; 1 below it admits again.
  registry.on_finished("a", 1, /*from_queue=*/true, 1.0, 0.0);
  EXPECT_EQ(registry.admit("a", 1).code(), ErrorCode::kResourceExhausted);
  registry.on_finished("a", 2, /*from_queue=*/true, 1.0, 0.0);
  EXPECT_TRUE(registry.admit("a", 1).is_ok());
  EXPECT_EQ(registry.set_config("ghost", config).code(),
            ErrorCode::kNotFound);
}

TEST(TenantRegistryTest, StrideSchedulingServesWeightsExactly) {
  TenantRegistry registry;
  TenantConfig heavy;
  heavy.weight = 3.0;
  ASSERT_TRUE(registry.register_tenant("heavy", heavy).is_ok());
  ASSERT_TRUE(registry.register_tenant("light").is_ok());  // weight 1
  const std::vector<TenantId> backlogged = {"heavy", "light"};
  std::map<TenantId, int> served;
  for (int i = 0; i < 400; ++i) {
    const TenantId next = registry.pick_next(backlogged);
    registry.charge(next, 1);
    ++served[next];
  }
  // Stride scheduling is deterministic: 3:1 exactly over any aligned window.
  EXPECT_EQ(served["heavy"], 300);
  EXPECT_EQ(served["light"], 100);
  EXPECT_EQ(registry.pick_next({}), "");
}

TEST(TenantRegistryTest, ReturningFromIdleTenantCannotBankService) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.register_tenant("busy").is_ok());
  ASSERT_TRUE(registry.register_tenant("idle").is_ok());
  // "busy" runs alone for a long stretch (the claim loop is always
  // pick_next + charge, which advances the global virtual time); "idle"
  // banks nothing meanwhile.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(registry.pick_next({"busy"}), "busy");
    registry.charge("busy", 1);
  }
  const std::vector<TenantId> both = {"busy", "idle"};
  // The returning tenant's pass is floored at the global virtual time: it
  // gets at most one catch-up claim, then alternates, instead of a
  // 1000-claim monopoly.
  std::map<TenantId, int> served;
  for (int i = 0; i < 20; ++i) {
    const TenantId next = registry.pick_next(both);
    registry.charge(next, 1);
    ++served[next];
  }
  EXPECT_GE(served["busy"], 9);
  EXPECT_GE(served["idle"], 9);
}

TEST(TenantRegistryTest, SyncDepthsRebuildsRecoveredState) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.register_tenant("a").is_ok());
  registry.sync_depths("a", 5, 2);
  const TenantStats stats = registry.stats_for("a").value();
  EXPECT_EQ(stats.queued, 5);
  EXPECT_EQ(stats.running, 2);
}

TEST(TenantRegistryTest, AdmissionIsAtomicUnderConcurrentSubmitAndClaim) {
  // Threads hammer the admit / claim / finish cycle against a tight quota;
  // the in-flight bound must never be crossed and the final accounting must
  // balance. (The TSan tier of the suite gives this teeth.)
  TenantRegistry registry;
  TenantConfig config;
  config.submit_quota = 8;
  ASSERT_TRUE(registry.register_tenant("a", config).is_ok());
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<bool> overran{false};
  auto worker = [&] {
    for (int i = 0; i < 2000; ++i) {
      if (registry.admit("a", 1).is_ok()) {
        admitted.fetch_add(1);
        const TenantStats s = registry.stats_for("a").value();
        if (s.queued + s.running > 8) overran.store(true);
        registry.on_claimed("a", 1);
        registry.on_finished("a", 1, /*from_queue=*/false, 0.1, 0.1);
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  EXPECT_FALSE(overran.load());
  const TenantStats stats = registry.stats_for("a").value();
  EXPECT_EQ(stats.queued, 0);
  EXPECT_EQ(stats.running, 0);
  EXPECT_EQ(stats.admitted, admitted.load());
  EXPECT_EQ(stats.completed, admitted.load());
}

// --- EQSQL end to end --------------------------------------------------------

class TenantEqsqlTest : public ::testing::Test {
 protected:
  TenantEqsqlTest() : service_(clock_) {
    EXPECT_TRUE(service_.start().is_ok());
    EXPECT_TRUE(service_.enable_tenants().is_ok());
  }

  eqsql::EQSQL& as(const TenantId& tenant) {
    auto api = service_.connect_as(tenant);
    EXPECT_TRUE(api.ok());
    handles_.push_back(std::move(api).take());
    return *handles_.back();
  }

  ManualClock clock_;
  eqsql::EmewsService service_;
  std::vector<std::unique_ptr<eqsql::EQSQL>> handles_;
};

TEST_F(TenantEqsqlTest, ConnectAsChecksIdentityAtTheAuthBoundary) {
  EXPECT_EQ(service_.connect_as("ghost").code(),
            ErrorCode::kPermissionDenied);
  ASSERT_TRUE(service_.tenants()->register_tenant("a").is_ok());
  EXPECT_TRUE(service_.connect_as("a").ok());
  // Empty tenant degrades to a plain (untenanted) connect.
  EXPECT_TRUE(service_.connect_as("").ok());
}

TEST_F(TenantEqsqlTest, ConnectAsWithoutTenancyIsUnavailable) {
  ManualClock clock;
  eqsql::EmewsService bare(clock);
  ASSERT_TRUE(bare.start().is_ok());
  EXPECT_EQ(bare.connect_as("a").code(), ErrorCode::kUnavailable);
}

TEST_F(TenantEqsqlTest, OverQuotaSubmitIsRejectedBeforeTheDatabase) {
  TenantConfig config;
  config.submit_quota = 2;
  ASSERT_TRUE(service_.tenants()->register_tenant("a", config).is_ok());
  eqsql::EQSQL& api = as("a");
  ASSERT_TRUE(api.submit_task("e", kWork, "p1").ok());
  ASSERT_TRUE(api.submit_task("e", kWork, "p2").ok());
  auto rejected = api.submit_task("e", kWork, "p3");
  EXPECT_EQ(rejected.code(), ErrorCode::kResourceExhausted);
  // The front door held: the third task never touched the queue.
  EXPECT_EQ(api.queued_count(kWork).value(), 2);
}

TEST_F(TenantEqsqlTest, OverQuotaBatchIsRejectedWholeNotTruncated) {
  TenantConfig config;
  config.submit_quota = 2;
  ASSERT_TRUE(service_.tenants()->register_tenant("a", config).is_ok());
  eqsql::EQSQL& api = as("a");
  auto rejected = api.submit_tasks("e", kWork, {"p1", "p2", "p3"});
  EXPECT_EQ(rejected.code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(api.queued_count(kWork).value(), 0);
  ASSERT_TRUE(api.submit_tasks("e", kWork, {"p1", "p2"}).ok());
}

TEST_F(TenantEqsqlTest, TenantTravelsWithTheTaskRecord) {
  ASSERT_TRUE(service_.tenants()->register_tenant("a").is_ok());
  eqsql::EQSQL& tenant_api = as("a");
  eqsql::EQSQL& legacy_api = as("");
  const TaskId tenanted = tenant_api.submit_task("e", kWork, "x").value();
  const TaskId untenanted = legacy_api.submit_task("e", kWork, "y").value();
  EXPECT_EQ(tenant_api.task_record(tenanted).value().tenant, "a");
  // Untenanted rows stay NULL — byte-compatible with pre-tenancy tables.
  EXPECT_EQ(legacy_api.task_record(untenanted).value().tenant, "");
}

TEST_F(TenantEqsqlTest, SubmitAsOverridesTheAmbientPrincipal) {
  ASSERT_TRUE(service_.tenants()->register_tenant("a").is_ok());
  ASSERT_TRUE(service_.tenants()->register_tenant("b").is_ok());
  eqsql::EQSQL& api = as("a");
  const TaskId id = api.submit_task_as("b", "e", kWork, "x").value();
  EXPECT_EQ(api.task_record(id).value().tenant, "b");
  EXPECT_EQ(service_.tenants()->stats_for("b").value().queued, 1);
  EXPECT_EQ(service_.tenants()->stats_for("a").value().queued, 0);
}

TEST_F(TenantEqsqlTest, ClaimsInterleaveWeightedFairAcrossTenants) {
  TenantConfig heavy;
  heavy.weight = 3.0;
  ASSERT_TRUE(service_.tenants()->register_tenant("heavy", heavy).is_ok());
  ASSERT_TRUE(service_.tenants()->register_tenant("light").is_ok());
  eqsql::EQSQL& heavy_api = as("heavy");
  eqsql::EQSQL& light_api = as("light");
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(heavy_api.submit_task("e", kWork, "h").ok());
    ASSERT_TRUE(light_api.submit_task("e", kWork, "l").ok());
  }
  // Priority-only ordering would hand all 40 FIFO "heavy" tasks first;
  // stride scheduling interleaves 3:1 inside every claim batch.
  auto batch = heavy_api.try_query_tasks(kWork, 40, "pool");
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value().size(), 40u);
  int heavy_claims = 0;
  for (const auto& handle : batch.value()) {
    if (handle.payload == "h") ++heavy_claims;
  }
  EXPECT_EQ(heavy_claims, 30);
  EXPECT_EQ(service_.tenants()->stats_for("heavy").value().claimed, 30u);
  EXPECT_EQ(service_.tenants()->stats_for("light").value().claimed, 10u);
}

TEST_F(TenantEqsqlTest, FairClaimKeepsPriorityOrderWithinATenant) {
  ASSERT_TRUE(service_.tenants()->register_tenant("a").is_ok());
  eqsql::EQSQL& api = as("a");
  ASSERT_TRUE(api.submit_task("e", kWork, "low", 1).ok());
  ASSERT_TRUE(api.submit_task("e", kWork, "high", 9).ok());
  auto batch = api.try_query_tasks(kWork, 2, "pool");
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value().size(), 2u);
  EXPECT_EQ(batch.value()[0].payload, "high");
  EXPECT_EQ(batch.value()[1].payload, "low");
}

TEST_F(TenantEqsqlTest, CompletionFreesQuotaAndAccruesCost) {
  TenantConfig config;
  config.submit_quota = 1;
  ASSERT_TRUE(service_.tenants()->register_tenant("a", config).is_ok());
  eqsql::EQSQL& api = as("a");
  clock_.set(10.0);
  const TaskId id = api.submit_task("e", kWork, "x").value();
  EXPECT_EQ(api.submit_task("e", kWork, "y").code(),
            ErrorCode::kResourceExhausted);
  clock_.set(12.0);
  ASSERT_EQ(api.try_query_tasks(kWork, 1, "pool").value().size(), 1u);
  clock_.set(17.0);
  ASSERT_TRUE(api.report_task(id, kWork, "done").is_ok());
  // The slot is free again and the 5s runtime landed in the cost meter.
  EXPECT_TRUE(api.submit_task("e", kWork, "y").ok());
  const TenantStats stats = service_.tenants()->stats_for("a").value();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_DOUBLE_EQ(stats.cost_task_seconds, 5.0);
}

TEST_F(TenantEqsqlTest, CancelFreesQuotaForQueuedAndRunningTasks) {
  TenantConfig config;
  config.submit_quota = 2;
  ASSERT_TRUE(service_.tenants()->register_tenant("a", config).is_ok());
  eqsql::EQSQL& api = as("a");
  const TaskId queued = api.submit_task("e", kWork, "x").value();
  const TaskId running = api.submit_task("e", kWork, "y").value();
  ASSERT_EQ(api.try_query_tasks(kWork, 1, "pool").value().size(), 1u);
  EXPECT_EQ(api.submit_task("e", kWork, "z").code(),
            ErrorCode::kResourceExhausted);
  ASSERT_EQ(api.cancel_tasks({queued, running}).value(), 2u);
  const TenantStats stats = service_.tenants()->stats_for("a").value();
  EXPECT_EQ(stats.queued + stats.running, 0);
  EXPECT_EQ(stats.completed, 2u);
  ASSERT_TRUE(api.submit_tasks("e", kWork, {"x", "y"}).ok());
}

TEST_F(TenantEqsqlTest, RequeueMovesRunningBackToQueuedAccounting) {
  ASSERT_TRUE(service_.tenants()->register_tenant("a").is_ok());
  eqsql::EQSQL& api = as("a");
  const TaskId id = api.submit_task("e", kWork, "x").value();
  ASSERT_EQ(api.try_query_tasks(kWork, 1, "pool").value().size(), 1u);
  EXPECT_EQ(service_.tenants()->stats_for("a").value().running, 1);
  ASSERT_EQ(api.requeue_tasks({id}).value(), 1u);
  const TenantStats stats = service_.tenants()->stats_for("a").value();
  EXPECT_EQ(stats.queued, 1);
  EXPECT_EQ(stats.running, 0);
}

TEST_F(TenantEqsqlTest, RestoreResyncsQuotaDepthsFromTheTaskTable) {
  TenantConfig config;
  config.submit_quota = 2;
  ASSERT_TRUE(service_.tenants()->register_tenant("a", config).is_ok());
  eqsql::EQSQL& api = as("a");
  ASSERT_TRUE(api.submit_task("e", kWork, "x").ok());
  ASSERT_TRUE(api.submit_task("e", kWork, "y").ok());
  const json::Value snapshot = service_.checkpoint();

  // A fresh service restoring the snapshot rebuilds the in-memory depths
  // from the tenant column — the quota holds across the crash.
  ManualClock clock;
  eqsql::EmewsService recovered(clock);
  ASSERT_TRUE(recovered.enable_tenants().is_ok());
  ASSERT_TRUE(recovered.tenants()->register_tenant("a", config).is_ok());
  ASSERT_TRUE(recovered.restore(snapshot).is_ok());
  EXPECT_EQ(recovered.tenants()->stats_for("a").value().queued, 2);
  auto handle = recovered.connect_as("a");
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle.value()->submit_task("e", kWork, "z").code(),
            ErrorCode::kResourceExhausted);
}

// --- the zipfian convergence property test -----------------------------------

TEST(TenantPropertyTest, WeightedFairSharesConvergeUnderZipfianLoad) {
  // Five tenants with weights 5..1 under a zipfian submit mix (tenant 0
  // dominating arrivals). While every tenant stays backlogged, claim shares
  // must converge to the configured weights — arrival skew must not leak
  // into service skew. Several seeds, one deterministic verdict each.
  for (const std::uint64_t seed : {0x5eedull, 0xbeefull, 0xfa11ull}) {
    ManualClock clock;
    eqsql::EmewsService service(clock);
    ASSERT_TRUE(service.start().is_ok());
    ASSERT_TRUE(service.enable_tenants().is_ok());
    const std::vector<double> weights = {5, 4, 3, 2, 1};
    std::vector<std::unique_ptr<eqsql::EQSQL>> apis;
    for (std::size_t t = 0; t < weights.size(); ++t) {
      TenantConfig config;
      config.weight = weights[t];
      ASSERT_TRUE(service.tenants()
                      ->register_tenant("t" + std::to_string(t), config)
                      .is_ok());
      auto api = service.connect_as("t" + std::to_string(t));
      ASSERT_TRUE(api.ok());
      apis.push_back(std::move(api).take());
    }
    // Zipf(s=1) arrivals over the 5 tenants, enough that nobody drains
    // during the measured window.
    Rng rng(seed);
    std::vector<int> submitted(weights.size(), 0);
    const double harmonic = 1 + 1.0 / 2 + 1.0 / 3 + 1.0 / 4 + 1.0 / 5;
    for (int i = 0; i < 3000; ++i) {
      double u = rng.uniform(0.0, harmonic);
      std::size_t t = 0;
      for (; t + 1 < weights.size(); ++t) {
        u -= 1.0 / (t + 1);
        if (u <= 0) break;
      }
      ASSERT_TRUE(apis[t]->submit_task("zipf", kWork, "p").ok());
      ++submitted[t];
    }
    ASSERT_GT(*std::min_element(submitted.begin(), submitted.end()), 50)
        << "zipf tail too thin to measure";
    const double total_weight = 15.0;
    // Claim one at a time (the notify-driven worker cadence) until the
    // first tenant drains — the weighted-share prediction only holds while
    // every tenant is backlogged.
    std::map<std::string, int> served;
    int claims = 0;
    for (bool all_backlogged = true; all_backlogged;) {
      auto batch = apis[0]->try_query_tasks(kWork, 1, "pool");
      ASSERT_TRUE(batch.ok());
      ASSERT_EQ(batch.value().size(), 1u);
      const TaskId id = batch.value()[0].eq_task_id;
      ++served[apis[0]->task_record(id).value().tenant];
      ++claims;
      for (std::size_t t = 0; t < weights.size(); ++t) {
        if (service.tenants()
                ->stats_for("t" + std::to_string(t))
                .value()
                .queued == 0) {
          all_backlogged = false;
        }
      }
    }
    ASSERT_GT(claims, 100);
    for (std::size_t t = 0; t < weights.size(); ++t) {
      const double expected = claims * weights[t] / total_weight;
      const double got = served["t" + std::to_string(t)];
      // Stride scheduling tracks the ideal within one stride per tenant;
      // allow 10% relative slack for window-edge effects.
      EXPECT_NEAR(got, expected, expected * 0.10 + 2.0)
          << "tenant t" << t << " seed " << seed << " claims " << claims;
    }
  }
}

// --- faas principals ---------------------------------------------------------

TEST(TenantAuthTest, TokensCarryTheTenantBinding) {
  ManualClock clock;
  faas::AuthService auth(clock);
  const faas::Token bound = auth.issue("alice", "acme", 100.0);
  const faas::Principal principal = auth.validate_principal(bound).value();
  EXPECT_EQ(principal.user, "alice");
  EXPECT_EQ(principal.tenant, "acme");
  // validate() still resolves the user alone (v1 callers).
  EXPECT_EQ(auth.validate(bound).value(), "alice");
  // Legacy tokens resolve to the untenanted principal.
  const faas::Token legacy = auth.issue("bob", 100.0);
  EXPECT_EQ(auth.validate_principal(legacy).value().tenant, "");
  clock.advance(200.0);
  EXPECT_EQ(auth.validate_principal(bound).code(),
            ErrorCode::kPermissionDenied);
}

// --- per-shard tenancy -------------------------------------------------------

class TenantShardTest : public ::testing::Test {
 protected:
  TenantShardTest() : cluster_(clock_, network_, make_config()) {
    for (shard::ShardId s = 0; s < 2; ++s) {
      EXPECT_TRUE(
          cluster_.create_leader(s, "lead" + std::to_string(s), "bebop")
              .ok());
    }
    EXPECT_TRUE(cluster_.enable_tenants().is_ok());
    router_ = std::make_unique<shard::ShardRouter>(cluster_);
  }

  static shard::ShardClusterConfig make_config() {
    shard::ShardClusterConfig config;
    config.spec.shard_count = 2;
    config.spec.scheme = shard::ShardScheme::kRange;
    config.spec.range_width = 1;  // work type t owns shard t % 2
    return config;
  }

  ManualClock clock_;
  net::Network network_ = net::Network::testbed();
  shard::ShardCluster cluster_;
  std::unique_ptr<shard::ShardRouter> router_;
};

TEST_F(TenantShardTest, QuotasAccountPerShard) {
  TenantConfig config;
  config.submit_quota = 2;
  ASSERT_TRUE(cluster_.register_tenant("a", config).is_ok());
  router_->set_tenant_context();
  // Work types 10 and 11 own different shards; the quota applies to each
  // shard's slice independently (share-nothing accounting).
  for (const WorkType type : {10, 11}) {
    ASSERT_TRUE(router_->submit_task_as("a", "e", type, "p1").ok());
    ASSERT_TRUE(router_->submit_task_as("a", "e", type, "p2").ok());
    EXPECT_EQ(router_->submit_task_as("a", "e", type, "p3").code(),
              ErrorCode::kResourceExhausted);
  }
  // The merged view sums the per-shard slices.
  const std::vector<TenantStats> merged = router_->tenant_stats();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].tenant, "a");
  EXPECT_EQ(merged[0].queued, 4);
  EXPECT_EQ(merged[0].rejected, 2u);
}

TEST_F(TenantShardTest, UnknownTenantRejectedAtEveryShard) {
  router_->set_tenant_context();
  EXPECT_EQ(router_->submit_task_as("ghost", "e", 10, "p").code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(router_->submit_task_as("ghost", "e", 11, "p").code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(TenantShardTest, ConfigChangesFanOutToAllShards) {
  ASSERT_TRUE(cluster_.register_tenant("a").is_ok());
  router_->set_tenant_context();
  TenantConfig shrunk;
  shrunk.submit_quota = 0;
  ASSERT_TRUE(cluster_.set_tenant_config("a", shrunk).is_ok());
  EXPECT_EQ(router_->submit_task_as("a", "e", 10, "p").code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(router_->submit_task_as("a", "e", 11, "p").code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(cluster_.register_tenant("a").code(), ErrorCode::kConflict);
  // Tenancy must be on before any per-tenant call.
  shard::ShardCluster bare(clock_, network_, make_config());
  EXPECT_EQ(bare.register_tenant("x").code(), ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace osprey::tenant

# Empty compiler generated dependencies file for osprey.
# This may be replaced when dependencies are built.

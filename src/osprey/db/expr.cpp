#include "osprey/db/expr.h"

namespace osprey::db {

namespace {
std::shared_ptr<Expr> make(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}
}  // namespace

ExprPtr lit(Value v) {
  auto e = make(ExprKind::kLiteral);
  e->literal = std::move(v);
  return e;
}

ExprPtr col(std::string name) {
  auto e = make(ExprKind::kColumn);
  e->column = std::move(name);
  return e;
}

ExprPtr param(int index) {
  auto e = make(ExprKind::kParam);
  e->param_index = index;
  return e;
}

ExprPtr bin(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = make(ExprKind::kBinary);
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr not_(ExprPtr inner) {
  auto e = make(ExprKind::kNot);
  e->lhs = std::move(inner);
  return e;
}

ExprPtr is_null(ExprPtr inner) {
  auto e = make(ExprKind::kIsNull);
  e->lhs = std::move(inner);
  return e;
}

ExprPtr in_list(ExprPtr lhs, std::vector<ExprPtr> items) {
  auto e = make(ExprKind::kIn);
  e->lhs = std::move(lhs);
  e->items = std::move(items);
  return e;
}

namespace {

bool truthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.is_int()) return v.as_int() != 0;
  if (v.is_real()) return v.as_real() != 0.0;
  return !v.as_text().empty();
}

Result<Value> eval_binary(const Expr& e, const Schema& schema, const Row& row,
                          const std::vector<Value>& params) {
  // Short-circuit logical operators.
  if (e.op == BinOp::kAnd || e.op == BinOp::kOr) {
    Result<Value> a = eval(*e.lhs, schema, row, params);
    if (!a.ok()) return a;
    bool av = truthy(a.value());
    if (e.op == BinOp::kAnd && !av) return Value(std::int64_t{0});
    if (e.op == BinOp::kOr && av) return Value(std::int64_t{1});
    Result<Value> b = eval(*e.rhs, schema, row, params);
    if (!b.ok()) return b;
    return Value(std::int64_t{truthy(b.value()) ? 1 : 0});
  }

  Result<Value> a = eval(*e.lhs, schema, row, params);
  if (!a.ok()) return a;
  Result<Value> b = eval(*e.rhs, schema, row, params);
  if (!b.ok()) return b;
  const Value& av = a.value();
  const Value& bv = b.value();

  switch (e.op) {
    case BinOp::kEq: case BinOp::kNe: case BinOp::kLt:
    case BinOp::kLe: case BinOp::kGt: case BinOp::kGe: {
      // SQL three-valued logic, simplified: comparisons with NULL are false
      // (never true), matching the way the EMEWS queries use them.
      if (av.is_null() || bv.is_null()) {
        return Value(std::int64_t{e.op == BinOp::kNe &&
                                  !(av.is_null() && bv.is_null())
                                      ? 1
                                      : 0});
      }
      int c = av.compare(bv);
      bool r = false;
      switch (e.op) {
        case BinOp::kEq: r = c == 0; break;
        case BinOp::kNe: r = c != 0; break;
        case BinOp::kLt: r = c < 0; break;
        case BinOp::kLe: r = c <= 0; break;
        case BinOp::kGt: r = c > 0; break;
        case BinOp::kGe: r = c >= 0; break;
        default: break;
      }
      return Value(std::int64_t{r ? 1 : 0});
    }
    case BinOp::kAdd: case BinOp::kSub: case BinOp::kMul: case BinOp::kDiv: {
      if (av.is_null() || bv.is_null()) return Value(nullptr);
      if (!av.is_number() || !bv.is_number()) {
        return Error(ErrorCode::kInvalidArgument,
                     "arithmetic on non-numeric value");
      }
      if (av.is_int() && bv.is_int() && e.op != BinOp::kDiv) {
        std::int64_t x = av.as_int();
        std::int64_t y = bv.as_int();
        switch (e.op) {
          case BinOp::kAdd: return Value(x + y);
          case BinOp::kSub: return Value(x - y);
          case BinOp::kMul: return Value(x * y);
          default: break;
        }
      }
      double x = av.as_real();
      double y = bv.as_real();
      switch (e.op) {
        case BinOp::kAdd: return Value(x + y);
        case BinOp::kSub: return Value(x - y);
        case BinOp::kMul: return Value(x * y);
        case BinOp::kDiv:
          if (y == 0.0) {
            return Error(ErrorCode::kInvalidArgument, "division by zero");
          }
          return Value(x / y);
        default: break;
      }
      break;
    }
    default: break;
  }
  return Error(ErrorCode::kInternal, "unhandled binary operator");
}

}  // namespace

Result<Value> eval(const Expr& e, const Schema& schema, const Row& row,
                   const std::vector<Value>& params) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumn: {
      int idx = schema.index_of(e.column);
      if (idx < 0) {
        return Error(ErrorCode::kInvalidArgument,
                     "unknown column '" + e.column + "'");
      }
      return row[static_cast<std::size_t>(idx)];
    }
    case ExprKind::kParam: {
      if (e.param_index < 0 ||
          static_cast<std::size_t>(e.param_index) >= params.size()) {
        return Error(ErrorCode::kInvalidArgument,
                     "bind parameter " + std::to_string(e.param_index + 1) +
                         " not supplied");
      }
      return params[static_cast<std::size_t>(e.param_index)];
    }
    case ExprKind::kBinary:
      return eval_binary(e, schema, row, params);
    case ExprKind::kNot: {
      Result<Value> inner = eval(*e.lhs, schema, row, params);
      if (!inner.ok()) return inner;
      return Value(std::int64_t{truthy(inner.value()) ? 0 : 1});
    }
    case ExprKind::kIsNull: {
      Result<Value> inner = eval(*e.lhs, schema, row, params);
      if (!inner.ok()) return inner;
      return Value(std::int64_t{inner.value().is_null() ? 1 : 0});
    }
    case ExprKind::kIn: {
      Result<Value> lhs = eval(*e.lhs, schema, row, params);
      if (!lhs.ok()) return lhs;
      if (lhs.value().is_null()) return Value(std::int64_t{0});
      for (const ExprPtr& item : e.items) {
        Result<Value> iv = eval(*item, schema, row, params);
        if (!iv.ok()) return iv;
        if (!iv.value().is_null() && lhs.value().compare(iv.value()) == 0) {
          return Value(std::int64_t{1});
        }
      }
      return Value(std::int64_t{0});
    }
  }
  return Error(ErrorCode::kInternal, "unhandled expression kind");
}

bool eval_predicate(const Expr& e, const Schema& schema, const Row& row,
                    const std::vector<Value>& params, Error* error_out) {
  Result<Value> r = eval(e, schema, row, params);
  if (!r.ok()) {
    if (error_out) *error_out = r.error();
    return false;
  }
  return truthy(r.value());
}

namespace {
void collect_eq(const Expr& e, const std::vector<Value>& params,
                std::vector<EqConstraint>& out) {
  if (e.kind != ExprKind::kBinary) return;
  if (e.op == BinOp::kAnd) {
    collect_eq(*e.lhs, params, out);
    collect_eq(*e.rhs, params, out);
    return;
  }
  if (e.op != BinOp::kEq) return;
  const Expr* column_side = nullptr;
  const Expr* value_side = nullptr;
  if (e.lhs->kind == ExprKind::kColumn) {
    column_side = e.lhs.get();
    value_side = e.rhs.get();
  } else if (e.rhs->kind == ExprKind::kColumn) {
    column_side = e.rhs.get();
    value_side = e.lhs.get();
  } else {
    return;
  }
  if (value_side->kind == ExprKind::kLiteral) {
    out.push_back({column_side->column, value_side->literal});
  } else if (value_side->kind == ExprKind::kParam &&
             value_side->param_index >= 0 &&
             static_cast<std::size_t>(value_side->param_index) < params.size()) {
    out.push_back(
        {column_side->column,
         params[static_cast<std::size_t>(value_side->param_index)]});
  }
}
}  // namespace

std::vector<EqConstraint> extract_eq_constraints(
    const Expr& e, const std::vector<Value>& params) {
  std::vector<EqConstraint> out;
  collect_eq(e, params, out);
  return out;
}

namespace {
// A value-yielding leaf usable for index probing: literal or bound param.
const Value* probe_value(const Expr& e, const std::vector<Value>& params) {
  if (e.kind == ExprKind::kLiteral) return &e.literal;
  if (e.kind == ExprKind::kParam && e.param_index >= 0 &&
      static_cast<std::size_t>(e.param_index) < params.size()) {
    return &params[static_cast<std::size_t>(e.param_index)];
  }
  return nullptr;
}

void collect_probes(const Expr& e, const std::vector<Value>& params,
                    std::vector<InConstraint>& out) {
  if (e.kind == ExprKind::kBinary && e.op == BinOp::kAnd) {
    collect_probes(*e.lhs, params, out);
    collect_probes(*e.rhs, params, out);
    return;
  }
  if (e.kind == ExprKind::kBinary && e.op == BinOp::kEq) {
    const Expr* column_side = nullptr;
    const Expr* value_side = nullptr;
    if (e.lhs->kind == ExprKind::kColumn) {
      column_side = e.lhs.get();
      value_side = e.rhs.get();
    } else if (e.rhs->kind == ExprKind::kColumn) {
      column_side = e.rhs.get();
      value_side = e.lhs.get();
    } else {
      return;
    }
    if (const Value* v = probe_value(*value_side, params)) {
      out.push_back({column_side->column, {*v}});
    }
    return;
  }
  if (e.kind == ExprKind::kIn && e.lhs->kind == ExprKind::kColumn) {
    InConstraint probe;
    probe.column = e.lhs->column;
    probe.values.reserve(e.items.size());
    for (const ExprPtr& item : e.items) {
      const Value* v = probe_value(*item, params);
      if (!v) return;  // non-constant item: cannot use the index
      probe.values.push_back(*v);
    }
    out.push_back(std::move(probe));
  }
}
}  // namespace

std::vector<InConstraint> extract_index_probes(
    const Expr& e, const std::vector<Value>& params) {
  std::vector<InConstraint> out;
  collect_probes(e, params, out);
  return out;
}

}  // namespace osprey::db

#include "osprey/core/clock.h"

#include <chrono>
#include <thread>

namespace osprey {

namespace {
TimePoint steady_seconds() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}
}  // namespace

RealClock::RealClock() : epoch_(steady_seconds()) {}

TimePoint RealClock::now() const { return steady_seconds() - epoch_; }

void RealClock::sleep_for(Duration seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace osprey

// Deterministic, seeded fault-injection plane.
//
// The paper's robustness story (§IV-B fire-and-forget retry, §IV-C task
// state in the EMEWS DB, §VII stalled-task detection) is only credible if it
// can be *exercised*: a chaos run must be able to kill an endpoint at t=30s,
// partition a link at t=60s, and stall five workers — and replay that exact
// scenario bit-identically. The FaultRegistry is the single switchboard for
// that: instrumented components ask it "does fault point X fire now?" and
// every answer is a deterministic function of (seed, point name, query
// sequence, clock), so the same scenario on the DES engine reproduces the
// same failures, retries, and requeues every run.
//
// Fault points are plain strings chosen by the instrumented code, typically
// instance-qualified: "faas.endpoint.theta-ep", "net.partition.bebop|theta",
// "transfer.corrupt", "pool.worker_pool_1.stall". Triggers per point:
//  - probability p: each should_fire() draw fails with probability p, from a
//    per-point RNG stream (seeded from the registry seed and the point name,
//    so streams are independent of cross-point query interleaving);
//  - fail_next(n): the next n should_fire() queries fire unconditionally;
//  - windows [start, end): the point is *active* during scheduled intervals
//    of the injected Clock — the mechanism behind offline windows and link
//    partitions;
//  - a manual latch (set_active) for open-ended outages;
//  - a magnitude (e.g. a latency multiplier) consumed while active.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "osprey/core/clock.h"
#include "osprey/core/rng.h"

namespace osprey::obs {
class Counter;
}  // namespace osprey::obs

namespace osprey {

class FaultRegistry {
 public:
  /// `clock` drives scheduled windows; `seed` fixes every probability draw.
  explicit FaultRegistry(const Clock& clock, std::uint64_t seed = 0xfa171);

  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  // --- arming triggers -------------------------------------------------------

  /// Each should_fire(point) fires with probability `p` (0 disarms).
  void set_probability(const std::string& point, double p);

  /// The next `n` should_fire(point) queries fire unconditionally.
  void fail_next(const std::string& point, int n);

  /// The point is active (fires, and reports active()) during [start, end)
  /// of the registry clock. Windows accumulate.
  void add_window(const std::string& point, TimePoint start, TimePoint end);

  /// Manual latch: the point is active until released (open-ended outage).
  void set_active(const std::string& point, bool active);

  /// Scale factor reported while the point is active (latency spikes);
  /// inactive points always report 1.0.
  void set_magnitude(const std::string& point, double magnitude);

  /// Disarm one point / every point. Statistics are kept.
  void clear(const std::string& point);
  void clear_all();

  // --- queries ---------------------------------------------------------------

  /// True while the point is latched or inside a scheduled window. Pure:
  /// consumes no randomness and does not count as a should_fire check.
  bool active(const std::string& point) const;

  /// The point's magnitude while active, 1.0 otherwise.
  double magnitude(const std::string& point) const;

  /// Does the fault fire for this query? Active latch/window => yes;
  /// else consumes a pending fail_next; else draws the point's probability.
  bool should_fire(const std::string& point);

  // --- statistics (chaos-suite accounting) -----------------------------------

  /// should_fire queries / fires observed at a point.
  std::uint64_t checks(const std::string& point) const;
  std::uint64_t fires(const std::string& point) const;

  /// Names of every point ever armed or queried, sorted.
  std::vector<std::string> points() const;

  /// "point: fires/checks" lines, sorted by point — a scenario's footprint.
  std::string report() const;

 private:
  struct Point {
    double probability = 0.0;
    int fail_next = 0;
    bool latched = false;
    double magnitude = 1.0;
    std::vector<std::pair<TimePoint, TimePoint>> windows;
    std::unique_ptr<Rng> rng;  // created lazily, seeded from (seed, name)
    std::uint64_t checks = 0;
    std::uint64_t fires = 0;
    // Cached telemetry handles (osprey_fault_{checked,fired}_total{point=}),
    // acquired lazily on the first check with telemetry enabled.
    obs::Counter* checked_counter = nullptr;
    obs::Counter* fired_counter = nullptr;

    bool active_at(TimePoint t) const;
  };

  Point& point_locked(const std::string& name);
  Rng& rng_locked(const std::string& name, Point& p);

  const Clock& clock_;
  std::uint64_t seed_;
  mutable std::mutex mutex_;  // threaded pools may query concurrently
  std::map<std::string, Point> points_;
};

/// Canonical fault-point names used by the instrumented OSPREY modules, so
/// scenarios and components agree on spelling.
namespace fault_point {

/// Transient execution failure at a FaaS endpoint.
std::string endpoint(const std::string& name);
/// Endpoint unreachable (offline window), §IV-B fire-and-forget hold.
std::string endpoint_offline(const std::string& name);
/// Link partition between two sites (order-insensitive).
std::string partition(const std::string& a, const std::string& b);
/// Degraded link (latency multiplied by the point magnitude).
std::string slow_link(const std::string& a, const std::string& b);
/// In-flight payload corruption in the transfer service.
inline const char* transfer_corrupt() { return "transfer.corrupt"; }
/// Mid-transfer abort in the transfer service.
inline const char* transfer_abort() { return "transfer.abort"; }
/// A worker of the named pool hangs without reporting its task.
std::string pool_stall(const std::string& pool);

// Write-ahead-log device faults (db/wal SimLogDevice). Each names an instant
// in the append/sync protocol at which the simulated device dies, so the
// kill-point matrix can crash a campaign at every stage of a commit.
/// Device dies before an append lands anywhere.
inline const char* wal_crash_before_append() { return "wal.crash_before_append"; }
/// Device dies after the append reached the volatile write cache.
inline const char* wal_crash_after_append() { return "wal.crash_after_append"; }
/// Device dies before a sync flushes the cache.
inline const char* wal_crash_before_sync() { return "wal.crash_before_sync"; }
/// Sync persists only a prefix of the cache (fraction = point magnitude),
/// then the device dies — the canonical torn-write.
inline const char* wal_partial_flush() { return "wal.partial_flush"; }
/// Sync fully persists, then the device dies before acknowledging.
inline const char* wal_crash_after_sync() { return "wal.crash_after_sync"; }
/// On power loss a prefix of the volatile cache (fraction = point magnitude)
/// survives to the medium, leaving a torn tail for recovery to truncate.
inline const char* wal_torn_tail() { return "wal.torn_tail"; }

// Storage-engine faults (osprey::storage). The engine consults these at the
// entry of its own multi-segment operations; the wal.* device faults above
// additionally apply to every run write, since runs live on the same
// LogDevice as the log.
/// A memtable flush fails before any run bytes are written (the immutable
/// memtable is retained and retried).
inline const char* storage_flush_fail() { return "storage.flush.fail"; }
/// A compaction aborts before its output run is written (inputs intact).
inline const char* storage_compact_fail() { return "storage.compact.fail"; }

// Replication-plane faults (osprey::repl). The shipper consults these per
// ship batch, modelling the ways a log-shipping channel misbehaves; the
// applier's LSN discipline must make each of them harmless.
/// A ship batch is lost in flight (shipper retries from the same position).
inline const char* repl_ship_drop() { return "repl.ship.drop"; }
/// A ship batch is delivered twice (the duplicate must no-op by LSN).
inline const char* repl_ship_duplicate() { return "repl.ship.duplicate"; }
/// Two consecutive ship batches arrive out of order (the early one must be
/// rejected as a gap and redelivered in order).
inline const char* repl_ship_reorder() { return "repl.ship.reorder"; }

}  // namespace fault_point

}  // namespace osprey
